"""Tests for the centralized trainer, optimizers, and model container."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    Trainer,
)

RNG = np.random.default_rng(101)


def linear_task(n=200, d=6, rng=None):
    """Linearly separable binary task."""
    rng = rng or np.random.default_rng(0)
    w = rng.normal(size=d)
    x = rng.normal(size=(n, d))
    y = (x @ w > 0).astype(int)
    return x, y


def build_mlp(d=6, seed=0):
    model = Sequential([Dense(16), ReLU(), Dense(2)])
    model.build((d,), np.random.default_rng(seed))
    return model


class TestOptimizers:
    def _quadratic_step(self, opt, start=5.0, steps=200):
        """Minimize f(w) = w^2 via the optimizer interface."""
        w = np.array([start])
        g = np.zeros(1)
        for __ in range(steps):
            g[:] = 2 * w
            opt.step([("slot", {"w": w}, {"w": g})])
        return float(abs(w[0]))

    def test_sgd_converges(self):
        assert self._quadratic_step(SGD(lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_step(SGD(lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_step(Adam(lr=0.3)) < 1e-2

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=-1.0)

    def test_state_keyed_per_slot(self):
        """Two parameters with the same name in different slots keep
        independent momentum."""
        opt = SGD(lr=0.1, momentum=0.9)
        w1, w2 = np.array([1.0]), np.array([100.0])
        for __ in range(5):
            opt.step([
                ("a", {"w": w1}, {"w": 2 * w1}),
                ("b", {"w": w2}, {"w": 2 * w2}),
            ])
        # Ratio preserved under identical relative dynamics.
        assert w2[0] / w1[0] == pytest.approx(100.0, rel=1e-9)


class TestTrainer:
    def test_learns_linear_task(self):
        x, y = linear_task()
        model = build_mlp()
        trainer = Trainer(model, SGD(lr=0.1, momentum=0.9))
        history = trainer.fit(x, y, epochs=30, batch_size=16,
                              rng=np.random.default_rng(1))
        assert history.train_accuracy[-1] > 0.95
        assert history.epochs == 30

    def test_loss_decreases(self):
        x, y = linear_task()
        model = build_mlp(seed=2)
        trainer = Trainer(model, SGD(lr=0.05))
        history = trainer.fit(x, y, epochs=20, batch_size=32,
                              rng=np.random.default_rng(3))
        assert history.train_loss[-1] < history.train_loss[0]

    def test_builds_unbuilt_model(self):
        x, y = linear_task(d=4)
        model = Sequential([Dense(8), ReLU(), Dense(2)])
        trainer = Trainer(model, SGD(lr=0.1))
        trainer.fit(x, y, epochs=2, batch_size=32,
                    rng=np.random.default_rng(4))
        assert model.built

    def test_early_stopping_restores_best(self):
        x, y = linear_task(300, rng=np.random.default_rng(5))
        model = build_mlp(seed=6)
        trainer = Trainer(model, SGD(lr=0.1, momentum=0.9))
        history = trainer.fit(
            x[:200], y[:200], epochs=50, batch_size=16,
            rng=np.random.default_rng(7),
            x_val=x[200:], y_val=y[200:], patience=4,
        )
        __, final = trainer.evaluate(x[200:], y[200:])
        assert final == pytest.approx(history.best_val_accuracy, abs=1e-12)
        assert history.epochs < 50  # it actually stopped early

    def test_evaluate_batching_consistent(self):
        x, y = linear_task(100)
        model = build_mlp(seed=8)
        trainer = Trainer(model, SGD(lr=0.1))
        loss_small, acc_small = trainer.evaluate(x, y, batch_size=7)
        loss_big, acc_big = trainer.evaluate(x, y, batch_size=100)
        assert loss_small == pytest.approx(loss_big)
        assert acc_small == acc_big

    def test_fit_empty_dataset_raises(self):
        """Regression: an empty dataset used to die with a
        ZeroDivisionError in the epoch averaging."""
        x, y = linear_task(10)
        trainer = Trainer(build_mlp(seed=9), SGD(lr=0.1))
        with pytest.raises(ValueError, match="empty dataset"):
            trainer.fit(
                x[:0], y[:0], epochs=1, batch_size=4,
                rng=np.random.default_rng(0),
            )

    def test_evaluate_empty_dataset_raises(self):
        x, y = linear_task(10)
        trainer = Trainer(build_mlp(seed=9), SGD(lr=0.1))
        with pytest.raises(ValueError, match="empty dataset"):
            trainer.evaluate(x[:0], y[:0])

    def test_patience_restores_best_weights(self):
        """After early stop the model carries the *best* epoch's
        weights, not the last epoch's: re-evaluating reproduces
        ``best_val_accuracy`` exactly even when later epochs dipped."""
        x, y = linear_task(300, rng=np.random.default_rng(5))
        model = build_mlp(seed=6)
        trainer = Trainer(model, SGD(lr=0.1, momentum=0.9))
        history = trainer.fit(
            x[:200], y[:200], epochs=50, batch_size=16,
            rng=np.random.default_rng(7),
            x_val=x[200:], y_val=y[200:], patience=4,
        )
        # The stop was triggered by a dip: the final recorded epoch is
        # strictly worse than the best, so restoring is observable.
        assert history.val_accuracy[-1] < history.best_val_accuracy
        __, restored = trainer.evaluate(x[200:], y[200:])
        assert restored == pytest.approx(history.best_val_accuracy)


class TestTrainingHistory:
    def test_empty_history(self):
        from repro.nn.training import TrainingHistory

        history = TrainingHistory()
        assert history.epochs == 0
        assert np.isnan(history.best_val_accuracy)

    def test_no_validation_data_leaves_nan_best(self):
        x, y = linear_task(40)
        trainer = Trainer(build_mlp(seed=10), SGD(lr=0.1))
        history = trainer.fit(
            x, y, epochs=2, batch_size=8, rng=np.random.default_rng(0)
        )
        assert history.epochs == 2
        assert history.val_accuracy == []
        assert np.isnan(history.best_val_accuracy)

    def test_best_val_accuracy_is_max(self):
        from repro.nn.training import TrainingHistory

        history = TrainingHistory(val_accuracy=[0.4, 0.9, 0.7])
        assert history.best_val_accuracy == 0.9


class TestSequentialContainer:
    def test_forward_before_build_raises(self):
        model = Sequential([Dense(2)])
        with pytest.raises(RuntimeError):
            model.forward(np.zeros((1, 4)))

    def test_add_after_build_raises(self):
        model = Sequential([Dense(2)])
        model.build((4,), RNG)
        with pytest.raises(RuntimeError):
            model.add(Dense(3))

    def test_layer_shapes_chain(self):
        model = Sequential([
            Conv2D(3, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(5),
        ])
        model.build((1, 8, 8), RNG)
        shapes = model.layer_shapes()
        assert shapes[0] == ((1, 8, 8), (3, 6, 6))
        assert shapes[2] == ((3, 6, 6), (3, 3, 3))
        assert shapes[-1] == ((27,), (5,))

    def test_num_params(self):
        model = Sequential([Dense(4), Dense(2)])
        model.build((3,), RNG)
        assert model.num_params() == (3 * 4 + 4) + (4 * 2 + 2)

    def test_weight_roundtrip(self):
        model = Sequential([Dense(4), ReLU(), Dense(2)])
        model.build((3,), RNG)
        weights = model.get_weights()
        x = RNG.normal(size=(2, 3))
        expected = model.forward(x)
        for __, params, __g in model.param_slots():
            for p in params.values():
                p += 1.0  # perturb
        assert not np.allclose(model.forward(x), expected)
        model.set_weights(weights)
        np.testing.assert_allclose(model.forward(x), expected)

    def test_set_weights_validates(self):
        model = Sequential([Dense(4)])
        model.build((3,), RNG)
        with pytest.raises(ValueError):
            model.set_weights([np.zeros((3, 4))])  # missing bias
        with pytest.raises(ValueError):
            model.set_weights([np.zeros((9, 9)), np.zeros(4)])

    def test_zero_grads(self):
        model = Sequential([Dense(2)])
        model.build((3,), RNG)
        out = model.forward(np.ones((1, 3)), training=True)
        model.backward(np.ones_like(out))
        assert any(
            g.any() for __, __p, grads in model.param_slots()
            for g in grads.values()
        )
        model.zero_grads()
        assert all(
            not g.any() for __, __p, grads in model.param_slots()
            for g in grads.values()
        )
