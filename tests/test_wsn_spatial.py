"""Spatial index, generators, routing contract, and epoch caching.

The city-scale rework's core promise is **byte-equality**: the
grid-hash index and CSR adjacency must reproduce the brute-force
``*_reference`` oracles exactly — same nodes, same order, bitwise
identical distances — across arbitrary placements, comm ranges, and
dead-node sets.  The fuzz classes here (under ``-m perf``, like the
other hot-path property suites) assert exactly that; the plain classes
pin the unit semantics: epoch/cache invalidation, the
``shortest_path_route`` endpoint contract and its ``unroutable``
attribution in the network layer, NaN/inf position validation, the
deterministic generator suite, and the JSON map importer.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.wsn import (
    ChainTopology,
    CliqueTopology,
    GridHashIndex,
    GridTopology,
    Message,
    Network,
    RandomTopology,
    RingTopology,
    SensorNode,
    StarTopology,
    Topology,
    build_adjacency,
    load_map_topology,
    make_topology,
    sample_map_path,
    shortest_path_route,
    shortest_path_route_reference,
    sink_tree,
)
from repro.wsn.choco import ChocoCollector
from repro.wsn.radio import RadioModel


def random_topology(rng, n=None, comm_range=None, dead=None):
    """A fuzzed placement: uniform box + a few dense clusters, random
    comm range, random dead subset."""
    n = int(rng.integers(1, 60)) if n is None else n
    comm_range = (
        float(rng.uniform(0.05, 3.0)) if comm_range is None else comm_range
    )
    pts = rng.uniform(-5.0, 5.0, size=(n, 2))
    # Pile a cluster on top so several nodes share one grid cell.
    k = min(n, int(rng.integers(0, 8)))
    if k:
        center = rng.uniform(-5.0, 5.0, size=2)
        pts[:k] = center + rng.normal(0.0, 0.05, size=(k, 2))
    nodes = [
        SensorNode(node_id=i, position=(float(x), float(y)))
        for i, (x, y) in enumerate(pts)
    ]
    topo = Topology(nodes, comm_range=comm_range)
    if dead is None:
        dead = [
            i for i in range(n) if rng.random() < float(rng.uniform(0, 0.5))
        ]
    for i in dead:
        topo.node(i).alive = False
    return topo


def assert_byte_parity(topo):
    """Index-backed queries == brute-force oracles, byte for byte."""
    assert [n.node_id for n in topo.alive_nodes()] == [
        n.node_id for n in topo.alive_nodes_reference()
    ]
    for nid in topo.nodes:
        center = topo.node(nid)
        got = topo.neighbors_with_distances(nid)
        want = [
            (n, center.distance_to(n))
            for n in topo.neighbors_reference(nid)
        ]
        assert [(n.node_id, d) for n, d in got] == [
            (n.node_id, d) for n, d in want
        ], f"neighbors({nid}) diverged"
    g, gr = topo.graph(), topo.graph_reference()
    assert list(g.nodes) == list(gr.nodes)
    assert [
        (u, dict(a)) for u, a in g.nodes(data=True)
    ] == [(u, dict(a)) for u, a in gr.nodes(data=True)]
    assert list(g.edges(data="weight")) == list(gr.edges(data="weight"))


pytest_perf = pytest.mark.perf


@pytest_perf
class TestSpatialParityFuzz:
    """Satellite: spatial index byte-equal to the oracles under fuzz."""

    @pytest.mark.parametrize("trial", range(16))
    def test_fuzzed_placements(self, trial):
        rng = np.random.default_rng(7000 + trial)
        topo = random_topology(rng)
        assert_byte_parity(topo)

    @pytest.mark.parametrize("trial", range(6))
    def test_fuzzed_routes(self, trial):
        rng = np.random.default_rng(7100 + trial)
        topo = random_topology(rng, n=int(rng.integers(2, 40)))
        ids = list(topo.nodes)
        for __ in range(12):
            s = int(rng.choice(ids))
            d = int(rng.choice(ids))
            assert shortest_path_route(topo, s, d) == (
                shortest_path_route_reference(topo, s, d)
            )

    def test_single_node(self):
        topo = Topology([SensorNode(7, (1.0, 2.0))], comm_range=1.0)
        assert_byte_parity(topo)
        assert topo.neighbors(7) == []

    def test_all_dead(self):
        rng = np.random.default_rng(7200)
        topo = random_topology(rng, n=12, dead=list(range(12)))
        assert_byte_parity(topo)
        assert topo.alive_nodes() == []
        assert topo.graph().number_of_nodes() == 0

    def test_dead_center_query(self):
        """Querying around a dead node is legal and oracle-identical."""
        rng = np.random.default_rng(7300)
        topo = random_topology(rng, n=20, comm_range=4.0, dead=[3])
        assert [n.node_id for n in topo.neighbors(3)] == [
            n.node_id for n in topo.neighbors_reference(3)
        ]

    def test_coincident_positions(self):
        nodes = [SensorNode(i, (1.0, 1.0)) for i in range(5)]
        topo = Topology(nodes, comm_range=0.5)
        assert_byte_parity(topo)
        assert [n.node_id for n in topo.neighbors(2)] == [0, 1, 3, 4]

    def test_mutation_then_parity(self):
        """Parity must hold across kill/revive/move sequences."""
        rng = np.random.default_rng(7400)
        topo = random_topology(rng, n=30, dead=[])
        for __ in range(6):
            nid = int(rng.integers(30))
            action = rng.random()
            node = topo.node(nid)
            if action < 0.4:
                node.alive = not node.alive
            else:
                node.position = tuple(rng.uniform(-5, 5, size=2))
            assert_byte_parity(topo)

    @pytest.mark.parametrize("trial", range(4))
    def test_choco_round_rng_parity(self, trial):
        """Index-backed Choco rounds draw the identical RNG stream."""
        rng = np.random.default_rng(7500 + trial)
        topo = random_topology(rng, n=25, comm_range=2.5)
        collector = ChocoCollector(topo, RadioModel())
        a = collector.run_round(1.0, np.random.default_rng(42))
        b = collector.run_round_reference(1.0, np.random.default_rng(42))
        assert a.inter_node_rssi == b.inter_node_rssi
        assert a.surrounding_rssi == b.surrounding_rssi


class TestGridHashIndex:
    def test_radius_beyond_cell_size_rejected(self):
        idx = GridHashIndex(np.zeros((3, 2)), np.ones(3, bool), 1.0)
        with pytest.raises(ValueError, match="exceeds cell size"):
            idx.query((0.0, 0.0), radius=1.5)
        with pytest.raises(ValueError, match="exceeds cell size"):
            idx.directed_pairs(2.0)

    def test_bad_cell_size_rejected(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="cell_size"):
                GridHashIndex(np.zeros((1, 2)), np.ones(1, bool), bad)

    def test_empty_index(self):
        idx = GridHashIndex(np.zeros((4, 2)), np.zeros(4, bool), 1.0)
        ids, dist = idx.query((0.0, 0.0))
        assert ids.size == 0 and dist.size == 0
        s, d, w = idx.directed_pairs()
        assert s.size == d.size == w.size == 0

    def test_negative_coordinates(self):
        pos = np.array([[-10.0, -10.0], [-10.5, -10.2], [5.0, 5.0]])
        idx = GridHashIndex(pos, np.ones(3, bool), 1.0)
        ids, dist = idx.query((-10.0, -10.0), exclude=0)
        assert ids.tolist() == [1]
        assert dist[0] == SensorNode(0, (-10.0, -10.0)).distance_to(
            SensorNode(1, (-10.5, -10.2))
        )

    def test_directed_pairs_symmetric(self):
        rng = np.random.default_rng(11)
        pos = rng.uniform(0, 4, size=(40, 2))
        alive = rng.random(40) > 0.3
        idx = GridHashIndex(pos, alive, 1.2)
        s, d, __ = idx.directed_pairs()
        pairs = set(zip(s.tolist(), d.tolist()))
        assert pairs == {(b, a) for a, b in pairs}
        assert all(a != b for a, b in pairs)

    def test_adjacency_rows_sorted_and_consistent(self):
        rng = np.random.default_rng(12)
        pos = rng.uniform(0, 6, size=(60, 2))
        alive = rng.random(60) > 0.2
        adjacency = build_adjacency(pos, alive, 1.5)
        assert adjacency.indptr[0] == 0
        assert adjacency.indptr[-1] == adjacency.indices.shape[0]
        total = 0
        for i in range(60):
            row, w = adjacency.row(i)
            assert list(row) == sorted(row.tolist())
            assert not alive[i] and row.size == 0 or alive[i]
            total += row.size
        assert adjacency.n_edges == total // 2
        edges = list(adjacency.undirected_edges())
        assert edges == sorted(edges, key=lambda e: (e[0], e[1]))
        assert all(i < j for i, j, __ in edges)


class TestEpochInvalidation:
    """The documented cache contract: any alive/position mutation bumps
    the epoch; untouched state pays zero rebuild cost."""

    def test_alive_and_position_bump_epoch(self):
        topo = GridTopology(3, 3)
        e0 = topo.epoch
        topo.node(4).alive = False
        assert topo.epoch == e0 + 1
        topo.node(0).position = (0.25, 0.25)
        assert topo.epoch == e0 + 2

    def test_counter_updates_do_not_bump_epoch(self):
        topo = GridTopology(2, 2)
        e0 = topo.epoch
        node = topo.node(0)
        node.tx_count += 5
        node.rx_values += 100
        node.reset_counters()
        assert topo.epoch == e0

    def test_cached_graph_memoized_until_mutation(self):
        topo = GridTopology(3, 3)
        g1 = topo.cached_graph()
        assert topo.cached_graph() is g1
        topo.node(4).alive = False
        g2 = topo.cached_graph()
        assert g2 is not g1
        assert 4 not in g2

    def test_queries_observe_mutations(self):
        topo = GridTopology(3, 3)
        assert any(n.node_id == 4 for n in topo.neighbors(0))
        topo.node(4).alive = False
        assert all(n.node_id != 4 for n in topo.neighbors(0))
        topo.node(4).alive = True
        topo.node(4).position = (10.0, 10.0)
        assert all(n.node_id != 4 for n in topo.neighbors(0))

    def test_graph_returns_fresh_mutable_copies(self):
        """Callers may mutate graph() (the planner prunes edges) without
        corrupting the shared routing graph."""
        topo = GridTopology(2, 3)
        g = topo.graph()
        assert g is not topo.graph()
        cached = topo.cached_graph()
        g.remove_edges_from(list(g.edges))
        assert cached.number_of_edges() > 0
        assert topo.cached_graph() is cached

    def test_invalidate_caches_forces_rebuild(self):
        topo = GridTopology(2, 2)
        g1 = topo.cached_graph()
        topo.invalidate_caches()
        assert topo.cached_graph() is not g1

    def test_soa_views_read_only(self):
        topo = GridTopology(2, 2)
        with pytest.raises(ValueError):
            topo.positions_view()[0, 0] = 99.0
        with pytest.raises(ValueError):
            topo.alive_view()[0] = False


class TestPositionValidation:
    """Satellite: NaN/inf positions fail fast with a clear error."""

    @pytest.mark.parametrize("bad", [
        (float("nan"), 0.0), (0.0, float("nan")),
        (float("inf"), 0.0), (0.0, float("-inf")),
    ])
    def test_constructor_rejects_non_finite(self, bad):
        nodes = [SensorNode(0, (0.0, 0.0))]
        with pytest.raises(ValueError, match="finite"):
            nodes.append(SensorNode(1, bad))
        # And the topology-level sweep catches nodes whose attribute
        # was bypassed (e.g. unpickled or __dict__-poked state).
        poked = SensorNode(1, (0.0, 0.0))
        poked._position = bad
        with pytest.raises(ValueError, match=r"node ids: \[1\]"):
            Topology(nodes + [poked], comm_range=1.0)

    def test_mutation_rejects_non_finite_and_keeps_old_position(self):
        topo = GridTopology(2, 2)
        node = topo.node(3)
        before = node.position
        epoch = topo.epoch
        with pytest.raises(ValueError, match="node 3 position"):
            node.position = (float("nan"), 1.0)
        assert node.position == before
        assert topo.epoch == epoch


class TestRoutingContract:
    """Satellite: the pinned endpoint contract, and the network layer's
    ``unroutable`` attribution of every None route."""

    @pytest.fixture()
    def topo(self):
        return GridTopology(1, 4, comm_range=1.0)  # chain 0-1-2-3

    def test_alive_self_route_is_zero_hop(self, topo):
        assert shortest_path_route(topo, 2, 2) == [2]
        assert shortest_path_route_reference(topo, 2, 2) == [2]

    def test_dead_self_route_is_none(self, topo):
        topo.node(2).alive = False
        assert shortest_path_route(topo, 2, 2) is None
        assert shortest_path_route_reference(topo, 2, 2) is None

    def test_dead_or_unknown_endpoints_are_none(self, topo):
        topo.node(3).alive = False
        for s, d in ((0, 3), (3, 0), (99, 0), (0, 99)):
            assert shortest_path_route(topo, s, d) is None
            assert shortest_path_route_reference(topo, s, d) is None

    def test_disconnected_is_none(self, topo):
        topo.node(1).alive = False
        assert shortest_path_route(topo, 0, 3) is None

    def test_connected_route(self, topo):
        assert shortest_path_route(topo, 0, 3) == [0, 1, 2, 3]

    def test_network_attributes_unroutable(self, topo):
        net = Network(topo)
        topo.node(3).alive = False
        assert not net.unicast(Message(0, 3, 5))
        assert not net.unicast(Message(3, 3, 5))  # dead self-send
        assert net.unicast(Message(1, 1, 5))      # alive self-send: 0 hops
        assert net.stats.dropped_causes == {"unroutable": 2}
        assert net.stats.delivered == 1
        assert net.stats.total_hops == 0

    def test_bulk_attributes_unroutable_per_copy(self, topo):
        net = Network(topo)
        topo.node(0).alive = False
        assert net.unicast_bulk(Message(1, 0, 3), copies=4) == 0
        assert net.stats.dropped == 4
        assert net.stats.dropped_causes == {"unroutable": 4}

    def test_sink_tree_uses_cached_graph(self, topo):
        parents = sink_tree(topo, 0)
        assert parents == {0: None, 1: 0, 2: 1, 3: 2}
        topo.node(3).alive = False
        assert 3 not in sink_tree(topo, 0)


class TestGenerators:
    """The deterministic generator suite and the JSON map importer."""

    def test_clique_is_complete(self):
        topo = CliqueTopology(9)
        assert topo.graph().number_of_edges() == 36
        assert topo.is_connected()

    def test_chain_is_a_path(self):
        topo = ChainTopology(12)
        g = topo.graph()
        assert g.number_of_edges() == 11
        assert shortest_path_route(topo, 0, 11) == list(range(12))

    def test_ring_is_a_cycle(self):
        topo = RingTopology(10)
        degrees = {d for __, d in topo.graph().degree()}
        assert degrees == {2}
        assert topo.graph().number_of_edges() == 10

    def test_star_pure_up_to_five_leaves(self):
        topo = StarTopology(5)
        g = topo.graph()
        assert g.number_of_edges() == 5
        assert g.degree(topo.hub_id) == 5

    def test_star_becomes_wheel_at_six_leaves(self):
        # Documented disk-graph caveat: adjacent leaves fall in range.
        topo = StarTopology(8)
        assert topo.graph().number_of_edges() == 16

    def test_generators_are_deterministic(self):
        for ctor in (
            lambda: CliqueTopology(7),
            lambda: ChainTopology(7),
            lambda: RingTopology(7),
            lambda: StarTopology(7),
        ):
            a, b = ctor(), ctor()
            assert [n.position for n in a] == [n.position for n in b]
            assert [n.node_id for n in a] == [n.node_id for n in b]

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            CliqueTopology(0)
        with pytest.raises(ValueError):
            ChainTopology(3, spacing=-1.0)
        with pytest.raises(ValueError):
            RingTopology(2)
        with pytest.raises(ValueError):
            StarTopology(4, radius=0.0)

    def test_make_topology_registry(self):
        assert isinstance(make_topology("ring", n_nodes=5), RingTopology)
        assert len(make_topology("map", path=sample_map_path())) == 24
        with pytest.raises(ValueError, match="unknown topology kind"):
            make_topology("torus", n_nodes=5)

    def test_sample_map_loads_connected(self):
        topo = load_map_topology(sample_map_path())
        assert topo.is_connected()
        assert topo.comm_range == 45.0
        assert topo.map_name == "district-sample"
        # Node order follows the file's nodes array.
        doc = json.loads(sample_map_path().read_text())
        assert [n.node_id for n in topo] == [e["id"] for e in doc["nodes"]]

    def test_map_comm_range_override(self):
        topo = load_map_topology(sample_map_path(), comm_range=10.0)
        assert topo.comm_range == 10.0

    def test_map_importer_errors(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_map_topology(bad_json)
        no_range = tmp_path / "norange.json"
        no_range.write_text(json.dumps({"nodes": [{"id": 0, "pos": [0, 0]}]}))
        with pytest.raises(ValueError, match="comm_range"):
            load_map_topology(no_range)
        assert len(load_map_topology(no_range, comm_range=1.0)) == 1
        malformed = tmp_path / "malformed.json"
        malformed.write_text(json.dumps(
            {"comm_range": 1.0, "nodes": [{"id": 0}]}
        ))
        with pytest.raises(ValueError, match="node #0"):
            load_map_topology(malformed)
        not_obj = tmp_path / "list.json"
        not_obj.write_text("[]")
        with pytest.raises(ValueError, match="'nodes' list"):
            load_map_topology(not_obj)


class TestTopoCli:
    def test_topo_summary(self, capsys):
        assert main(["topo", "ring", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "nodes:       12" in out
        assert "connected:   True" in out

    def test_topo_export_import_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "district.json"
        assert main([
            "topo", "random", "--n", "50", "--side", "30",
            "--seed", "3", "--out", str(out_file),
        ]) == 0
        first = capsys.readouterr().out
        assert main(["topo", "map", "--path", str(out_file)]) == 0
        second = capsys.readouterr().out
        # Same edge/degree summary after the round trip.
        assert first.splitlines()[3] == second.splitlines()[3]
        reloaded = load_map_topology(out_file)
        assert len(reloaded) == 50

    def test_topo_bad_map_exits_2(self, tmp_path, capsys):
        assert main([
            "topo", "map", "--path", str(tmp_path / "missing.json"),
        ]) == 2
        assert "failed" in capsys.readouterr().err
