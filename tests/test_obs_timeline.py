"""Flight-recorder semantics: ring buffer, deltas, rolling windows,
determinism pins, the null backend, and push/pull scheduling."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_CAPACITY,
    DEFAULT_WINDOW,
    FlightRecorder,
    MetricsRegistry,
    NULL_RECORDER,
    NullFlightRecorder,
    NullTelemetry,
    Telemetry,
    flight_recorder,
    quantile_from_counts,
    schedule_sampling,
    series_key,
)


def _recorder(tel=None, **kwargs):
    return FlightRecorder(tel if tel is not None else Telemetry(), **kwargs)


class TestSeriesKey:
    def test_unlabeled_is_bare_name(self):
        assert series_key("net.delivered", {}) == "net.delivered"

    def test_labels_sorted(self):
        key = series_key("x", {"b": 2, "a": "one"})
        assert key == "x{a=one,b=2}"


class TestSampling:
    def test_counter_delta_and_value(self):
        tel = Telemetry()
        rec = _recorder(tel)
        c = tel.metrics.counter("hits")
        c.inc(3)
        s0 = rec.sample()
        c.inc(2)
        s1 = rec.sample()
        assert s0.get("hits").value == 3.0
        assert s0.get("hits").delta == 3.0
        assert s1.get("hits").value == 5.0
        assert s1.get("hits").delta == 2.0

    def test_gauge_first_delta_is_zero(self):
        tel = Telemetry()
        rec = _recorder(tel)
        g = tel.metrics.gauge("depth")
        g.set(7.0)
        s0 = rec.sample()
        g.set(4.0)
        s1 = rec.sample()
        assert s0.get("depth").delta == 0.0
        assert s1.get("depth").delta == -3.0

    def test_histogram_delta_and_windowed_quantiles(self):
        tel = Telemetry()
        rec = _recorder(tel, window=4)
        h = tel.metrics.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 0.7, 5.0):
            h.observe(v)
        s0 = rec.sample()
        p = s0.get("lat")
        assert p.kind == "histogram"
        assert p.value == 4
        assert p.delta == 4
        assert p.sum_delta == pytest.approx(6.8)
        assert p.p50 == 1.0
        assert p.p99 == 10.0
        # no new observations: the next tick's delta is zero but the
        # window still holds the first tick's mass.
        s1 = rec.sample()
        assert s1.get("lat").delta == 0
        assert s1.get("lat").p50 == 1.0

    def test_default_clock_is_sample_index(self):
        rec = _recorder()
        assert rec.sample().t == 0.0
        assert rec.sample().t == 1.0

    def test_bound_clock_drives_time(self):
        state = {"t": 0.0}
        rec = _recorder(clock=lambda: state["t"])
        state["t"] = 2.5
        assert rec.sample().t == 2.5

    def test_rate_uses_windowed_elapsed(self):
        state = {"t": 0.0}
        tel = Telemetry()
        rec = _recorder(tel, clock=lambda: state["t"], window=8)
        c = tel.metrics.counter("pkts")
        for _ in range(4):
            state["t"] += 1.0
            c.inc(10)
            rec.sample()
        # The window holds all four ticks' deltas (40 packets) over
        # the span between the first and last retained sample (3 s).
        assert rec.latest().get("pkts").rate == pytest.approx(40.0 / 3.0)

    def test_first_tick_rate_spans_from_clock_origin(self):
        # Counters accumulated before sampling began must not read as
        # a one-cadence burst on the first tick.
        state = {"t": 10.0}
        tel = Telemetry()
        rec = _recorder(tel, clock=lambda: state["t"], interval=0.1)
        tel.metrics.counter("retries").inc(30)
        s = rec.sample()
        assert s.get("retries").rate == pytest.approx(3.0)

    def test_observer_runs_after_each_tick(self):
        seen = []

        class Obs:
            def observe(self, sample, recorder):
                seen.append((sample.index, recorder))

        rec = _recorder()
        rec.attach(Obs())
        rec.sample()
        rec.sample()
        assert [i for i, _ in seen] == [0, 1]
        assert all(r is rec for _, r in seen)


class TestRingBuffer:
    def test_drop_oldest_and_dropped_counter(self):
        rec = _recorder(capacity=3)
        for _ in range(5):
            rec.sample()
        assert len(rec) == 3
        assert rec.n_samples == 5
        assert rec.dropped == 2
        assert [s.index for s in rec.samples()] == [2, 3, 4]
        assert rec.latest().index == 4

    def test_clear_resets_everything(self):
        tel = Telemetry()
        rec = _recorder(tel, capacity=2)
        tel.metrics.counter("c").inc()
        for _ in range(3):
            rec.sample()
        rec.clear()
        assert len(rec) == 0
        assert rec.n_samples == 0
        assert rec.dropped == 0
        assert rec.latest() is None
        # delta state cleared too: next sample sees the full value.
        assert rec.sample().get("c").delta == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            _recorder(interval=0.0)
        with pytest.raises(ValueError, match="capacity"):
            _recorder(capacity=0)
        with pytest.raises(ValueError, match="window"):
            _recorder(window=0)


class TestSampleIfDue:
    def test_honours_cadence(self):
        state = {"t": 0.0}
        rec = _recorder(clock=lambda: state["t"], interval=1.0)
        assert rec.sample_if_due() is not None  # first is always due
        assert rec.sample_if_due() is None
        state["t"] = 0.5
        assert rec.sample_if_due() is None
        state["t"] = 1.0
        assert rec.sample_if_due() is not None
        assert rec.n_samples == 2


class TestDeterminism:
    @staticmethod
    def _seeded_run():
        import random

        rng = random.Random(1234)
        tel = Telemetry()
        rec = FlightRecorder(tel, interval=1.0, window=4)
        c = tel.metrics.counter("net.delivered")
        h = tel.metrics.histogram("lat", buckets=(0.01, 0.1, 1.0))
        g = tel.metrics.gauge("depth", node="n1")
        for i in range(20):
            c.inc(rng.randrange(1, 9))
            h.observe(rng.random())
            g.set(rng.randrange(0, 5))
            rec.sample()
        return rec

    def test_two_seeded_runs_are_byte_identical(self):
        a, b = self._seeded_run(), self._seeded_run()
        assert a.to_jsonl() == b.to_jsonl()
        assert a.digest() == b.digest()
        assert len(a.digest()) == 64

    def test_jsonl_is_canonical(self):
        rec = self._seeded_run()
        lines = rec.to_jsonl().split("\n")
        assert len(lines) == 20
        for line in lines:
            doc = json.loads(line)
            assert set(doc) == {"i", "t", "series"}
            assert list(doc["series"]) == sorted(doc["series"])
            # canonical encoding round-trips byte-identically
            assert json.dumps(
                doc, sort_keys=True, separators=(",", ":")
            ) == line

    def test_histogram_payload_shape(self):
        rec = self._seeded_run()
        doc = json.loads(rec.to_jsonl().split("\n")[0])
        hist = doc["series"]["lat"]
        assert set(hist) == {"k", "v", "d", "r", "s", "p50", "p99"}
        plain = doc["series"]["net.delivered"]
        assert set(plain) == {"k", "v", "d", "r"}

    def test_snapshot_merge_round_trip_preserves_aggregates(self):
        # Exporting a registry snapshot and merging it into a fresh
        # registry must leave timeline-derived aggregates unchanged:
        # the recorder over the merged registry sees the same values,
        # deltas, and quantile bounds.
        def drive(metrics):
            c = metrics.counter("net.delivered")
            c.inc(12)
            h = metrics.histogram("lat", buckets=(0.01, 0.1, 1.0))
            for v in (0.005, 0.05, 0.5, 2.0):
                h.observe(v)

        src = MetricsRegistry()
        drive(src)
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        rec_a = FlightRecorder(Telemetry(metrics=src))
        rec_b = FlightRecorder(Telemetry(metrics=dst))
        assert rec_a.sample().to_json() == rec_b.sample().to_json()


class TestQuantileFromCounts:
    def test_empty_window_is_nan(self):
        assert math.isnan(quantile_from_counts((1.0, 2.0), [0, 0, 0], 0.5))

    def test_picks_covering_bound(self):
        assert quantile_from_counts((1.0, 10.0), [3, 1, 0], 0.5) == 1.0
        assert quantile_from_counts((1.0, 10.0), [3, 1, 0], 0.99) == 10.0

    def test_overflow_mass_is_inf(self):
        assert quantile_from_counts((1.0,), [0, 5], 0.9) == float("inf")


class TestNullRecorder:
    def test_null_is_inert(self):
        rec = NullFlightRecorder()
        rec.bind_clock(lambda: 0.0)
        rec.attach(object())
        assert rec.sample() is None
        assert rec.sample_if_due() is None
        assert len(rec) == 0
        assert rec.samples() == []
        assert rec.latest() is None
        assert rec.to_jsonl() == ""
        assert not rec.enabled
        rec.clear()

    def test_null_digest_is_empty_digest(self):
        import hashlib

        assert NULL_RECORDER.digest() == hashlib.sha256(b"").hexdigest()

    def test_factory_returns_null_for_disabled(self):
        assert flight_recorder(NullTelemetry()) is NULL_RECORDER

    def test_factory_builds_live_recorder(self):
        tel = Telemetry()
        rec = flight_recorder(tel, interval=0.5, capacity=9, window=3)
        assert isinstance(rec, FlightRecorder)
        assert (rec.interval, rec.capacity, rec.window) == (0.5, 9, 3)

    def test_factory_defaults(self):
        rec = flight_recorder(Telemetry())
        assert rec.capacity == DEFAULT_CAPACITY
        assert rec.window == DEFAULT_WINDOW


class TestScheduleSampling:
    def test_schedules_inclusive_ticks(self):
        calls = []
        rec = _recorder()
        n = schedule_sampling(
            lambda t, fn: calls.append((t, fn)), rec,
            interval=0.5, until=2.0,
        )
        assert n == 5
        assert [t for t, _ in calls] == [0.0, 0.5, 1.0, 1.5, 2.0]
        assert all(fn == rec.sample for _, fn in calls)

    def test_noop_for_null_recorder(self):
        calls = []
        n = schedule_sampling(
            lambda t, fn: calls.append(t), NULL_RECORDER,
            interval=0.5, until=2.0,
        )
        assert n == 0
        assert calls == []

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            schedule_sampling(lambda t, fn: None, _recorder(),
                              interval=0.0, until=1.0)
