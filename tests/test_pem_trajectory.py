"""Tests for PEM crowd counting and Viterbi trajectory tracking."""

import numpy as np
import pytest

from repro.contexts import MISSED, CellWorld, TrajectorySimulator, ViterbiTracker
from repro.sensing import (
    CrowdCsiScenario,
    GreyVerhulstEstimator,
    percentage_nonzero_elements,
)

RNG = np.random.default_rng(91)


class TestPem:
    def test_pem_range(self):
        frames = RNG.normal(size=(5, 8, 2, 2)) + 1j * RNG.normal(size=(5, 8, 2, 2))
        pem = percentage_nonzero_elements(frames)
        assert 0.0 <= pem <= 1.0

    def test_static_channel_low_pem(self):
        frames = np.ones((6, 8, 2, 2), dtype=complex)
        assert percentage_nonzero_elements(frames) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentage_nonzero_elements(np.ones((1, 8, 2, 2), dtype=complex))
        with pytest.raises(ValueError):
            percentage_nonzero_elements(np.ones((4, 8), dtype=complex))

    def test_pem_grows_with_crowd(self):
        scenario = CrowdCsiScenario(window=8)
        rng = np.random.default_rng(1)
        def mean_pem(count, reps=3):
            return np.mean([
                percentage_nonzero_elements(scenario.capture(count, rng))
                for __ in range(reps)
            ])
        empty = mean_pem(0)
        small = mean_pem(2)
        large = mean_pem(8)
        assert empty < small
        assert small <= large + 0.05

    def test_capture_validation(self):
        with pytest.raises(ValueError):
            CrowdCsiScenario(window=1)
        with pytest.raises(ValueError):
            CrowdCsiScenario().capture(-1, RNG)


class TestGreyEstimator:
    def _fit(self):
        est = GreyVerhulstEstimator()
        counts = [0, 1, 2, 4, 6, 8]
        pems = [0.05, 0.3, 0.45, 0.6, 0.68, 0.72]
        return est.fit(pems, counts)

    def test_forward_monotone_saturating(self):
        est = self._fit()
        preds = [est.predict_pem(c) for c in [0, 1, 3, 6, 10, 30]]
        assert all(a <= b + 1e-9 for a, b in zip(preds, preds[1:]))
        # Saturation: the step from 10 to 30 is tiny vs. 0 to 3.
        assert preds[5] - preds[4] < preds[2] - preds[0]

    def test_roundtrip_estimation(self):
        est = self._fit()
        for count in [1, 2, 4, 6]:
            pem = est.predict_pem(count)
            assert abs(est.estimate_count(pem, max_count=12) - count) <= 1

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            GreyVerhulstEstimator().predict_pem(3)
        with pytest.raises(RuntimeError):
            GreyVerhulstEstimator().estimate_count(0.4)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            GreyVerhulstEstimator().fit([0.1], [1])


class TestCellWorld:
    def test_corridor(self):
        world = CellWorld.corridor(5)
        assert world.cells == [0, 1, 2, 3, 4]
        assert world.neighbors(2) == [1, 3]
        assert world.neighbors(0) == [1]

    def test_floorplan(self):
        world = CellWorld.floorplan(3, 4)
        assert len(world.cells) == 12
        corner_neighbors = world.neighbors(0)
        assert len(corner_neighbors) == 2

    def test_validation(self):
        import networkx as nx
        with pytest.raises(ValueError):
            CellWorld(nx.path_graph(1))


class TestTrajectory:
    def test_walk_stays_on_graph(self):
        world = CellWorld.floorplan(3, 3)
        sim = TrajectorySimulator(world)
        path = sim.walk(40, RNG)
        for a, b in zip(path, path[1:]):
            assert a == b or b in world.neighbors(a)

    def test_observations_aligned(self):
        world = CellWorld.corridor(6)
        sim = TrajectorySimulator(world)
        path = sim.walk(25, RNG)
        obs = sim.observe(path, RNG)
        assert len(obs) == len(path)
        assert all(o == MISSED or o in world.cells for o in obs)

    def test_validation(self):
        world = CellWorld.corridor(4)
        with pytest.raises(ValueError):
            TrajectorySimulator(world, detection_probability=0.9,
                                confusion_probability=0.3)
        with pytest.raises(ValueError):
            TrajectorySimulator(world).walk(0, RNG)
        with pytest.raises(ValueError):
            TrajectorySimulator(world).walk(5, RNG, start=99)


class TestViterbi:
    def test_perfect_observations_recovered(self):
        world = CellWorld.corridor(6)
        sim = TrajectorySimulator(world, detection_probability=1.0,
                                  confusion_probability=0.0)
        tracker = ViterbiTracker(world, detection_probability=1.0,
                                 confusion_probability=0.0)
        path = sim.walk(30, np.random.default_rng(2))
        decoded = tracker.decode(path)
        assert decoded == path

    def test_beats_raw_observations(self):
        """Smoothing over the adjacency graph recovers accuracy the
        raw noisy detections lose."""
        world = CellWorld.floorplan(3, 4)
        sim = TrajectorySimulator(world, detection_probability=0.6,
                                  confusion_probability=0.25)
        tracker = ViterbiTracker(world, detection_probability=0.6,
                                 confusion_probability=0.25)
        rng = np.random.default_rng(3)
        gains = []
        for __ in range(10):
            path = sim.walk(50, rng)
            obs = sim.observe(path, rng)
            tracked, raw = tracker.accuracy(path, obs)
            gains.append(tracked - raw)
        assert np.mean(gains) > 0.05

    def test_handles_missed_detections(self):
        world = CellWorld.corridor(5)
        tracker = ViterbiTracker(world)
        decoded = tracker.decode([0, MISSED, MISSED, 3])
        assert len(decoded) == 4
        # The path must be graph-consistent.
        for a, b in zip(decoded, decoded[1:]):
            assert a == b or b in world.neighbors(a)

    def test_decode_validation(self):
        with pytest.raises(ValueError):
            ViterbiTracker(CellWorld.corridor(3)).decode([])
