"""Determinism tests: same fault plan + seed => byte-identical traces.

Hidden ``random`` usage or dict-iteration-order dependence anywhere on
the fault path would break these, across both the WSN (MicroDeep
transfer replay) and the backscatter (MAC coexistence) paths.
"""

import numpy as np
import pytest

from repro.backscatter.mac import (
    ContentionBackscatterMac,
    ScheduledBackscatterMac,
    run_coexistence,
)
from repro.core import UnitGraph, grid_correspondence_assignment
from repro.faults import (
    FaultPlan,
    FaultTrace,
    LinkFaultModel,
    demo_scenario,
    inject,
)
from repro.nn import Conv2D, Dense, Flatten, ReLU, Sequential
from repro.wsn import CsmaMac, GridTopology, Network, TdmaMac
from repro.wsn.network import Message
from repro.sim import Simulator


def tiny_scenario():
    """An untrained (but deterministically initialized) deployment —
    determinism checks don't need a trained model."""
    from repro.faults.scenario import FaultScenario

    rng = np.random.default_rng(42)
    model = Sequential([Conv2D(1, 3), ReLU(), Flatten(), Dense(2)])
    model.build((1, 6, 6), rng)
    graph = UnitGraph(model)
    topology = GridTopology(2, 2)
    placement = grid_correspondence_assignment(graph, topology)
    return FaultScenario(
        model=model, graph=graph, placement=placement, topology=topology
    )


class TestPlanDeterminism:
    def test_random_plan_is_reproducible(self):
        ids = list(range(9))
        a = FaultPlan.random(7, ids, horizon=1.0, n_crashes=2,
                             n_brownouts=1, n_drifts=1)
        b = FaultPlan.random(7, ids, horizon=1.0, n_crashes=2,
                             n_brownouts=1, n_drifts=1)
        assert a.events == b.events
        assert a.loss_rate == b.loss_rate

    def test_different_seeds_differ(self):
        ids = list(range(9))
        a = FaultPlan.random(7, ids, horizon=1.0, n_crashes=2)
        b = FaultPlan.random(8, ids, horizon=1.0, n_crashes=2)
        assert a.events != b.events


class TestWsnPathDeterminism:
    def run_once(self, x):
        scenario = tiny_scenario()
        plan = (
            FaultPlan(seed=9, loss_rate=0.3, corrupt_rate=0.05,
                      duplicate_rate=0.05)
            .crash(0.01, 3)
            .brownout(0.02, 1, duration=0.05)
        )
        run = inject(scenario, plan)
        run.infer(x)
        run.infer(x)
        return run

    def test_byte_identical_traces(self):
        x = np.random.default_rng(0).normal(size=(4, 1, 6, 6))
        first = self.run_once(x)
        second = self.run_once(x)
        assert first.trace.to_jsonl().encode() == second.trace.to_jsonl().encode()
        assert first.trace.digest() == second.trace.digest()
        assert first.sim.now == second.sim.now
        assert first.network.stats == second.network.stats

    def test_network_link_fault_stream_is_seed_deterministic(self):
        topology = GridTopology(3, 3)
        outcomes = []
        for __ in range(2):
            for node in topology:
                node.alive = True
            trace = FaultTrace()
            link = LinkFaultModel(loss_rate=0.3, duplicate_rate=0.1,
                                  seed=5, trace=trace)
            net = Network(topology, link_faults=link)
            results = [
                net.unicast(Message(src=0, dst=8, n_values=3))
                for __ in range(50)
            ]
            outcomes.append((results, trace.to_jsonl()))
        assert outcomes[0] == outcomes[1]


class TestMacPathDeterminism:
    def mac_run(self, mac_cls, **kwargs):
        trace = FaultTrace()
        link = LinkFaultModel(loss_rate=0.2, duplicate_rate=0.05,
                              seed=3, trace=trace)
        result = run_coexistence(
            mac_cls,
            n_devices=5,
            device_period_s=0.5,
            wlan_rate_pps=40.0,
            duration_s=20.0,
            seed=123,
            link_faults=link,
            **kwargs,
        )
        return result, trace

    @pytest.mark.parametrize(
        "mac_cls", [ScheduledBackscatterMac, ContentionBackscatterMac]
    )
    def test_backscatter_coexistence_deterministic(self, mac_cls):
        first, trace_a = self.mac_run(mac_cls)
        second, trace_b = self.mac_run(mac_cls)
        assert trace_a.to_jsonl().encode() == trace_b.to_jsonl().encode()
        assert first.readings_delivered == second.readings_delivered
        assert first.injected_drops == second.injected_drops
        assert first.duplicated_readings == second.duplicated_readings
        assert first.latencies == second.latencies
        # Faults were actually exercised.
        assert first.injected_drops > 0

    def test_wsn_mac_link_faults_deterministic(self):
        def one_run(mac_factory):
            sim = Simulator()
            trace = FaultTrace()
            link = LinkFaultModel(loss_rate=0.25, duplicate_rate=0.1,
                                  seed=6, trace=trace)
            delivered = []
            mac = mac_factory(sim, link, delivered)
            for i in range(30):
                mac.offer(i % 3, f"pkt{i}")
            sim.run(until=100.0)
            return delivered, trace.to_jsonl(), mac.stats

        def tdma(sim, link, delivered):
            mac = TdmaMac(
                sim, [0, 1, 2], slot_duration=1.0,
                on_delivery=lambda n, p: delivered.append((n, p)),
                link_faults=link,
            )
            mac.start()
            return mac

        def csma(sim, link, delivered):
            return CsmaMac(
                sim, slot_duration=1.0, rng=np.random.default_rng(2),
                on_delivery=lambda n, p: delivered.append((n, p)),
                link_faults=link,
            )

        for factory in (tdma, csma):
            a = one_run(factory)
            b = one_run(factory)
            assert a == b
            assert a[2].dropped > 0  # faults were exercised
