"""Golden-trace regression tests for the fault-injection layer.

One fixed scenario + plan + seed is pinned down to the exact event
sequence (and the sha256 digest of the canonical JSONL trace), so a
refactor of the executor retry path, the link fault model, or the
trace encoder cannot silently change recovery behaviour.  If a change
here is *intentional*, regenerate the constants by running this file's
``build_run()`` and updating the pins.
"""

import json

import numpy as np
import pytest

from repro.core import UnitGraph, grid_correspondence_assignment
from repro.faults import FaultPlan, RetryPolicy, inject
from repro.faults.scenario import FaultScenario
from repro.faults.trace import FaultTrace, TraceRecord
from repro.nn import Conv2D, Dense, Flatten, ReLU, Sequential
from repro.wsn import GridTopology

GOLDEN_DIGEST = "5e64c00d90c4a5ff8a63e7f194f20d923d19d172869b3f270e536d1e62741bae"
GOLDEN_N_RECORDS = 60

#: The exact event-kind sequence for two inferences under the golden
#: plan: inference 1 sees a crash mid-replay plus drops with one
#: exhausted retry budget and zero-fills (no cache yet); inference 2
#: recovers every drop within budget and falls back to stale caches.
GOLDEN_KINDS = [
    "exec.start",
    "fault.crash",
    "degrade.source-down",
    "link.drop",
    "retry.recovered",
    "link.drop",
    "link.drop",
    "degrade.transfer-failed",
    "degrade.source-down",
    "degrade.source-down",
    "link.drop",
    "retry.recovered",
    "degrade.source-down",
    "degrade.source-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "degrade.source-down",
    "degrade.source-down",
    "degrade.zero",
    "degrade.zero",
    "degrade.zero",
    "degrade.zero",
    "degrade.zero",
    "degrade.zero",
    "exec.done",
    "exec.start",
    "link.drop",
    "retry.recovered",
    "degrade.source-down",
    "link.drop",
    "retry.recovered",
    "degrade.source-down",
    "degrade.source-down",
    "link.drop",
    "retry.recovered",
    "link.drop",
    "retry.recovered",
    "degrade.source-down",
    "degrade.source-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "degrade.dest-down",
    "link.drop",
    "retry.recovered",
    "degrade.source-down",
    "link.drop",
    "retry.recovered",
    "degrade.source-down",
    "degrade.stale",
    "degrade.stale",
    "degrade.stale",
    "degrade.stale",
    "degrade.stale",
    "degrade.stale",
    "exec.done",
]

GOLDEN_EXEC_DONE = [
    {"down_nodes": [3], "failed_transfers": 13, "inference": 1,
     "substitutions": 18},
    {"down_nodes": [3], "failed_transfers": 12, "inference": 2,
     "substitutions": 18},
]

#: A spot-check of full records (time, kind, detail) at the start of
#: the trace — the crash fires mid-replay, then the first retry cycle.
GOLDEN_HEAD = [
    (0.0, "exec.start", {"batch": 2, "inference": 1}),
    (0.012, "fault.crash", {"node": 3}),
    (0.02, "degrade.source-down", {"dst": 0, "layer": 0, "src": 3}),
    (0.025, "link.drop", {"dst": 1, "msg": "layer0", "src": 0}),
]


def build_run():
    """The pinned deployment: 2x2 grid, deterministic weights, one
    crash at t=0.012 plus 25 % loss under a 1-retry policy."""
    rng = np.random.default_rng(42)
    model = Sequential([Conv2D(1, 3), ReLU(), Flatten(), Dense(2)])
    model.build((1, 4, 4), rng)
    graph = UnitGraph(model)
    topology = GridTopology(2, 2)
    placement = grid_correspondence_assignment(graph, topology)
    scenario = FaultScenario(
        model=model, graph=graph, placement=placement, topology=topology
    )
    plan = FaultPlan(seed=5, loss_rate=0.25).crash(0.012, 3)
    run = inject(
        scenario, plan,
        policy=RetryPolicy(max_retries=1, attempt_latency_s=0.005,
                           timeout_s=0.05),
    )
    x = np.random.default_rng(1).normal(size=(2, 1, 4, 4))
    run.infer(x)
    run.infer(x)
    return run


@pytest.fixture(scope="module")
def golden_run():
    return build_run()


class TestGoldenTrace:
    def test_digest_is_pinned(self, golden_run):
        assert golden_run.trace.digest() == GOLDEN_DIGEST

    def test_record_count(self, golden_run):
        assert len(golden_run.trace) == GOLDEN_N_RECORDS

    def test_exact_kind_sequence(self, golden_run):
        assert [r.kind for r in golden_run.trace] == GOLDEN_KINDS

    def test_head_records_exact(self, golden_run):
        head = list(golden_run.trace)[: len(GOLDEN_HEAD)]
        got = [(r.time, r.kind, r.detail) for r in head]
        assert got == GOLDEN_HEAD

    def test_exec_done_details(self, golden_run):
        done = golden_run.trace.of_kind("exec.done")
        assert [r.detail for r in done] == GOLDEN_EXEC_DONE

    def test_retry_budget_respected_in_golden(self, golden_run):
        for record in golden_run.trace.of_kind("retry.recovered"):
            assert record.detail["attempts"] == 2
        failed = golden_run.trace.of_kind("degrade.transfer-failed")
        assert len(failed) == 1
        assert failed[0].detail["attempts"] == 2

    def test_second_inference_uses_stale_cache(self, golden_run):
        """Inference 1 has no cache (zero-fill); inference 2 must fall
        back to the stale activations cached by inference 1."""
        zeros = golden_run.trace.of_kind("degrade.zero")
        stales = golden_run.trace.of_kind("degrade.stale")
        assert len(zeros) == 6 and len(stales) == 6
        done = golden_run.trace.of_kind("exec.done")
        assert all(z.time <= done[0].time for z in zeros)
        assert all(s.time > done[0].time for s in stales)


class TestTraceEncoding:
    """The canonical encoding itself is load-bearing for determinism
    tests and golden digests — pin its formatting rules."""

    def test_jsonl_is_canonical(self, golden_run):
        for line in golden_run.trace.to_jsonl().splitlines():
            obj = json.loads(line)
            # Round-trip through the same canonical form is stable.
            assert json.dumps(obj, sort_keys=True,
                              separators=(",", ":")) == line
            assert set(obj) == {"t", "kind", "detail"}

    def test_detail_keys_sorted(self):
        trace = FaultTrace()
        trace.record(0.0, "x", zebra=1, alpha=2, mid=3)
        (rec,) = list(trace)
        assert list(rec.detail) == ["alpha", "mid", "zebra"]

    def test_numpy_scalars_coerced(self):
        trace = FaultTrace()
        trace.record(np.float64(1.5), "x", n=np.int64(3), v=np.float32(0.5))
        line = trace.to_jsonl()
        obj = json.loads(line)
        assert obj["t"] == 1.5
        assert obj["detail"]["n"] == 3
        assert isinstance(obj["detail"]["n"], int)

    def test_records_are_immutable(self):
        rec = TraceRecord(time=0.0, kind="x", detail={})
        with pytest.raises(AttributeError):
            rec.time = 1.0

    def test_digest_changes_with_content(self):
        a, b = FaultTrace(), FaultTrace()
        a.record(0.0, "x", n=1)
        b.record(0.0, "x", n=2)
        assert a.digest() != b.digest()
