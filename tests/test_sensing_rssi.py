"""Tests for the train and room RSSI scenarios."""

import numpy as np
import pytest

from repro.sensing import (
    CongestionLevel,
    RoomOccupancyScenario,
    TrainScenario,
)

RNG = np.random.default_rng(31)


class TestTrainScenario:
    def _scenario(self, **kw):
        return TrainScenario(**kw)

    def test_reference_positions_cover_cars(self):
        s = self._scenario(n_cars=4, refs_per_car=2)
        refs = s.reference_positions()
        assert len(refs) == 8
        cars = {car for car, __ in refs.values()}
        assert cars == {0, 1, 2, 3}

    def test_car_of_x(self):
        s = self._scenario(n_cars=3, car_length_m=20.0)
        assert s.car_of_x(5.0) == 0
        assert s.car_of_x(25.0) == 1
        assert s.car_of_x(59.9) == 2
        assert s.car_of_x(1000.0) == 2  # clipped

    def test_same_car_rssi_stronger_than_far_car(self):
        s = self._scenario(shadowing_sigma_db=0.0)
        levels = [CongestionLevel.LOW] * s.n_cars
        obs = s.generate(levels, participation=0.5, rng=np.random.default_rng(0))
        refs = s.reference_positions()
        # For each phone: its strongest reference should be in its car
        # most of the time (no fading here).
        hits = 0
        for p, car in obs.phone_car.items():
            best_ref = max(refs, key=lambda r: obs.ref_rssi[(p, r)])
            hits += refs[best_ref][0] == car
        assert hits / obs.n_phones > 0.9

    def test_congestion_attenuates(self):
        s = self._scenario(shadowing_sigma_db=0.0, n_cars=2)
        rng = np.random.default_rng(1)
        low = s.generate([CongestionLevel.LOW] * 2, 0.5, rng)
        rng = np.random.default_rng(1)
        high = s.generate([CongestionLevel.HIGH] * 2, 0.5, rng)
        mean_low = np.mean(list(low.ref_rssi.values()))
        mean_high = np.mean(list(high.ref_rssi.values()))
        assert mean_high < mean_low

    def test_observation_consistency(self):
        s = self._scenario()
        levels = s.random_levels(RNG)
        obs = s.generate(levels, 0.4, RNG)
        assert len(obs.car_levels) == s.n_cars
        assert len(obs.car_occupancy) == s.n_cars
        assert all(c >= 1 for c in obs.car_occupancy)
        # every phone has RSSI to every reference node
        refs = s.reference_positions()
        for p in obs.phone_car:
            for r in refs:
                assert (p, r) in obs.ref_rssi

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainScenario(n_cars=1)
        s = self._scenario(n_cars=3)
        with pytest.raises(ValueError):
            s.generate([CongestionLevel.LOW] * 2, 0.5, RNG)
        with pytest.raises(ValueError):
            s.generate([CongestionLevel.LOW] * 3, 0.0, RNG)

    def test_random_levels_in_range(self):
        s = self._scenario()
        levels = s.random_levels(RNG)
        assert len(levels) == s.n_cars
        assert all(isinstance(l, CongestionLevel) for l in levels)


class TestRoomScenario:
    def _scenario(self, **kw):
        return RoomOccupancyScenario(**kw)

    def test_observation_fields(self):
        s = self._scenario()
        obs = s.observe(3, RNG)
        assert obs.n_people == 3
        assert obs.n_devices >= 0
        assert len(obs.feature_vector()) == 4

    def test_empty_room_baseline(self):
        s = self._scenario()
        obs = s.observe(0, RNG)
        assert obs.n_devices == 0

    def test_people_attenuate_inter_node(self):
        s = self._scenario(shadowing_sigma_db=0.3)
        def mean_inter(count, seed):
            obs = s.observe(count, np.random.default_rng(seed))
            return obs.round.mean_inter_node()
        empty = np.mean([mean_inter(0, i) for i in range(5)])
        crowded = np.mean([mean_inter(10, i) for i in range(5)])
        assert crowded < empty - 2.0

    def test_devices_raise_surrounding(self):
        s = self._scenario()
        quiet = s.observe(0, np.random.default_rng(2)).round.mean_surrounding()
        busy = s.observe(10, np.random.default_rng(2)).round.mean_surrounding()
        assert busy > quiet + 1.0

    def test_dataset_balanced(self):
        s = self._scenario(max_people=4)
        data = s.generate_dataset(3, RNG)
        counts = [o.n_people for o in data]
        assert sorted(set(counts)) == [0, 1, 2, 3, 4]
        assert len(data) == 5 * 3

    def test_validation(self):
        s = self._scenario(max_people=5)
        with pytest.raises(ValueError):
            s.observe(6, RNG)
        with pytest.raises(ValueError):
            s.generate_dataset(0, RNG)
        with pytest.raises(ValueError):
            RoomOccupancyScenario(max_people=0)
