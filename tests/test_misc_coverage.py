"""Small-surface tests: initializers, losses, queue edge cases."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss
from repro.nn import initializers
from repro.nn.losses import softmax
from repro.sim import Event, EventQueue
from repro.wsn.network import TrafficStats


class TestInitializers:
    def test_he_normal_scale(self):
        rng = np.random.default_rng(0)
        w = initializers.he_normal((1000, 50), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_glorot_uniform_bounds(self):
        rng = np.random.default_rng(1)
        w = initializers.glorot_uniform((100, 60), rng)
        limit = np.sqrt(6.0 / 160)
        assert np.abs(w).max() <= limit

    def test_conv_fans(self):
        rng = np.random.default_rng(2)
        # (out_c, in_c, kh, kw): fan_in = in_c * kh * kw
        w = initializers.he_normal((32, 4, 3, 3), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 36), rel=0.1)

    def test_zeros(self):
        assert not initializers.zeros((3, 3), np.random.default_rng(0)).any()

    def test_lookup(self):
        assert initializers.get("he_normal") is initializers.he_normal
        with pytest.raises(KeyError, match="valid"):
            initializers.get("chaotic")


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(3).normal(size=(5, 7)) * 10
        s = softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0)
        assert np.all(s > 0)

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 1000.0))

    def test_extreme_logits_stable(self):
        s = softmax(np.array([[1e4, -1e4]]))
        assert np.isfinite(s).all()


class TestLossEdgeCases:
    def test_cross_entropy_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().forward(np.zeros((2, 3, 4)), np.zeros(2))

    def test_cross_entropy_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_mse_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()

    def test_cross_entropy_predict(self):
        loss = CrossEntropyLoss()
        logits = np.array([[0.1, 2.0], [3.0, -1.0]])
        np.testing.assert_array_equal(loss.predict(logits), [1, 0])


class TestEventQueueEdges:
    def test_clear(self):
        q = EventQueue()
        q.push(Event(1.0, lambda: None))
        q.clear()
        assert len(q) == 0
        with pytest.raises(IndexError):
            q.peek_time()

    def test_double_cancel_safe(self):
        q = EventQueue()
        e = q.push(Event(1.0, lambda: None))
        q.cancel(e)
        q.cancel(e)  # second cancel must not corrupt the count
        assert len(q) == 0


class TestTrafficStats:
    def test_rx_values_of_missing_node(self):
        stats = TrafficStats()
        assert stats.rx_values_of(42) == 0
        assert stats.max_rx_values() == 0
