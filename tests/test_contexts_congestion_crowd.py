"""Tests for congestion estimation and crowd counting."""

import numpy as np
import pytest

from repro.contexts import CongestionEstimator, CrowdCounter
from repro.sensing import CongestionLevel, RoomOccupancyScenario, TrainScenario

RNG = np.random.default_rng(41)


def make_train_data(scenario, n_obs, seed, participation=0.35):
    rng = np.random.default_rng(seed)
    return [
        scenario.generate(scenario.random_levels(rng), participation, rng)
        for __ in range(n_obs)
    ]


class TestCongestionEstimator:
    @pytest.fixture(scope="class")
    def fitted(self):
        scenario = TrainScenario(n_cars=4)
        estimator = CongestionEstimator(scenario)
        estimator.calibrate(make_train_data(scenario, 40, seed=1))
        return scenario, estimator

    def test_requires_calibration(self):
        scenario = TrainScenario()
        est = CongestionEstimator(scenario)
        obs = make_train_data(scenario, 1, seed=0)[0]
        with pytest.raises(RuntimeError):
            est.estimate_positions(obs)
        with pytest.raises(RuntimeError):
            est.estimate_congestion(obs)

    def test_calibrate_empty_raises(self):
        with pytest.raises(ValueError):
            CongestionEstimator(TrainScenario()).calibrate([])

    def test_positions_cover_phones(self, fitted):
        scenario, estimator = fitted
        obs = make_train_data(scenario, 1, seed=2)[0]
        positions = estimator.estimate_positions(obs)
        assert set(positions) == set(obs.phone_car)
        for est in positions.values():
            assert 0 <= est.car < scenario.n_cars
            assert 0.0 < est.reliability <= 1.0

    def test_position_accuracy_beats_chance(self, fitted):
        scenario, estimator = fitted
        result = estimator.evaluate(make_train_data(scenario, 10, seed=3))
        assert result.position_accuracy > 1.0 / scenario.n_cars + 0.2

    def test_congestion_levels_valid(self, fitted):
        scenario, estimator = fitted
        obs = make_train_data(scenario, 1, seed=4)[0]
        levels = estimator.estimate_congestion(obs)
        assert len(levels) == scenario.n_cars
        assert all(isinstance(l, CongestionLevel) for l in levels)

    def test_congestion_beats_chance(self, fitted):
        scenario, estimator = fitted
        result = estimator.evaluate(make_train_data(scenario, 10, seed=5))
        assert result.congestion_accuracy > 1.0 / 3 + 0.1
        assert result.congestion_f_measure > 0.4


class TestCrowdCounter:
    @pytest.fixture(scope="class")
    def room(self):
        return RoomOccupancyScenario(max_people=8)

    def test_requires_fit(self, room):
        counter = CrowdCounter()
        obs = [room.observe(1, np.random.default_rng(0))]
        with pytest.raises(RuntimeError):
            counter.predict_people(obs)
        with pytest.raises(RuntimeError):
            counter.predict_devices(obs)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            CrowdCounter().fit([])

    def test_counts_beat_chance(self, room):
        rng = np.random.default_rng(6)
        train = room.generate_dataset(12, rng)
        test = room.generate_dataset(4, np.random.default_rng(7))
        counter = CrowdCounter().fit(train)
        result = counter.evaluate(test)
        n_classes = room.max_people + 1
        assert result.people_accuracy > 1.0 / n_classes + 0.1
        assert result.people_within_2 > result.people_accuracy

    def test_device_estimate_tracks_truth(self, room):
        rng = np.random.default_rng(8)
        train = room.generate_dataset(12, rng)
        counter = CrowdCounter().fit(train)
        test = room.generate_dataset(4, np.random.default_rng(9))
        result = counter.evaluate(test)
        assert result.device_mae < 4.0

    def test_predictions_non_negative(self, room):
        rng = np.random.default_rng(10)
        train = room.generate_dataset(8, rng)
        counter = CrowdCounter().fit(train)
        test = [room.observe(0, np.random.default_rng(11))]
        assert counter.predict_devices(test)[0] >= 0.0
