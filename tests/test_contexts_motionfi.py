"""Tests for Motion-Fi repetition counting and RF-Kinect postures."""

import numpy as np
import pytest

from repro.contexts import (
    Posture,
    PostureClassifier,
    RepetitionCounter,
    count_repetitions,
)
from repro.contexts.motionfi import POSTURE_TAG_HEIGHTS

RNG = np.random.default_rng(131)


class TestCycleCounting:
    def test_clean_sine(self):
        t = np.linspace(0, 5, 500)
        x = np.sin(2 * np.pi * t)  # 5 full cycles
        assert count_repetitions(x) == 5

    def test_flat_series_zero(self):
        assert count_repetitions(np.zeros(100)) == 0

    def test_noise_rejected_by_hysteresis(self):
        rng = np.random.default_rng(0)
        t = np.linspace(0, 3, 300)
        x = np.sin(2 * np.pi * t) + rng.normal(0, 0.08, size=t.shape)
        assert count_repetitions(x) == 3

    def test_partial_cycle_not_counted(self):
        t = np.linspace(0, 0.4, 50)
        x = np.sin(2 * np.pi * t)  # rises but never completes
        assert count_repetitions(x) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            count_repetitions(np.zeros(2))


class TestRepetitionCounter:
    def test_end_to_end_squat_count(self):
        """Phase-read displacement recovers the programmed rep count."""
        counter = RepetitionCounter(dt=0.05)
        rng = np.random.default_rng(1)
        for n_reps in [3, 7, 12]:
            distances = counter.synthesize_exercise(
                n_reps, rep_period_s=2.0, amplitude_m=0.25, rng=rng
            )
            counted = counter.count_from_distances(distances, rng)
            assert counted == n_reps, n_reps

    def test_zero_reps(self):
        counter = RepetitionCounter(dt=0.05)
        rng = np.random.default_rng(2)
        distances = counter.synthesize_exercise(0, 2.0, 0.25, rng)
        assert counter.count_from_distances(distances, rng) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RepetitionCounter(dt=0.0)
        counter = RepetitionCounter()
        with pytest.raises(ValueError):
            counter.synthesize_exercise(-1, 2.0, 0.2, RNG)


class TestPostureClassifier:
    def test_templates_ordered_sensibly(self):
        standing = POSTURE_TAG_HEIGHTS[Posture.STANDING]
        lying = POSTURE_TAG_HEIGHTS[Posture.LYING]
        assert standing[0] > lying[0]  # head tag height
        assert all(a >= b for a, b in zip(standing, standing[1:]))

    def test_distance_geometry(self):
        clf = PostureClassifier(reader_height_m=2.0, horizontal_offset_m=2.5)
        # A tag at reader height: distance = horizontal offset.
        assert clf.tag_distance(2.0) == pytest.approx(2.5)
        assert clf.tag_distance(0.0) > clf.tag_distance(2.0)

    def test_height_recovery(self):
        clf = PostureClassifier()
        rng = np.random.default_rng(3)
        true = POSTURE_TAG_HEIGHTS[Posture.STANDING]
        measured = clf.measure_heights(true, rng, distance_noise_m=0.005)
        # Near-vertical incidence amplifies distance noise into height
        # error; the templates are ~0.4 m apart, so 0.25 m suffices.
        np.testing.assert_allclose(measured, true, atol=0.25)

    @pytest.mark.parametrize("posture", list(Posture))
    def test_classification_roundtrip(self, posture):
        clf = PostureClassifier()
        rng = np.random.default_rng(int(posture) + 10)
        hits = sum(
            clf.observe_and_classify(posture, rng) == posture
            for __ in range(20)
        )
        assert hits >= 18

    def test_lying_detection_is_fall_signal(self):
        """The scenario-(i) hook: lying posture flags a fall."""
        clf = PostureClassifier()
        rng = np.random.default_rng(4)
        result = clf.observe_and_classify(Posture.LYING, rng)
        assert result is Posture.LYING

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            PostureClassifier().classify([1.0, 2.0])
