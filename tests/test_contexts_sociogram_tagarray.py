"""Tests for the sociogram builder and tag-array sensing."""

import numpy as np
import pytest

from repro.contexts import (
    SociogramBuilder,
    TagArraySensor,
    estimate_periodicity,
    simulate_playground_contacts,
)

RNG = np.random.default_rng(47)


class TestPlaygroundSimulation:
    def test_log_structure(self):
        log = simulate_playground_contacts(12, 4, 30, RNG)
        assert log.n_children == 12
        assert log.records
        for slot, area, present in log.records:
            assert 0 <= area < 4
            assert present <= set(range(12))

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_playground_contacts(1, 4, 10, RNG)
        with pytest.raises(ValueError):
            simulate_playground_contacts(5, 4, 10, RNG, isolated_children=5)

    def test_groups_partition_children(self):
        log = simulate_playground_contacts(12, 4, 30, RNG, isolated_children=2)
        all_children = set().union(*log.true_groups)
        assert all_children == set(range(12))


class TestSociogramBuilder:
    def _log(self, seed=0):
        return simulate_playground_contacts(
            15, 5, 60, np.random.default_rng(seed),
            n_groups=3, friend_affinity=0.85, isolated_children=2,
        )

    def test_graph_nodes(self):
        log = self._log()
        g = SociogramBuilder().build(log)
        assert set(g.nodes) == set(range(15))

    def test_friends_more_connected_than_strangers(self):
        log = self._log(1)
        g = SociogramBuilder().build(log)
        same, cross = [], []
        groups = log.true_groups[:-1]  # exclude loners
        for gi, group in enumerate(groups):
            members = sorted(group)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    same.append(g[a][b]["weight"] if g.has_edge(a, b) else 0)
            for other in groups[gi + 1 :]:
                for a in group:
                    for b in other:
                        cross.append(g[a][b]["weight"] if g.has_edge(a, b) else 0)
        assert np.mean(same) > 2 * np.mean(cross)

    def test_communities_recover_groups(self):
        log = self._log(2)
        builder = SociogramBuilder(min_weight=3)
        g = builder.build(log)
        communities = builder.friendship_groups(g)
        assert communities
        # The largest true group should be mostly inside one community.
        big = max(log.true_groups[:-1], key=len)
        best_overlap = max(len(big & c) / len(big) for c in communities)
        assert best_overlap > 0.6

    def test_isolated_children_flagged(self):
        log = self._log(3)
        builder = SociogramBuilder(min_weight=3)
        g = builder.build(log)
        loners = log.true_groups[-1]
        flagged = builder.isolated_children(g, percentile=15.0)
        assert loners & flagged

    def test_interaction_matrix_symmetric(self):
        log = self._log(4)
        builder = SociogramBuilder()
        g = builder.build(log)
        mat = builder.interaction_matrix(g, log.n_children)
        np.testing.assert_array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_min_weight_validation(self):
        with pytest.raises(ValueError):
            SociogramBuilder(min_weight=0)


class TestTagArray:
    def test_phase_wraps(self):
        sensor = TagArraySensor()
        lam = sensor.wavelength_m
        p0 = sensor.phase_of_distance(1.0)
        p1 = sensor.phase_of_distance(1.0 + lam / 2)  # round trip = 1 lambda
        assert p1 == pytest.approx(p0, abs=1e-9)

    def test_displacement_recovery(self):
        """Slow motion below lambda/4 per step is recovered."""
        sensor = TagArraySensor(phase_noise_rad=0.0)
        rng = np.random.default_rng(0)
        true = 1.0 + np.linspace(0.0, 0.05, 60)  # 5 cm drift
        readings = [sensor.read(0, d, i * 0.1, rng) for i, d in enumerate(true)]
        est = sensor.displacement_series(readings)
        np.testing.assert_allclose(est, true - true[0], atol=1e-6)

    def test_displacement_needs_two(self):
        sensor = TagArraySensor()
        reading = sensor.read(0, 1.0, 0.0, RNG)
        with pytest.raises(ValueError):
            sensor.displacement_series([reading])

    def test_track_tags_shapes(self):
        sensor = TagArraySensor()
        traj = {0: np.linspace(1.0, 1.02, 30), 1: np.full(30, 2.0)}
        tracks = sensor.track_tags(traj, dt=0.05, rng=RNG)
        assert set(tracks) == {0, 1}
        assert len(tracks[0]) == 30

    def test_breathing_rate_extraction(self):
        """A 0.3 Hz chest motion is recovered from tag phases."""
        sensor = TagArraySensor(phase_noise_rad=0.02)
        rng = np.random.default_rng(1)
        dt = 0.1
        t = np.arange(300) * dt
        breathing = 1.0 + 0.006 * np.sin(2 * np.pi * 0.3 * t)  # 6 mm
        readings = [sensor.read(0, d, ti, rng) for d, ti in zip(breathing, t)]
        disp = sensor.displacement_series(readings)
        freq, power = estimate_periodicity(disp, dt, min_hz=0.1, max_hz=2.0)
        assert freq == pytest.approx(0.3, abs=0.05)
        assert power > 0.3

    def test_periodicity_validation(self):
        with pytest.raises(ValueError):
            estimate_periodicity(np.zeros(4), 0.1)
        with pytest.raises(ValueError):
            estimate_periodicity(np.zeros(100), -1.0)

    def test_flat_series_no_peak(self):
        freq, power = estimate_periodicity(np.zeros(64), 0.1)
        assert freq == 0.0 and power == 0.0
