"""Property tests (``-m perf``) for the vectorized hot paths.

Randomized placements, topologies, and event schedules check the
*invariants* the vectorization must conserve, rather than specific
values: aggregated traffic replay keeps the transfer multiset and its
layer ordering, and ``run_batch`` is observationally identical to
repeated ``step()`` / sliced ``run()``.
"""

from collections import Counter

import numpy as np
import pytest

from repro.core import (
    DistributedExecutor,
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.sim import Simulator
from repro.wsn import GridTopology, Network

pytestmark = pytest.mark.perf


class SpyNetwork(Network):
    """Network that records every (src, dst, n_values, kind, copies)."""

    def __init__(self, topology):
        super().__init__(topology)
        self.log = []

    def unicast(self, message):
        self.log.append(
            (message.src, message.dst, message.n_values, message.kind, 1)
        )
        return super().unicast(message)

    def unicast_bulk(self, message, copies):
        self.log.append(
            (message.src, message.dst, message.n_values, message.kind, copies)
        )
        return super().unicast_bulk(message, copies)


def build_case(rng, input_hw=(8, 8)):
    """A random placed model over a random topology."""
    model = Sequential([
        Conv2D(int(rng.integers(1, 3)), 3), ReLU(), MaxPool2D(2), Flatten(),
        Dense(int(rng.integers(4, 10))), ReLU(), Dense(2),
    ])
    model.build((1,) + input_hw, np.random.default_rng(int(rng.integers(1e6))))
    graph = UnitGraph(model)
    # Placement strategies map input cells through the grid geometry,
    # so topologies vary by random grid shape (and sink choice).
    topo = GridTopology(int(rng.integers(3, 7)), int(rng.integers(3, 7)))
    strategies = [
        lambda g, t: grid_correspondence_assignment(g, t),
        lambda g, t: centralized_assignment(g, t),
        lambda g, t: centralized_assignment(g, t, sink=min(t.nodes)),
        lambda g, t: round_robin_assignment(g, t),
        lambda g, t: random_assignment(
            g, t, np.random.default_rng(int(rng.integers(1e6)))
        ),
    ]
    strategy = strategies[int(rng.integers(len(strategies)))]
    placement = strategy(graph, topo)
    return model, graph, topo, placement


class TestReplayConservation:
    @pytest.mark.parametrize("trial", range(8))
    def test_aggregation_conserves_transfer_multiset(self, trial):
        """Sum over bulk sends == the per-element multiset, for any
        random placement/topology/batch."""
        rng = np.random.default_rng(1000 + trial)
        model, graph, topo, placement = build_case(rng)
        batch = int(rng.integers(1, 9))

        spy_fast = SpyNetwork(topo)
        ex = DistributedExecutor(model, graph, placement, spy_fast)
        ex.replay_traffic(batch)

        spy_ref = SpyNetwork(topo)
        ex_ref = DistributedExecutor(model, graph, placement, spy_ref)
        ex_ref.replay_traffic(batch, per_element=True)

        def multiset(log):
            counts = Counter()
            for src, dst, n_values, kind, copies in log:
                counts[(src, dst, n_values, kind)] += copies
            return counts

        assert multiset(spy_fast.log) == multiset(spy_ref.log)
        # Total values moved is conserved too.
        fast_total = sum(n * c for __, __, n, __, c in spy_fast.log)
        ref_total = sum(n * c for __, __, n, __, c in spy_ref.log)
        assert fast_total == ref_total

    @pytest.mark.parametrize("trial", range(8))
    def test_aggregation_conserves_per_node_stats(self, trial):
        rng = np.random.default_rng(2000 + trial)
        model, graph, topo, placement = build_case(rng)
        batch = int(rng.integers(1, 9))

        net_fast = Network(topo)
        DistributedExecutor(model, graph, placement, net_fast).replay_traffic(
            batch
        )
        net_ref = Network(topo)
        DistributedExecutor(model, graph, placement, net_ref).replay_traffic(
            batch, per_element=True
        )
        assert dict(net_fast.stats.per_node_rx_values) == (
            dict(net_ref.stats.per_node_rx_values)
        )
        assert dict(net_fast.stats.per_node_tx_values) == (
            dict(net_ref.stats.per_node_tx_values)
        )
        assert net_fast.stats.sent == net_ref.stats.sent
        assert net_fast.stats.delivered == net_ref.stats.delivered
        assert net_fast.stats.total_hops == net_ref.stats.total_hops

    @pytest.mark.parametrize("trial", range(4))
    def test_replay_layer_order_non_decreasing(self, trial):
        """Aggregation must not reorder layers: the replayed kind
        sequence stays non-decreasing like the flat transfer list."""
        rng = np.random.default_rng(3000 + trial)
        model, graph, topo, placement = build_case(rng)
        spy = SpyNetwork(topo)
        DistributedExecutor(model, graph, placement, spy).replay_traffic(2)
        layers = [int(kind[len("layer"):]) for __, __, __, kind, __ in spy.log]
        assert layers == sorted(layers)


def record(trace, tag):
    def handler():
        trace.append(tag)
    return handler


def schedule_random_workload(sim, rng, trace, n=60):
    """Random times with heavy ties, priorities, and cancellations."""
    events = []
    for i in range(n):
        delay = float(rng.integers(0, 10)) / 2.0
        priority = int(rng.integers(-2, 3))
        events.append(
            sim.schedule(delay, record(trace, i), priority=priority)
        )
    for i in rng.choice(n, size=n // 5, replace=False):
        sim.cancel(events[int(i)])
    return events


class TestRunBatchEquivalence:
    @pytest.mark.parametrize("trial", range(10))
    def test_drain_all_matches_step_loop(self, trial):
        rng_a = np.random.default_rng(4000 + trial)
        rng_b = np.random.default_rng(4000 + trial)
        sim_a, sim_b = Simulator(), Simulator()
        trace_a, trace_b = [], []
        schedule_random_workload(sim_a, rng_a, trace_a)
        schedule_random_workload(sim_b, rng_b, trace_b)

        sim_a.run_batch()
        while sim_b.step():
            pass

        assert trace_a == trace_b
        assert sim_a.now == sim_b.now
        assert sim_a.processed == sim_b.processed
        assert sim_a.pending == sim_b.pending == 0

    @pytest.mark.parametrize("trial", range(10))
    def test_sliced_drain_matches_run(self, trial):
        """run_batch(until=...) == run(until=...) slice for slice,
        including boundaries landing exactly on event times."""
        rng_a = np.random.default_rng(5000 + trial)
        rng_b = np.random.default_rng(5000 + trial)
        sim_a, sim_b = Simulator(), Simulator()
        trace_a, trace_b = [], []
        schedule_random_workload(sim_a, rng_a, trace_a)
        schedule_random_workload(sim_b, rng_b, trace_b)

        # Half-unit boundaries coincide exactly with event times.
        cuts = [0.0, 0.5, 1.0, 2.5, 2.5, 3.0, 4.75, 6.0]
        for until in cuts:
            assert sim_a.run_batch(until=until) == sim_b.run(until=until)
            assert trace_a == trace_b
            assert sim_a.now == sim_b.now
            assert sim_a.processed == sim_b.processed
            assert sim_a.pending == sim_b.pending
        sim_a.run_batch()
        sim_b.run()
        assert trace_a == trace_b
        assert sim_a.pending == sim_b.pending == 0

    def test_until_before_first_event_requeues_cleanly(self):
        sim = Simulator()
        trace = []
        sim.schedule(5.0, record(trace, "late"))
        assert sim.run_batch(until=1.0) == 1.0
        assert trace == []
        assert sim.pending == 1
        # The requeued event keeps its slot and still fires in order.
        sim.schedule(3.0, record(trace, "early"))  # fires at t=4.0 < 5.0
        sim.run_batch()
        assert trace == ["early", "late"]

    def test_requeued_event_keeps_insertion_order_on_tie(self):
        """Two same-time same-priority events: the first is popped,
        requeued past an until horizon, and must still fire first."""
        sim = Simulator()
        trace = []
        sim.schedule(2.0, record(trace, "first"))
        sim.schedule(2.0, record(trace, "second"))
        sim.run_batch(until=1.0)  # pops "first", requeues it
        sim.run_batch()
        assert trace == ["first", "second"]

    def test_run_batch_max_events(self):
        sim = Simulator()
        trace = []
        for i in range(5):
            sim.schedule(float(i), record(trace, i))
        sim.run_batch(max_events=2)
        assert trace == [0, 1]
        assert sim.pending == 3
        sim.run_batch()
        assert trace == [0, 1, 2, 3, 4]

    def test_run_batch_reentrancy_guarded(self):
        from repro.sim import SimulationError
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run_batch()

        sim.schedule(0.0, reenter)
        sim.run_batch()

    def test_run_batch_resumable_after_handler_raises(self):
        sim = Simulator()
        trace = []

        def boom():
            raise RuntimeError("handler failure")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, record(trace, "after"))
        with pytest.raises(RuntimeError):
            sim.run_batch()
        assert sim.now == 1.0
        assert sim.processed == 1
        sim.run_batch()
        assert trace == ["after"]

    def test_handler_scheduling_new_events_matches_run(self):
        def build(sim, trace):
            def chain(depth):
                trace.append(depth)
                if depth < 4:
                    sim.schedule(0.5, chain, depth + 1)
            sim.schedule(0.0, chain, 0)

        sim_a, sim_b = Simulator(), Simulator()
        trace_a, trace_b = [], []
        build(sim_a, trace_a)
        build(sim_b, trace_b)
        assert sim_a.run_batch(until=1.2) == sim_b.run(until=1.2)
        sim_a.run_batch()
        sim_b.run()
        assert trace_a == trace_b == [0, 1, 2, 3, 4]
        assert sim_a.now == sim_b.now
