"""Tracer semantics: nesting, sim-clock stamping, drain-strategy
parity, determinism, and the null-backend no-op pins."""

import json

import pytest

from repro.obs import (
    NULL,
    NullTracer,
    Telemetry,
    Tracer,
    current,
    install,
    session,
    uninstall,
)
from repro.sim.engine import Simulator


class TestSpanNesting:
    def test_parent_ids_follow_the_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {rec.name: rec for rec in tracer.events}
        outer = by_name["outer"]
        assert outer.parent_id == 0
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["sibling"].parent_id == outer.span_id

    def test_completion_order_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [rec.name for rec in tracer.events] == ["inner", "outer"]

    def test_instant_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.instant("mark", node=3)
        rec = tracer.events[0]
        assert rec.phase == "i"
        assert rec.parent_id == outer.span_id
        assert rec.attrs == {"node": 3}

    def test_annotate_lands_in_attrs(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.annotate(b="two")
        assert tracer.events[0].attrs == {"a": 1, "b": "two"}

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_depth_tracks_open_spans(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("a"):
            assert tracer.depth == 1
        assert tracer.depth == 0


class TestSimClock:
    def test_spans_stamped_with_simulated_time(self):
        tracer = Tracer()
        tel = Telemetry(tracer=tracer)
        sim = Simulator(telemetry=tel)
        sim.schedule(2.5, lambda: None, name="tick")
        sim.run()
        (rec,) = tracer.events
        assert rec.name == "sim.event"
        assert rec.t_start == 2.5
        assert rec.attrs["name"] == "tick"

    def _drain(self, strategy):
        """One traced three-event workload drained by `strategy`."""
        tel = Telemetry()
        sim = Simulator(telemetry=tel)
        for i, t in enumerate((0.5, 1.0, 1.0)):
            sim.schedule(t, lambda: None, priority=i, name=f"e{i}")
        getattr(sim, strategy)(until=2.0)
        return tel.tracer.to_jsonl()

    def test_run_and_run_batch_traces_identical(self):
        """The acceptance pin: both drain strategies must produce the
        same spans in the same order, byte for byte."""
        assert self._drain("run") == self._drain("run_batch")

    def test_step_matches_run(self):
        tel = Telemetry()
        sim = Simulator(telemetry=tel)
        sim.schedule(0.5, lambda: None, name="e0")
        while sim.step():
            pass
        assert tel.tracer.to_jsonl() == self._drain_single()

    def _drain_single(self):
        tel = Telemetry()
        sim = Simulator(telemetry=tel)
        sim.schedule(0.5, lambda: None, name="e0")
        sim.run()
        return tel.tracer.to_jsonl()


class TestDeterminism:
    def _traced_run(self):
        tel = Telemetry()
        sim = Simulator(telemetry=tel)

        def handler():
            tel.tracer.instant("inner", now=sim.now)

        for t in (0.25, 0.5, 1.75):
            sim.schedule(t, handler, name="h")
        sim.run()
        return tel.tracer

    def test_same_program_byte_identical_trace(self):
        assert self._traced_run().to_jsonl() == self._traced_run().to_jsonl()
        assert self._traced_run().digest() == self._traced_run().digest()

    def test_wall_times_recorded_but_excluded_by_default(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        rec = tracer.events[0]
        assert rec.wall_end_s >= rec.wall_start_s
        assert "wall_dur_us" not in json.loads(rec.to_json())["args"]
        assert "wall_dur_us" in json.loads(
            rec.to_json(include_wall=True)
        )["args"]

    def test_clear_drops_events(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert len(tracer) == 0


class TestJsonlSchema:
    def test_every_line_is_a_chrome_event(self):
        tracer = Tracer()
        with tracer.span("outer", layer=1):
            tracer.instant("mark")
        for line in tracer.to_jsonl().splitlines():
            event = json.loads(line)
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], float)
            assert event["cat"] == "repro"
            if event["ph"] == "X":
                assert "dur" in event
            else:
                assert event["s"] == "t"


class TestNullBackend:
    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("s", a=1) as span:
            span.annotate(b=2)
            tracer.instant("i")
        assert tracer.events == []
        assert len(tracer) == 0
        assert tracer.depth == 0
        assert tracer.to_jsonl() == ""

    def test_null_span_is_shared(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_current_defaults_to_null(self):
        assert current() is NULL
        assert current().enabled is False

    def test_install_uninstall(self):
        tel = install()
        try:
            assert current() is tel
            assert tel.enabled is True
        finally:
            uninstall()
        assert current() is NULL

    def test_sessions_nest_and_restore(self):
        with session() as outer:
            with session() as inner:
                assert current() is inner
            assert current() is outer
        assert current() is NULL
