"""Differential parity harness: compiled plans vs. the event-driven
oracle.

The compiled fast path (:mod:`repro.core.compiled`) must be
*indistinguishable* from the event-driven executor wherever it is
allowed to run: byte-identical logits and exactly equal traffic
counters — every global and per-node counter the network keeps — across
placements, model shapes, and batch sizes.  Where it is not allowed to
run (fault adapter, lossy links, installed link-fault model, node
down), it must either refuse with the typed
:class:`~repro.core.PlanNotCompilable` or fall back to the oracle —
never be silently wrong.

Digest pins follow the oracle pattern of the vectorized-training suite:
the reference path is run twice to prove it stable, then the compiled
digest is required to equal the oracle's.
"""

import hashlib
from collections import Counter

import numpy as np
import pytest

from repro.core import (
    CompiledPlan,
    DistributedExecutor,
    PlanNotCompilable,
    UnitGraph,
    centralized_assignment,
    compile_plan,
    grid_correspondence_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.faults.links import LinkFaultModel
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.wsn import GridTopology, Network

RNG = np.random.default_rng(608)

#: Model shapes the differential suite sweeps: dense-only (no spatial
#: layers past the input grid) and the paper's conv+pool stack.
MODELS = {
    "dense_only": (
        lambda: [Flatten(), Dense(10), ReLU(), Dense(3)],
        (1, 6, 6),
        (3, 3),
    ),
    "conv_pool": (
        lambda: [Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(),
                 Dense(8), ReLU(), Dense(2)],
        (1, 10, 10),
        (4, 4),
    ),
}

STRATEGIES = [
    grid_correspondence_assignment,
    lambda g, t: centralized_assignment(g, t),
    round_robin_assignment,
    lambda g, t: random_assignment(g, t, np.random.default_rng(5)),
]


def make(kind, seed=0):
    layers, input_shape, node_grid = MODELS[kind]
    model = Sequential(layers())
    model.build(input_shape, np.random.default_rng(seed))
    graph = UnitGraph(model)
    topo = GridTopology(*node_grid)
    return model, graph, topo


def make_batch(kind, batch, seed=1):
    input_shape = MODELS[kind][1]
    return np.random.default_rng(seed).normal(
        size=(batch,) + tuple(input_shape)
    )


def stats_snapshot(net):
    """Every counter the network keeps, node counters included."""
    s = net.stats
    return {
        "sent": s.sent,
        "delivered": s.delivered,
        "dropped": s.dropped,
        "corrupted": s.corrupted,
        "duplicated": s.duplicated,
        "total_hops": s.total_hops,
        "rx": dict(s.per_node_rx_values),
        "tx": dict(s.per_node_tx_values),
        "node_rx_count": {n.node_id: n.rx_count for n in net.topology},
        "node_tx_count": {n.node_id: n.tx_count for n in net.topology},
        "node_rx_values": {n.node_id: n.rx_values for n in net.topology},
        "node_tx_values": {n.node_id: n.tx_values for n in net.topology},
    }


def digest(arr):
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


class TestCompiledParity:
    @pytest.mark.parametrize("kind", sorted(MODELS))
    @pytest.mark.parametrize("batch", [1, 8, 32])
    def test_logits_and_all_counters_identical(self, kind, batch):
        """The headline differential: same bytes out, same traffic in
        every counter, for every placement strategy."""
        model, graph, topo = make(kind)
        x = make_batch(kind, batch)
        for strategy in STRATEGIES:
            placement = strategy(graph, topo)
            net_plan = Network(topo)
            ex_plan = DistributedExecutor(model, graph, placement, net_plan)
            out_plan = ex_plan.forward(x)
            assert ex_plan._compiled_plan is not None  # plan actually ran
            plan_stats = stats_snapshot(net_plan)
            net_plan.reset_stats()  # node counters are shared via topo

            net_ref = Network(topo)
            ex_ref = DistributedExecutor(model, graph, placement, net_ref)
            out_ref = ex_ref.forward(x, plan=None)

            assert out_plan.tobytes() == out_ref.tobytes()
            assert plan_stats == stats_snapshot(net_ref)
            net_ref.reset_stats()

    @pytest.mark.parametrize("kind", sorted(MODELS))
    def test_repeated_runs_accumulate_identically(self, kind):
        """Counters after N compiled forwards == after N oracle
        forwards (accumulation, not just one-shot equality)."""
        model, graph, topo = make(kind)
        placement = grid_correspondence_assignment(graph, topo)
        net_plan = Network(topo)
        ex_plan = DistributedExecutor(model, graph, placement, net_plan)
        for batch in (1, 8, 3):
            ex_plan.forward(make_batch(kind, batch, seed=batch))
        plan_stats = stats_snapshot(net_plan)
        net_plan.reset_stats()  # node counters are shared via topo
        net_ref = Network(topo)
        ex_ref = DistributedExecutor(model, graph, placement, net_ref)
        for batch in (1, 8, 3):
            ex_ref.forward(make_batch(kind, batch, seed=batch), plan=None)
        assert plan_stats == stats_snapshot(net_ref)

    def test_count_traffic_false_moves_no_traffic(self):
        model, graph, topo = make("conv_pool")
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo)
        ex = DistributedExecutor(model, graph, placement, net)
        x = make_batch("conv_pool", 4)
        out = ex.forward(x, count_traffic=False)
        assert ex._compiled_plan is not None
        assert net.stats.sent == 0
        assert stats_snapshot(net) == stats_snapshot(Network(topo))
        ref = ex.forward(x, count_traffic=False, plan=None)
        assert out.tobytes() == ref.tobytes()

    def test_explicit_plan_object_accepted(self):
        model, graph, topo = make("conv_pool")
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo)
        ex = DistributedExecutor(model, graph, placement, net)
        plan = compile_plan(ex)
        assert isinstance(plan, CompiledPlan)
        x = make_batch("conv_pool", 2)
        out = ex.forward(x, plan=plan)
        ref = ex.forward(x, plan=None)
        assert out.tobytes() == ref.tobytes()

    def test_foreign_plan_rejected(self):
        model, graph, topo = make("conv_pool")
        placement = grid_correspondence_assignment(graph, topo)
        ex_a = DistributedExecutor(model, graph, placement, Network(topo))
        ex_b = DistributedExecutor(model, graph, placement, Network(topo))
        plan_a = compile_plan(ex_a)
        with pytest.raises(ValueError, match="different network"):
            ex_b.forward(make_batch("conv_pool", 1), plan=plan_a)

    @pytest.mark.parametrize("kind", sorted(MODELS))
    def test_masked_dead_nodes_identical(self, kind):
        """run_masked == forward_masked byte for byte, across dead
        sets including hosts of input cells, conv units, and dense
        units."""
        model, graph, topo = make(kind)
        placement = grid_correspondence_assignment(graph, topo)
        ex = DistributedExecutor(model, graph, placement, Network(topo))
        plan = compile_plan(ex)
        x = make_batch(kind, 4)
        node_ids = sorted(topo.nodes)
        dead_sets = [
            [],
            [node_ids[0]],
            [node_ids[-1]],
            node_ids[: max(1, len(node_ids) // 5)],
            list(RNG.choice(node_ids, size=3, replace=False).astype(int)),
        ]
        for dead in dead_sets:
            got = plan.run_masked(x, dead)
            want = ex.forward_masked(x, dead)
            assert got.tobytes() == want.tobytes(), f"dead={dead}"

    @pytest.mark.parametrize("kind", sorted(MODELS))
    def test_oracle_digest_stable_and_compiled_matches(self, kind):
        """The PR-oracle digest pin: run the event-driven reference
        twice (must not drift), then require the compiled digest to
        equal it — logits and the canonical counter repr both."""
        x = make_batch(kind, 8)
        oracle_digests = []
        for __ in range(2):
            model, graph, topo = make(kind)
            placement = grid_correspondence_assignment(graph, topo)
            net = Network(topo)
            ex = DistributedExecutor(model, graph, placement, net)
            out = ex.forward(x, plan=None)
            blob = digest(out) + repr(sorted(stats_snapshot(net).items()))
            oracle_digests.append(
                hashlib.sha256(blob.encode()).hexdigest()
            )
        assert oracle_digests[0] == oracle_digests[1]

        model, graph, topo = make(kind)
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo)
        ex = DistributedExecutor(model, graph, placement, net)
        out = ex.forward(x)
        assert ex._compiled_plan is not None
        blob = digest(out) + repr(sorted(stats_snapshot(net).items()))
        compiled_digest = hashlib.sha256(blob.encode()).hexdigest()
        assert compiled_digest == oracle_digests[0]


class TestFallbackTriggers:
    """A fault adapter, lossy link model, installed LinkFaultModel, or
    down node must route :meth:`forward` back to the event-driven path
    — observable in the trace as ``exec.forward`` spans instead of
    ``exec.plan`` — and produce results identical to a never-compiled
    run."""

    def _setup(self, tel=None, **net_kwargs):
        model, graph, topo = make("conv_pool")
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo, telemetry=tel, **net_kwargs)
        ex = DistributedExecutor(model, graph, placement, net,
                                 telemetry=tel)
        return model, graph, topo, placement, net, ex

    def _span_names(self, tel):
        return [e.name for e in tel.tracer.events]

    def test_lossy_network_never_compiles(self):
        __, __, __, __, net, ex = self._setup(
            loss_probability=0.3, rng=np.random.default_rng(0)
        )
        with pytest.raises(PlanNotCompilable) as err:
            compile_plan(ex)
        assert err.value.reason == "lossy-links"
        x = make_batch("conv_pool", 2)
        out = ex.forward(x)  # auto must fall back, not raise
        assert ex._compiled_plan is None
        ref_model, ref_graph, ref_topo = make("conv_pool")
        ref_net = Network(ref_topo, loss_probability=0.3,
                          rng=np.random.default_rng(0))
        ref_ex = DistributedExecutor(
            ref_model, ref_graph,
            grid_correspondence_assignment(ref_graph, ref_topo), ref_net
        )
        ref = ref_ex.forward(x, plan=None)
        assert out.tobytes() == ref.tobytes()
        assert stats_snapshot(net) == stats_snapshot(ref_net)

    def test_link_faults_attached_mid_session(self):
        from repro.obs.runtime import session

        x = make_batch("conv_pool", 2)
        with session() as tel:
            __, __, __, __, net, ex = self._setup(tel=tel)
            ex.forward(x)
            assert "exec.plan" in self._span_names(tel)
            net.link_faults = LinkFaultModel(loss_rate=0.5, seed=3)
            before = len(tel.tracer.events)
            ex.forward(x)
            tail = [e.name for e in tel.tracer.events[before:]]
            assert "exec.forward" in tail
            assert "exec.plan" not in tail
            assert "exec.plan-fallback" in tail  # a working plan existed
            # Detach: the existing plan serves again.
            net.link_faults = None
            before = len(tel.tracer.events)
            ex.forward(x)
            tail = [e.name for e in tel.tracer.events[before:]]
            assert "exec.plan" in tail

    def test_brownout_falls_back_and_recovers(self):
        from repro.obs.runtime import session

        x = make_batch("conv_pool", 2)
        with session() as tel:
            __, __, topo, placement, net, ex = self._setup(tel=tel)
            out_plan = ex.forward(x)
            victim = sorted(topo.nodes)[5]
            topo.node(victim).alive = False  # brownout
            before = len(tel.tracer.events)
            out_down = ex.forward(x)
            tail = [e.name for e in tel.tracer.events[before:]]
            assert "exec.forward" in tail and "exec.plan" not in tail
            topo.node(victim).alive = True
            before = len(tel.tracer.events)
            out_up = ex.forward(x)
            tail = [e.name for e in tel.tracer.events[before:]]
            assert "exec.plan" in tail
        # The arithmetic is the same on all three paths (traffic is
        # what degrades, not the logits of forward()).
        assert out_plan.tobytes() == out_down.tobytes() == out_up.tobytes()

    def test_down_node_stats_match_never_compiled_run(self):
        """Counters accumulated across a compiled -> down -> recovered
        session equal those of an oracle-only run of the same
        sequence."""
        x = make_batch("conv_pool", 2)

        def run(plan):
            model, graph, topo = make("conv_pool")
            placement = grid_correspondence_assignment(graph, topo)
            net = Network(topo)
            ex = DistributedExecutor(model, graph, placement, net)
            victim = sorted(topo.nodes)[5]
            ex.forward(x, plan=plan)
            topo.node(victim).alive = False
            ex.forward(x, plan=plan)
            topo.node(victim).alive = True
            ex.forward(x, plan=plan)
            return stats_snapshot(net)

        assert run("auto") == run(None)

    def test_fault_adapter_blocks_plan(self):
        from repro.obs.runtime import session

        x = make_batch("conv_pool", 2)
        with session() as tel:
            model, graph, topo = make("conv_pool")
            placement = grid_correspondence_assignment(graph, topo)
            net = Network(topo, telemetry=tel)
            ex = DistributedExecutor(
                model, graph, placement, net, telemetry=tel,
                fault_adapter=object(),
            )
            ex.forward(x)
            names = self._span_names(tel)
            assert "exec.forward" in names
            assert "exec.plan" not in names
            with pytest.raises(PlanNotCompilable) as err:
                ex.compiled_plan()
            assert err.value.reason == "fault-adapter"

    def test_per_element_forces_event_path(self):
        model, graph, topo = make("conv_pool")
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo)
        ex = DistributedExecutor(model, graph, placement, net)
        ex.forward(make_batch("conv_pool", 2), per_element=True)
        assert ex._compiled_plan is None

    def test_fallback_counter_carries_reason(self):
        from repro.obs.runtime import session

        x = make_batch("conv_pool", 1)
        with session() as tel:
            __, __, topo, __, net, ex = self._setup(tel=tel)
            ex.forward(x)
            topo.node(0).alive = False
            ex.forward(x)
            rows = {
                (name, tuple(map(tuple, labels))): value
                for name, labels, kind, value in tel.metrics.snapshot()
                if name.startswith("exec.plan")
            }
            assert rows[("exec.plan_runs", ())] == 1.0
            assert rows[
                ("exec.plan_fallbacks", (("reason", "node-down"),))
            ] == 1.0


@pytest.mark.perf
class TestCompiledProperties:
    """Seeded fuzz over random topologies and placements: compilation
    either round-trips the oracle exactly or refuses with the typed
    error — never silently wrong — and the hop program conserves the
    transfer multiset the network accounts."""

    def _random_case(self, rng):
        model = Sequential([
            Conv2D(int(rng.integers(1, 3)), 3), ReLU(), MaxPool2D(2),
            Flatten(), Dense(int(rng.integers(4, 10))), ReLU(), Dense(2),
        ])
        model.build(
            (1, 8, 8), np.random.default_rng(int(rng.integers(1e6)))
        )
        graph = UnitGraph(model)
        # Random radio range: 1.5 reaches the 8-neighbourhood, 1.0
        # only the 4-neighbourhood, 0.8 disconnects the mesh entirely
        # (every cross-node transfer unroutable).
        comm_range = float(rng.choice([0.8, 1.0, 1.5]))
        topo = GridTopology(int(rng.integers(3, 6)),
                            int(rng.integers(3, 6)),
                            comm_range=comm_range)
        if rng.random() < 0.25:  # occasional pre-existing brownout
            victims = rng.choice(sorted(topo.nodes),
                                 size=int(rng.integers(1, 3)),
                                 replace=False)
            for victim in victims:
                topo.node(int(victim)).alive = False
        strategies = [
            grid_correspondence_assignment,
            lambda g, t: centralized_assignment(g, t),
            round_robin_assignment,
            lambda g, t: random_assignment(
                g, t, np.random.default_rng(int(rng.integers(1e6)))
            ),
        ]
        strategy = strategies[int(rng.integers(len(strategies)))]
        return model, graph, topo, strategy(graph, topo)

    @pytest.mark.parametrize("trial", range(12))
    def test_compile_round_trips_or_raises_typed(self, trial):
        rng = np.random.default_rng(7000 + trial)
        model, graph, topo, placement = self._random_case(rng)
        net = Network(topo)
        ex = DistributedExecutor(model, graph, placement, net)
        batch = int(rng.integers(1, 9))
        x = rng.normal(size=(batch, 1, 8, 8))
        try:
            plan = compile_plan(ex)
        except PlanNotCompilable as err:
            assert err.reason in {
                "lossy-links", "link-faults", "node-down",
                "fault-adapter", "unroutable",
            }
            # auto still serves the forward via the oracle.
            out = ex.forward(x)
            assert ex._compiled_plan is None
            auto_stats = stats_snapshot(net)
            net.reset_stats()  # node counters are shared via topo
            net_ref = Network(topo)
            ref = DistributedExecutor(
                model, graph, placement, net_ref
            ).forward(x, plan=None)
            assert out.tobytes() == ref.tobytes()
            assert auto_stats == stats_snapshot(net_ref)
            return
        out = plan.run(x)
        plan_stats = stats_snapshot(net)
        net.reset_stats()  # node counters are shared via topo
        net_ref = Network(topo)
        ref = DistributedExecutor(
            model, graph, placement, net_ref
        ).forward(x, plan=None)
        assert out.tobytes() == ref.tobytes()
        assert plan_stats == stats_snapshot(net_ref)

    @pytest.mark.parametrize("trial", range(8))
    def test_hop_program_conserves_transfer_multiset(self, trial):
        """The compiled tallies are exactly the per-hop multiset of the
        aggregated transfer list: per-link, per-node, and in total —
        and they reconcile with the Network counters they produce."""
        rng = np.random.default_rng(8000 + trial)
        model, graph, topo, placement = self._random_case(rng)
        net = Network(topo)
        ex = DistributedExecutor(model, graph, placement, net)
        try:
            plan = compile_plan(ex)
        except PlanNotCompilable:
            return
        hops = plan.hops

        # Independent reconstruction from the transfer list + routes.
        from repro.wsn.routing import shortest_path_route
        link_packets = Counter()
        link_values = Counter()
        sent = 0
        for (layer, src, dst, n_values), mult in ex._aggregated_transfers():
            route = shortest_path_route(topo, src, dst)
            assert route is not None
            sent += mult
            for a, b in zip(route, route[1:]):
                link_packets[(a, b)] += mult
                link_values[(a, b)] += mult * n_values
        got_packets = dict(zip(
            zip(hops.link_src.tolist(), hops.link_dst.tolist()),
            hops.link_packets.tolist(),
        ))
        got_values = dict(zip(
            zip(hops.link_src.tolist(), hops.link_dst.tolist()),
            hops.link_values.tolist(),
        ))
        assert got_packets == dict(link_packets)
        assert got_values == dict(link_values)
        assert hops.sent == sent
        assert hops.hops == sum(link_packets.values())
        # Node tallies are the per-link tallies folded by endpoint.
        tx = Counter()
        rx = Counter()
        for (a, b), v in link_values.items():
            tx[a] += v
            rx[b] += v
        assert dict(zip(hops.tx_nodes.tolist(),
                        hops.tx_values.tolist())) == dict(tx)
        assert dict(zip(hops.rx_nodes.tolist(),
                        hops.rx_values.tolist())) == dict(rx)
        assert hops.total_values() == sum(link_values.values())

        # And the accounting the program drives reproduces itself in
        # the network counters, scaled by the batch.
        batch = int(rng.integers(1, 6))
        net.reset_stats()
        net.account_compiled(hops, copies=batch)
        assert net.stats.sent == sent * batch
        assert net.stats.total_hops == sum(link_packets.values()) * batch
        assert dict(net.stats.per_node_rx_values) == {
            n: v * batch for n, v in rx.items()
        }
        assert dict(net.stats.per_node_tx_values) == {
            n: v * batch for n, v in tx.items()
        }
