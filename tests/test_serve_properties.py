"""Property test: serving is interleaving-invariant.

For any seeded interleaving of N concurrent requests — random tenant
choice, random clock advances between submits, random batching knobs —
the multiset of returned logits equals the serial baseline (a direct
fixed-shape forward of the same inputs), and the accounting invariant
``serve.requests == sum of serve.batch_size histogram mass`` holds.
Everything runs on the fake clock: hundreds of schedules, zero real
sleeps.
"""

import numpy as np
import pytest

from repro.serve import BatchPolicy
from repro.serve.testing import ServeHarness

TENANTS = ("fall", "hvac")


def random_policy(rng) -> BatchPolicy:
    return BatchPolicy(
        max_batch=int(rng.integers(1, 6)),
        # Include the synchronous fast path (max_delay=0) in the space.
        max_delay=float(rng.choice([0.0, 0.001, 0.005, 0.02])),
        max_pending=256,
    )


def run_interleaving(seed: int, n_requests: int = 24):
    """One seeded schedule: returns (harness, submitted, futures)."""
    rng = np.random.default_rng(seed)
    harness = ServeHarness(tenants=TENANTS, policy=random_policy(rng))
    submitted = {name: [] for name in TENANTS}
    futures = []
    for __ in range(n_requests):
        name = TENANTS[int(rng.integers(len(TENANTS)))]
        x = harness.make_input(name)
        submitted[name].append(x)
        futures.append((name, harness.submit(name, x)))
        # Sometimes let time pass (maybe past the window), sometimes
        # submit back-to-back within the same instant.
        if rng.random() < 0.5:
            harness.advance(float(rng.choice([0.0005, 0.002, 0.01, 0.05])))
    harness.drain()  # serve whatever is still pending
    return harness, submitted, futures


@pytest.mark.parametrize("seed", range(12))
def test_any_interleaving_matches_the_serial_baseline(seed):
    harness, submitted, futures = run_interleaving(seed)
    # Every accepted request resolved with a result.
    assert all(future.done() for __, future in futures)

    # Multiset of served logits == multiset of the serial baseline.
    served = {name: [] for name in TENANTS}
    for name, future in futures:
        served[name].append(future.result().logits.tobytes())
    for name in TENANTS:
        if not submitted[name]:
            continue
        baseline = harness.direct(name, submitted[name])
        expected = [baseline[i].tobytes()
                    for i in range(baseline.shape[0])]
        assert sorted(served[name]) == sorted(expected), (
            f"seed {seed}: served logits multiset diverged for {name}"
        )

    # Accounting invariant: every request observed in exactly one batch.
    assert harness.metric_total("serve.requests") == float(len(futures))
    assert harness.batch_size_mass() == float(len(futures))


@pytest.mark.parametrize("seed", range(6))
def test_interleavings_are_reproducible(seed):
    """Same seed, same schedule: the exact result bytes and metric
    totals come out twice."""
    first = run_interleaving(seed, n_requests=10)
    second = run_interleaving(seed, n_requests=10)
    for (name_a, fut_a), (name_b, fut_b) in zip(first[2], second[2]):
        assert name_a == name_b
        assert (fut_a.result().logits.tobytes()
                == fut_b.result().logits.tobytes())
        assert fut_a.result().batch_size == fut_b.result().batch_size
        assert fut_a.result().latency_s == fut_b.result().latency_s
    assert (first[0].metric_total("serve.batches")
            == second[0].metric_total("serve.batches"))


def test_fault_interleaving_keeps_the_multiset_property():
    """The property survives a mid-stream fault: requests served by
    the event-driven oracle return the same bytes as the plan path
    (same math, different traffic accounting)."""
    harness = ServeHarness(
        tenants=TENANTS, policy=BatchPolicy(max_batch=3, max_delay=0.01)
    )
    rng = np.random.default_rng(42)
    submitted = {name: [] for name in TENANTS}
    futures = []
    fall = harness.pool.require("fall")
    for i in range(16):
        if i == 6:
            list(fall.topology)[0].alive = False  # fault appears
        if i == 12:
            list(fall.topology)[0].alive = True   # and heals
        name = TENANTS[int(rng.integers(len(TENANTS)))]
        x = harness.make_input(name)
        submitted[name].append(x)
        futures.append((name, harness.submit(name, x)))
        if rng.random() < 0.4:
            harness.advance(0.01)
    harness.drain()
    served_by = {future.result().served_by for __, future in futures}
    assert "plan" in served_by  # both paths were actually exercised
    assert any(s.startswith("fallback:") for s in served_by)
    for name in TENANTS:
        baseline = harness.direct(name, submitted[name])
        expected = sorted(
            baseline[i].tobytes() for i in range(baseline.shape[0])
        )
        got = sorted(
            future.result().logits.tobytes()
            for n, future in futures if n == name
        )
        assert got == expected
    assert harness.metric_total("serve.requests") == 16.0
    assert harness.batch_size_mass() == 16.0
