"""Tests for the BatchNorm layer."""

import numpy as np
import pytest

from repro.nn import BatchNorm, Conv2D, Dense, Flatten, ReLU, SGD, Sequential, Trainer

RNG = np.random.default_rng(141)
EPS = 1e-5
TOL = 2e-4


def numeric_grad(f, x):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + EPS
        hi = f()
        x[idx] = orig - EPS
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * EPS)
        it.iternext()
    return grad


class TestForward:
    def test_training_output_normalized_2d(self):
        layer = BatchNorm()
        layer.build((6,), RNG)
        x = RNG.normal(3.0, 2.0, size=(64, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_training_output_normalized_4d(self):
        layer = BatchNorm()
        layer.build((3, 5, 5), RNG)
        x = RNG.normal(-2.0, 4.0, size=(16, 3, 5, 5))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_gamma_beta_applied(self):
        layer = BatchNorm()
        layer.build((2,), RNG)
        layer.params()["gamma"][...] = [2.0, 3.0]
        layer.params()["beta"][...] = [1.0, -1.0]
        x = RNG.normal(size=(128, 2))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), [1.0, -1.0], atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), [2.0, 3.0], atol=0.05)

    def test_inference_uses_running_stats(self):
        layer = BatchNorm(momentum=0.0)  # running = last batch
        layer.build((3,), RNG)
        x = RNG.normal(5.0, 2.0, size=(256, 3))
        layer.forward(x, training=True)
        same = layer.forward(x, training=False)
        np.testing.assert_allclose(same.mean(axis=0), 0.0, atol=0.05)
        shifted = layer.forward(x + 10.0, training=False)
        assert shifted.mean() > 2.0  # not re-normalized away

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BatchNorm(momentum=1.0)
        layer = BatchNorm()
        layer.build((2,), RNG)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 2, 2)), training=True)


class TestBackward:
    @pytest.mark.parametrize("shape", [(5, 4), (3, 2, 4, 4)])
    def test_input_gradient_numeric(self, shape):
        layer = BatchNorm()
        layer.build(shape[1:2] if len(shape) == 2 else shape[1:2], RNG)
        # build() only needs the channel count; rebuild properly:
        layer = BatchNorm()
        layer.build((shape[1],), RNG)
        x = RNG.normal(size=shape)
        w = RNG.normal(size=shape)

        def loss():
            return float((layer.forward(x, training=True) * w).sum())

        loss()
        analytic = layer.backward(w)
        numeric = numeric_grad(loss, x)
        np.testing.assert_allclose(analytic, numeric, rtol=TOL, atol=TOL)

    def test_param_gradients_numeric(self):
        layer = BatchNorm()
        layer.build((3,), RNG)
        x = RNG.normal(size=(6, 3))
        w = RNG.normal(size=(6, 3))

        def loss():
            return float((layer.forward(x, training=True) * w).sum())

        loss()
        layer.zero_grads()
        layer.backward(w)
        for name in ("gamma", "beta"):
            analytic = layer.grads()[name].copy()
            numeric = numeric_grad(loss, layer.params()[name])
            np.testing.assert_allclose(analytic, numeric, rtol=TOL, atol=TOL,
                                       err_msg=name)

    def test_backward_before_forward(self):
        layer = BatchNorm()
        layer.build((2,), RNG)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 2)))


class TestIntegration:
    def test_trains_inside_cnn(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0.0, 0.3, size=(120, 1, 8, 8))
        y = rng.integers(0, 2, size=120)
        for i in range(120):
            r = 1 if y[i] else 5
            x[i, 0, r : r + 2, 3:5] += 2.0
        model = Sequential([
            Conv2D(2, 3), BatchNorm(), ReLU(), Flatten(), Dense(2),
        ])
        trainer = Trainer(model, SGD(lr=0.1, momentum=0.9))
        history = trainer.fit(x, y, epochs=15, batch_size=16,
                              rng=np.random.default_rng(6))
        assert history.train_accuracy[-1] > 0.9

    def test_microdeep_treats_batchnorm_as_free(self):
        from repro.core import (
            CommunicationCostModel,
            UnitGraph,
            grid_correspondence_assignment,
        )
        from repro.wsn import GridTopology

        model = Sequential([
            Conv2D(2, 3), BatchNorm(), ReLU(), Flatten(), Dense(2),
        ])
        model.build((1, 8, 8), RNG)
        graph = UnitGraph(model)
        topo = GridTopology(3, 3)
        placement = grid_correspondence_assignment(graph, topo)
        report = CommunicationCostModel(graph, topo).inference_cost(placement)
        assert report.per_layer_total.get(1, 0) == 0  # the BatchNorm
