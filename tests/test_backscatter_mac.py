"""Tests for the backscatter-aware MAC (paper ref. [64]) and baseline."""

import numpy as np
import pytest

from repro.backscatter import (
    BackscatterDevice,
    ContentionBackscatterMac,
    ScheduledBackscatterMac,
    WlanTrafficModel,
    run_coexistence,
)
from repro.sim import Simulator


def run(mac_class, n_devices=5, period=1.0, wlan_rate=50.0, duration=200.0,
        seed=0, **kw):
    return run_coexistence(
        mac_class, n_devices, period, wlan_rate, duration, seed, **kw
    )


class TestValidation:
    def test_device_period(self):
        with pytest.raises(ValueError):
            BackscatterDevice(0, period_s=0.0)

    def test_wlan_model(self):
        with pytest.raises(ValueError):
            WlanTrafficModel(rate_pps=-1.0)
        with pytest.raises(ValueError):
            WlanTrafficModel(rate_pps=1.0, airtime_s=0.0)

    def test_mac_needs_devices(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ScheduledBackscatterMac(
                sim, [], WlanTrafficModel(1.0), np.random.default_rng(0)
            )

    def test_run_coexistence_validation(self):
        with pytest.raises(ValueError):
            run(ScheduledBackscatterMac, n_devices=0)
        with pytest.raises(ValueError):
            run(ScheduledBackscatterMac, duration=-1.0)


class TestScheduledMac:
    def test_high_delivery_with_ample_traffic(self):
        res = run(ScheduledBackscatterMac, wlan_rate=100.0, channel_error=0.02)
        assert res.delivery_ratio > 0.95
        assert res.backscatter_collisions == 0

    def test_never_collides(self):
        res = run(ScheduledBackscatterMac, n_devices=30, wlan_rate=200.0)
        assert res.backscatter_collisions == 0

    def test_dummy_packets_cover_sparse_wlan(self):
        """With almost no WLAN traffic, dummy carriers keep delivery up."""
        res = run(ScheduledBackscatterMac, wlan_rate=0.5, channel_error=0.02)
        assert res.dummy_packets > 0
        assert res.delivery_ratio > 0.9

    def test_no_dummies_needed_when_traffic_dense(self):
        res = run(ScheduledBackscatterMac, wlan_rate=500.0)
        assert res.dummy_overhead_fraction < 0.05

    def test_latency_bounded_by_wait_fraction(self):
        res = run(
            ScheduledBackscatterMac, wlan_rate=0.1, channel_error=0.0,
            max_wait_fraction=0.25, period=2.0,
        )
        # Dummies fire at 25% of the 2 s period; allow channel retries.
        assert res.mean_latency_s <= 0.6

    def test_counters_consistent(self):
        res = run(ScheduledBackscatterMac, seed=3)
        assert res.readings_delivered <= res.readings_generated
        assert res.deadline_misses <= res.readings_generated


class TestContentionMac:
    def test_single_device_works_fine(self):
        res = run(ContentionBackscatterMac, n_devices=1, wlan_rate=100.0,
                  channel_error=0.02)
        assert res.delivery_ratio > 0.95

    def test_many_devices_collide(self):
        res = run(ContentionBackscatterMac, n_devices=20, wlan_rate=100.0)
        assert res.backscatter_collisions > 0

    def test_starves_without_wlan_traffic(self):
        res = run(ContentionBackscatterMac, wlan_rate=0.5)
        assert res.dummy_packets == 0
        assert res.delivery_ratio < 0.7

    def test_p_persistence_reduces_collisions(self):
        naive = run(ContentionBackscatterMac, n_devices=10, wlan_rate=100.0,
                    attempt_probability=1.0)
        gated = run(ContentionBackscatterMac, n_devices=10, wlan_rate=100.0,
                    attempt_probability=0.3)
        assert gated.delivery_ratio > naive.delivery_ratio


class TestPaperShape:
    """E6's headline: the registered/scheduled MAC beats contention."""

    @pytest.mark.parametrize("wlan_rate", [1.0, 20.0, 100.0])
    def test_scheduled_beats_contention(self, wlan_rate):
        sched = run(ScheduledBackscatterMac, n_devices=10, wlan_rate=wlan_rate,
                    seed=1)
        cont = run(ContentionBackscatterMac, n_devices=10, wlan_rate=wlan_rate,
                   seed=1)
        assert sched.delivery_ratio > cont.delivery_ratio

    def test_gap_widens_with_more_devices(self):
        gaps = []
        for n in [2, 10, 25]:
            sched = run(ScheduledBackscatterMac, n_devices=n, wlan_rate=60.0,
                        seed=2)
            cont = run(ContentionBackscatterMac, n_devices=n, wlan_rate=60.0,
                       seed=2)
            gaps.append(sched.delivery_ratio - cont.delivery_ratio)
        assert gaps[-1] > gaps[0]

    def test_deterministic_given_seed(self):
        r1 = run(ScheduledBackscatterMac, seed=9)
        r2 = run(ScheduledBackscatterMac, seed=9)
        assert r1.delivery_ratio == r2.delivery_ratio
        assert r1.dummy_packets == r2.dummy_packets
