"""Unit + property tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy,
    confusion_matrix,
    f_measure,
    macro_f_measure,
    mean_absolute_error,
    precision_recall,
    within_k_accuracy,
)

labels_arrays = st.lists(st.integers(0, 4), min_size=1, max_size=60)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1, 2], [1])

    @given(labels_arrays)
    def test_self_accuracy_is_one(self, ys):
        assert accuracy(ys, ys) == 1.0

    @given(labels_arrays)
    @settings(max_examples=30)
    def test_bounded(self, ys):
        preds = [(y + 1) % 5 for y in ys]
        assert 0.0 <= accuracy(ys, preds) <= 1.0


class TestWithinK:
    def test_exact_equals_accuracy(self):
        t, p = [1, 2, 3], [1, 3, 5]
        assert within_k_accuracy(t, p, 0) == accuracy(t, p)

    def test_within_two(self):
        assert within_k_accuracy([5, 5, 5], [3, 7, 9], 2) == pytest.approx(2 / 3)

    @given(labels_arrays)
    def test_monotone_in_k(self, ys):
        preds = [(y + 2) % 5 for y in ys]
        vals = [within_k_accuracy(ys, preds, k) for k in range(5)]
        assert all(a <= b for a, b in zip(vals, vals[1:]))


class TestConfusion:
    def test_diagonal_for_perfect(self):
        mat = confusion_matrix([0, 1, 2, 1], [0, 1, 2, 1])
        assert mat.trace() == 4
        assert mat.sum() == 4

    def test_known_entries(self):
        mat = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert mat[0, 1] == 1
        assert mat[0, 0] == 1
        assert mat[1, 1] == 1

    @given(labels_arrays)
    def test_row_sums_are_class_counts(self, ys):
        preds = list(reversed(ys))
        mat = confusion_matrix(ys, preds, num_classes=5)
        expected = np.bincount(ys, minlength=5)
        np.testing.assert_array_equal(mat.sum(axis=1), expected)


class TestFMeasure:
    def test_perfect_is_one(self):
        assert f_measure([1, 1, 0], [1, 1, 0], positive_class=1) == 1.0

    def test_no_predictions_is_zero(self):
        assert f_measure([1, 1], [0, 0], positive_class=1) == 0.0

    def test_known_value(self):
        # tp=1, fp=1, fn=1 -> precision=recall=0.5 -> F=0.5
        assert f_measure([1, 1, 0], [1, 0, 1], positive_class=1) == pytest.approx(0.5)

    def test_precision_recall_values(self):
        p, r = precision_recall([1, 1, 0, 0], [1, 0, 1, 0], positive_class=1)
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)

    @given(labels_arrays)
    def test_macro_f_bounded(self, ys):
        preds = [(y * 2) % 5 for y in ys]
        assert 0.0 <= macro_f_measure(ys, preds, num_classes=5) <= 1.0

    @given(labels_arrays)
    def test_macro_f_perfect(self, ys):
        score = macro_f_measure(ys, ys, num_classes=5)
        # classes absent from ys contribute 0; restrict to present ones
        present = len(set(ys))
        assert score == pytest.approx(present / 5)


class TestMAE:
    def test_zero_for_equal(self):
        assert mean_absolute_error([1, 2], [1, 2]) == 0.0

    def test_known(self):
        assert mean_absolute_error([0, 0], [1, 3]) == 2.0
