"""Full-stack integration: the paper's story end to end.

One test per pillar, plus a capstone that chains them: zero-energy
devices harvest and backscatter readings through the scheduled MAC;
the WSN carries a MicroDeep CNN whose placement the planner's topology
knows; classification survives node failures.  These are deliberately
cross-package: they break when any interface drifts.
"""

import numpy as np
import pytest

from repro.backscatter import (
    BackscatterTag,
    ScheduledBackscatterMac,
    dedicated_cw_carrier,
    run_coexistence,
    zigbee_2_4ghz,
)
from repro.core import (
    CollectionPlanner,
    CommunicationCostModel,
    DistributedExecutor,
    MicroDeepTrainer,
    UnitGraph,
    grid_correspondence_assignment,
)
from repro.energy import (
    Capacitor,
    IntermittentPowerManager,
    RADIO_PROFILES,
    TaskSpec,
    rf_field_trace,
)
from repro.nn import Adam, Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.wsn import GridTopology, Network


@pytest.fixture(scope="module")
def deployed_microdeep():
    """A trained, placed CNN over a 4x4 harvested sensor network."""
    rng = np.random.default_rng(0)
    x = rng.normal(0.0, 0.3, size=(200, 1, 8, 8))
    y = rng.integers(0, 2, size=200)
    for i in range(200):
        r = 1 if y[i] == 0 else 5
        c = int(rng.integers(2, 6))
        x[i, 0, r : r + 2, c : c + 2] += 2.0
    model = Sequential([
        Conv2D(2, 3, padding="same"), ReLU(), MaxPool2D(2), Flatten(),
        Dense(8), ReLU(), Dense(2),
    ])
    model.build((1, 8, 8), np.random.default_rng(1))
    graph = UnitGraph(model)
    topology = GridTopology(4, 4)
    placement = grid_correspondence_assignment(graph, topology)
    trainer = MicroDeepTrainer(graph, placement, Adam(lr=3e-3),
                               update_mode="local")
    trainer.fit(x[:160], y[:160], epochs=15, batch_size=16,
                rng=np.random.default_rng(2))
    return model, graph, topology, placement, trainer, (x[160:], y[160:])


class TestFullStack:
    def test_microdeep_learns_and_counts_traffic(self, deployed_microdeep):
        model, graph, topology, placement, trainer, (x_te, y_te) = (
            deployed_microdeep
        )
        __, acc = trainer.evaluate(x_te, y_te)
        assert acc > 0.85
        network = Network(topology)
        executor = DistributedExecutor(model, graph, placement, network)
        executor.forward(x_te[:1], count_traffic=True)
        static = CommunicationCostModel(graph, topology).inference_cost(placement)
        assert network.stats.max_rx_values() == static.max_rx()

    def test_harvested_energy_supports_the_inference_traffic(
        self, deployed_microdeep
    ):
        """The busiest node's per-inference radio energy fits in an
        ambient-RF harvesting budget at a realistic duty cycle —
        the zero-energy feasibility argument of §I."""
        __, graph, topology, placement, __t, __d = deployed_microdeep
        static = CommunicationCostModel(graph, topology).inference_cost(placement)
        peak_values = static.max_rx()
        rx = RADIO_PROFILES["backscatter"]
        energy_per_inference = peak_values * rx.rx_power_w * (32 / rx.bitrate_bps)
        cap = Capacitor(capacity_j=1e-3, turn_on_j=1e-5, initial_j=1e-5)
        mgr = IntermittentPowerManager(
            cap, [TaskSpec("inference", energy_per_inference, 0.5)]
        )
        trace = rf_field_trace(300.0, 1.0, 30e-6, np.random.default_rng(3))
        report = mgr.run(trace)
        # One inference every ~2 s is sustainable on 30 uW harvest.
        assert report.completions("inference") > 100

    def test_backscatter_mac_carries_the_node_reports(self):
        """All 16 nodes reporting once a second coexist with WLAN
        traffic through the scheduled MAC with low loss."""
        result = run_coexistence(
            ScheduledBackscatterMac, n_devices=16, device_period_s=1.0,
            wlan_rate_pps=60.0, duration_s=60.0, seed=4,
        )
        assert result.delivery_ratio > 0.93
        assert result.backscatter_collisions == 0

    def test_backscatter_link_reaches_across_the_grid(self):
        """The ZigBee testbed link closes over the sensor grid's
        diagonal (4x4 at 1 m spacing)."""
        link = zigbee_2_4ghz()
        diagonal = float(np.hypot(3.0, 3.0))
        # CW transmitter mounted within 1 m of the tag field.
        assert link.decodable(carrier_to_tag_m=1.0, tag_to_rx_m=diagonal)

    def test_planner_schedules_the_same_topology(self, deployed_microdeep):
        """The §III.B planner generates a feasible collection schedule
        for the very grid MicroDeep runs on."""
        __, __g, topology, __p, __t, __d = deployed_microdeep
        planner = CollectionPlanner(topology, slot_duration_s=0.005)
        plan = planner.plan(sink=5, cycle_s=1.0)
        assert plan.feasible
        assert plan.unreachable == []
        scheduled = {s.node for s in plan.schedule}
        assert scheduled == set(topology.nodes) - {5}

    def test_failures_degrade_gracefully(self, deployed_microdeep):
        model, graph, topology, placement, trainer, (x_te, y_te) = (
            deployed_microdeep
        )
        executor = DistributedExecutor(model, graph, placement,
                                       Network(topology))
        healthy = executor.accuracy_under_faults(x_te, y_te, [])
        rng = np.random.default_rng(5)
        degraded = np.mean([
            executor.accuracy_under_faults(
                x_te, y_te, rng.choice(16, size=2, replace=False)
            )
            for __ in range(3)
        ])
        assert healthy > 0.85
        assert degraded > 0.5
        assert degraded <= healthy + 0.05
