"""Tests for NetScatter concurrency and inter-technology backscatter."""

import numpy as np
import pytest

from repro.backscatter import (
    InterTechLink,
    NetScatterConfig,
    NetScatterReceiver,
    PUBLISHED_SYSTEMS,
    concurrent_throughput_bps,
    published_link,
    run_concurrent_trial,
    tdma_throughput_bps,
)
from repro.backscatter.netscatter import base_chirp, shifted_chirp

RNG = np.random.default_rng(61)


class TestChirps:
    def test_unit_amplitude(self):
        c = base_chirp(128)
        np.testing.assert_allclose(np.abs(c), 1.0, atol=1e-12)

    def test_shift_orthogonality_after_dechirp(self):
        """Distinct cyclic shifts land in distinct FFT bins."""
        n = 128
        base = base_chirp(n)
        for shift in [1, 17, 64]:
            spectrum = np.abs(np.fft.fft(shifted_chirp(n, shift) * np.conj(base)))
            peak_bin = int(spectrum.argmax())
            zero_bin = int(
                np.abs(np.fft.fft(base * np.conj(base))).argmax()
            )
            assert peak_bin != zero_bin

    def test_validation(self):
        with pytest.raises(ValueError):
            base_chirp(1)
        with pytest.raises(ValueError):
            shifted_chirp(64, 64)


class TestNetScatterConfig:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            NetScatterConfig(spreading=100)
        with pytest.raises(ValueError):
            NetScatterConfig(symbol_rate_hz=0.0)


class TestNetScatterDecoding:
    def test_single_device_roundtrip(self):
        cfg = NetScatterConfig(spreading=128)
        rx = NetScatterReceiver(cfg)
        decoded = rx.decode_slot({32: 1}, {32: 1.0}, noise_std=0.5, rng=RNG)
        assert decoded[32] == 1
        decoded = rx.decode_slot({32: 0}, {32: 1.0}, noise_std=0.5, rng=RNG)
        assert decoded[32] == 0

    def test_many_concurrent_devices(self):
        """Tens of devices decode simultaneously — NetScatter's point."""
        cfg = NetScatterConfig(spreading=256)
        ber = run_concurrent_trial(cfg, n_devices=50, n_slots=30,
                                   snr_db=3.0, rng=np.random.default_rng(2))
        assert ber < 0.05

    def test_ber_degrades_at_low_snr(self):
        cfg = NetScatterConfig(spreading=128)
        good = run_concurrent_trial(cfg, 20, 30, snr_db=6.0,
                                    rng=np.random.default_rng(3))
        bad = run_concurrent_trial(cfg, 20, 30, snr_db=-15.0,
                                   rng=np.random.default_rng(3))
        assert bad > good

    def test_detect_shape_validation(self):
        rx = NetScatterReceiver(NetScatterConfig(spreading=64))
        with pytest.raises(ValueError):
            rx.detect(np.zeros(32, dtype=complex))


class TestThroughputScaling:
    def test_concurrent_scales_linearly(self):
        cfg = NetScatterConfig(spreading=256, symbol_rate_hz=1000.0)
        assert concurrent_throughput_bps(cfg, 100) == 100_000.0
        assert concurrent_throughput_bps(cfg, 200) == 2 * concurrent_throughput_bps(cfg, 100)

    def test_concurrent_beats_tdma_at_scale(self):
        """With many devices, concurrent ON-OFF keying beats taking
        turns even though each chirp carries fewer bits."""
        cfg = NetScatterConfig(spreading=256)
        tdma = tdma_throughput_bps(cfg, 100)
        concurrent = concurrent_throughput_bps(cfg, 100)
        assert concurrent > 5 * tdma

    def test_validation(self):
        cfg = NetScatterConfig(spreading=64)
        with pytest.raises(ValueError):
            concurrent_throughput_bps(cfg, 0)
        with pytest.raises(ValueError):
            concurrent_throughput_bps(cfg, 65)
        with pytest.raises(ValueError):
            tdma_throughput_bps(cfg, 0)
        with pytest.raises(ValueError):
            run_concurrent_trial(cfg, 4, 0, 0.0, RNG)


class TestInterTech:
    @pytest.mark.parametrize("name", sorted(PUBLISHED_SYSTEMS))
    def test_published_systems_feasible(self, name):
        """Every published system's shift/rate arithmetic checks out."""
        link = published_link(name)
        assert link.feasible, name
        assert link.data_rate_bps > 0

    def test_passive_wifi_rate(self):
        """Passive Wi-Fi demonstrated 11 Mbps 802.11b from a tone."""
        link = published_link("passive-wifi")
        assert link.data_rate_bps == pytest.approx(11e6)

    def test_zigbee_rate(self):
        link = published_link("passive-zigbee")
        assert link.data_rate_bps == pytest.approx(250e3)

    def test_shift_budget_enforced(self):
        """A slow switch cannot produce a 38 MHz shift."""
        link = InterTechLink.named("cw", "wifi", max_switch_rate_hz=10e6)
        assert not link.feasible
        assert link.data_rate_bps == 0.0

    def test_tag_power_in_uw_band(self):
        """The shifting tag still lands in the tens-of-uW band the
        paper cites for backscatter."""
        for name in PUBLISHED_SYSTEMS:
            power = published_link(name).tag_power_w()
            assert power < 100e-6, name

    def test_unknown_names(self):
        with pytest.raises(KeyError):
            InterTechLink.named("smoke-signals", "wifi")
        with pytest.raises(KeyError):
            published_link("quantum-scatter")
