"""Integration tests for the MicroDeep and CSI pipelines (fast
configurations of experiments E1-E3)."""

import numpy as np
import pytest

from repro.contexts import (
    CsiLocalizationPipeline,
    DiscomfortPipeline,
    FallDetectionPipeline,
    build_fall_cnn,
    build_lounge_cnn,
)
from repro.contexts.fall import FEASIBLE_PARAMS, OPTIMAL_PARAMS
from repro.datasets import (
    IrGaitConfig,
    LoungeDatasetConfig,
    generate_ir_gait_episodes,
    generate_lounge_dataset,
    windows_from_episodes,
)
from repro.sensing import CsiLocalizationScenario, default_patterns


class TestBuilders:
    def test_fall_cnn_structure(self):
        """The paper's CNN: one conv, one pool, two FC layers."""
        model = build_fall_cnn()
        names = [type(l).__name__ for l in model.layers]
        assert names.count("Conv2D") == 1
        assert names.count("MaxPool2D") == 1
        assert names.count("Dense") == 2
        out = model.forward(np.zeros((2, 10, 8, 8)))
        assert out.shape == (2, 2)

    def test_lounge_cnn_accepts_grid(self):
        model = build_lounge_cnn()
        out = model.forward(np.zeros((2, 1, 17, 25)))
        assert out.shape == (2, 2)

    def test_param_presets_ordered(self):
        assert OPTIMAL_PARAMS["filters"] > FEASIBLE_PARAMS["filters"]
        assert OPTIMAL_PARAMS["hidden"] > FEASIBLE_PARAMS["hidden"]


@pytest.fixture(scope="module")
def fall_data():
    rng = np.random.default_rng(0)
    eps = generate_ir_gait_episodes(IrGaitConfig(n_episodes=24), rng)
    x, y, ei = windows_from_episodes(eps, window=10, stride=6)
    # Stratified episode-level split: hold out episodes of both classes.
    falls = [i for i, ep in enumerate(eps) if ep.label == 1]
    walks = [i for i, ep in enumerate(eps) if ep.label == 0]
    held_out = falls[:3] + walks[:3]
    test = np.isin(ei, held_out)
    return x[~test], y[~test], x[test], y[test]


class TestFallPipeline:
    def test_end_to_end_beats_chance(self, fall_data):
        xtr, ytr, xte, yte = fall_data
        pipe = FallDetectionPipeline(node_grid=(4, 4))
        result = pipe.run(
            xtr, ytr, xte, yte, np.random.default_rng(1),
            params=FEASIBLE_PARAMS, epochs=12, lr=3e-3,
        )
        assert result.accuracy > 0.7
        assert result.max_comm_cost > 0
        assert len(result.node_costs()) == 16

    def test_heuristic_cheaper_than_centralized(self, fall_data):
        """The Fig. 10 comparison at test scale."""
        xtr, ytr, xte, yte = fall_data
        pipe = FallDetectionPipeline(node_grid=(4, 4))
        heur = pipe.run(
            xtr[:50], ytr[:50], xte[:20], yte[:20], np.random.default_rng(2),
            params=FEASIBLE_PARAMS, assignment="heuristic", epochs=1,
        )
        cent = pipe.run(
            xtr[:50], ytr[:50], xte[:20], yte[:20], np.random.default_rng(2),
            params=OPTIMAL_PARAMS, assignment="centralized", epochs=1,
        )
        assert heur.max_comm_cost < cent.max_comm_cost

    def test_invalid_assignment(self, fall_data):
        xtr, ytr, xte, yte = fall_data
        pipe = FallDetectionPipeline()
        with pytest.raises(ValueError):
            pipe.run(xtr, ytr, xte, yte, np.random.default_rng(0),
                     assignment="quantum")


class TestDiscomfortPipeline:
    def test_end_to_end(self):
        rng = np.random.default_rng(3)
        x, y = generate_lounge_dataset(LoungeDatasetConfig(n_samples=500), rng)
        order = np.random.default_rng(4).permutation(len(x))
        x, y = x[order], y[order]
        pipe = DiscomfortPipeline(node_grid=(5, 10))
        result = pipe.run(
            x[:350], y[:350], x[350:], y[350:], np.random.default_rng(5),
            assignment="heuristic", update_mode="local", epochs=8,
        )
        assert result.accuracy > 0.7
        assert result.max_comm_cost > 0

    def test_peak_ratio_below_half(self):
        """MicroDeep's peak traffic is a small fraction of the
        centralize-everything peak (paper: 13 %)."""
        rng = np.random.default_rng(6)
        x, y = generate_lounge_dataset(LoungeDatasetConfig(n_samples=120), rng)
        pipe = DiscomfortPipeline(node_grid=(5, 10))
        heur = pipe.run(x[:80], y[:80], x[80:], y[80:],
                        np.random.default_rng(7), assignment="heuristic",
                        epochs=1)
        cent = pipe.run(x[:80], y[:80], x[80:], y[80:],
                        np.random.default_rng(7), assignment="centralized",
                        epochs=1)
        assert heur.max_comm_cost < 0.5 * cent.max_comm_cost


class TestCsiPipeline:
    def test_learn_infer_roundtrip(self):
        rng = np.random.default_rng(8)
        pipe = CsiLocalizationPipeline()
        pattern = default_patterns()[3]  # stand-aligned: cheap frames
        result = pipe.evaluate_pattern(pattern, 6, rng, window=4)
        assert result.accuracy > 0.5
        assert result.confusion.shape == (7, 7)
        assert result.confusion.sum() > 0

    def test_infer_before_learn_raises(self):
        pipe = CsiLocalizationPipeline()
        with pytest.raises(RuntimeError):
            pipe.infer(np.zeros((1, 624)))

    def test_evaluate_all_patterns_keys(self):
        rng = np.random.default_rng(9)
        pipe = CsiLocalizationPipeline(
            scenario=CsiLocalizationScenario(
                positions=[(1.0, 1.0), (4.0, 3.0), (2.0, 4.0)]
            )
        )
        patterns = default_patterns()[:2]
        results = pipe.evaluate_all_patterns(patterns, 4, rng, window=3)
        assert set(results) == {p.name for p in patterns}
