"""Tests for the intrusion, slope, and HVAC scenarios (iii, v, vi)."""

import numpy as np
import pytest

from repro.contexts import (
    AutonomousHvacController,
    ComfortPolicy,
    EntityKind,
    HvacZone,
    IntrusionDetector,
    LoungeThermalModel,
    PerimeterSimulator,
    SlopeMonitor,
    SlopeSimulator,
    crossing_direction,
    crossing_features,
    default_lounge,
    run_closed_loop,
)

RNG = np.random.default_rng(71)


class TestPerimeterSimulator:
    def test_event_shapes(self):
        sim = PerimeterSimulator()
        event = sim.render_crossing(EntityKind.HUMAN, RNG)
        assert event.frames.shape == (40, 8, 8)
        assert event.direction in (-1, 1)

    def test_balanced_dataset(self):
        sim = PerimeterSimulator()
        events = sim.generate_dataset(4, RNG)
        kinds = [e.kind for e in events]
        assert len(events) == 12
        for kind in EntityKind:
            assert kinds.count(kind) == 4

    def test_human_taller_than_boar(self):
        """Centroid height separates the classes (lower row index =
        higher above ground)."""
        sim = PerimeterSimulator(noise=0.0)
        rng = np.random.default_rng(1)
        human = crossing_features(sim.render_crossing(EntityKind.HUMAN, rng))
        boar = crossing_features(sim.render_crossing(EntityKind.BOAR, rng))
        assert human[0] < boar[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PerimeterSimulator(grid_rows=2)
        with pytest.raises(ValueError):
            PerimeterSimulator().generate_dataset(0, RNG)


class TestIntrusionDetector:
    @pytest.fixture(scope="class")
    def fitted(self):
        sim = PerimeterSimulator()
        train = sim.generate_dataset(15, np.random.default_rng(2))
        test = sim.generate_dataset(6, np.random.default_rng(3))
        detector = IntrusionDetector().fit(train)
        return detector, test

    def test_classification_beats_chance(self, fitted):
        detector, test = fitted
        result = detector.evaluate(test)
        assert result.kind_accuracy > 0.7
        assert result.confusion.shape == (3, 3)

    def test_direction_estimation(self, fitted):
        __, test = fitted
        hits = sum(crossing_direction(e) == e.direction for e in test)
        assert hits / len(test) > 0.9

    def test_requires_fit(self):
        sim = PerimeterSimulator()
        events = sim.generate_dataset(1, RNG)
        with pytest.raises(RuntimeError):
            IntrusionDetector().classify(events)
        with pytest.raises(ValueError):
            IntrusionDetector().fit([])


class TestSlopeSimulator:
    def test_wind_raises_closures(self):
        sim = SlopeSimulator()
        calm = sim.observe(2.0, np.random.default_rng(4))
        storm = sim.observe(25.0, np.random.default_rng(4))
        assert (
            np.mean(list(storm.closures.values()))
            > np.mean(list(calm.closures.values()))
        )

    def test_event_marks_patch(self):
        sim = SlopeSimulator()
        window = sim.observe(5.0, RNG, event_center=(1, 2))
        assert window.has_event
        assert len(window.event_nodes) >= 1
        in_patch = [window.closures[n] for n in window.event_nodes]
        outside = [
            c for n, c in window.closures.items()
            if n not in set(window.event_nodes)
        ]
        assert np.mean(in_patch) > np.mean(outside)

    def test_validation(self):
        sim = SlopeSimulator()
        with pytest.raises(ValueError):
            sim.observe(-1.0, RNG)
        with pytest.raises(ValueError):
            SlopeSimulator(samples_per_window=2)


class TestSlopeMonitor:
    @pytest.fixture(scope="class")
    def calibrated(self):
        sim = SlopeSimulator()
        rng = np.random.default_rng(5)
        calibration = [
            sim.observe(wind, rng)
            for wind in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0]
            for __ in range(3)
        ]
        monitor = SlopeMonitor(k_of_n=3).calibrate_wind(calibration)
        return sim, monitor

    def test_detects_events_rejects_quiet(self, calibrated):
        sim, monitor = calibrated
        rng = np.random.default_rng(6)
        windows = []
        for i in range(10):
            windows.append(sim.observe(8.0, rng, event_center=(1, 3)))
            windows.append(sim.observe(8.0, rng))
        detection, false_alarm, wind_mae = monitor.evaluate(windows)
        assert detection > 0.9
        assert false_alarm < 0.2

    def test_wind_estimate_tracks_truth(self, calibrated):
        sim, monitor = calibrated
        rng = np.random.default_rng(7)
        errors = []
        for wind in [3.0, 12.0, 22.0]:
            window = sim.observe(wind, rng)
            result = monitor.assess(window)
            errors.append(abs(result.wind_estimate_mps - wind))
        assert np.mean(errors) < 5.0

    def test_storm_is_not_an_event(self, calibrated):
        """Network-wide shaking (a storm) must not raise the landslide
        alarm — only a localized patch does."""
        sim, monitor = calibrated
        rng = np.random.default_rng(10)
        storm_alarms = [
            monitor.assess(sim.observe(30.0, rng)).alarm for __ in range(5)
        ]
        assert not any(storm_alarms)

    def test_requires_calibration(self):
        with pytest.raises(RuntimeError):
            SlopeMonitor().assess(
                SlopeSimulator().observe(5.0, RNG)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            SlopeMonitor(node_alarm_closure=1.5)
        with pytest.raises(ValueError):
            SlopeMonitor(k_of_n=0)
        with pytest.raises(ValueError):
            SlopeMonitor().calibrate_wind([])


class TestHvac:
    def test_zone_influence_peaks_at_center(self):
        zone = HvacZone(center=(5.0, 5.0))
        field = zone.influence(10, 10)
        assert field[5, 5] == field.max()

    def test_setpoint_clamped(self):
        zone = HvacZone(center=(0, 0), min_setpoint_c=18.0, max_setpoint_c=28.0)
        zone.command(5.0)
        assert zone.setpoint_c == 18.0
        zone.command(40.0)
        assert zone.setpoint_c == 28.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ComfortPolicy(low_c=30.0, high_c=20.0)
        with pytest.raises(ValueError):
            AutonomousHvacController(ComfortPolicy(), gain=0.0)

    def test_controller_reduces_discomfort(self):
        """The closed loop beats the uncontrolled lounge on a hot day
        — scenario (vi)'s point."""
        rng_a = np.random.default_rng(8)
        rng_b = np.random.default_rng(8)
        policy = ComfortPolicy()
        uncontrolled = run_closed_loop(
            default_lounge(ambient_c=31.0), None, n_steps=40, rng=rng_a
        )
        controller = AutonomousHvacController(policy, gain=0.8)
        controlled = run_closed_loop(
            default_lounge(ambient_c=31.0), controller, n_steps=40, rng=rng_b
        )
        assert controlled.final_discomfort < uncontrolled.final_discomfort
        assert controlled.mean_discomfort < uncontrolled.mean_discomfort

    def test_setpoints_move_down_when_hot(self):
        rng = np.random.default_rng(9)
        controller = AutonomousHvacController(ComfortPolicy(), gain=0.8)
        model = default_lounge(ambient_c=33.0)
        result = run_closed_loop(model, controller, n_steps=30, rng=rng)
        for trace in result.setpoint_traces.values():
            assert trace[-1] < trace[0]

    def test_run_validation(self):
        with pytest.raises(ValueError):
            run_closed_loop(default_lounge(), None, 0, RNG)
