"""Tests for the zero-energy sensing transducers (Fig. 2(b))."""

import numpy as np
import pytest

from repro.energy import (
    BimetallicSwitch,
    HydrogelResonator,
    MechanicalChopper,
    SpringAccelerometer,
    ZeroEnergySensorReadout,
    chopper_rate_to_flow,
)

RNG = np.random.default_rng(53)


class TestBimetallicSwitch:
    def test_switches_above_threshold(self):
        switch = BimetallicSwitch(threshold_c=30.0)
        assert switch.reflection_state(25.0) == 0.0
        assert switch.reflection_state(31.0) == 1.0

    def test_hysteresis(self):
        switch = BimetallicSwitch(threshold_c=30.0, hysteresis_c=2.0)
        assert switch.reflection_state(31.0) == 1.0
        # Still ON inside the hysteresis band on the way down...
        assert switch.reflection_state(29.0) == 1.0
        # ...until the release point.
        assert switch.reflection_state(27.9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BimetallicSwitch(hysteresis_c=-1.0)


class TestHydrogel:
    def test_monotone_analog_response(self):
        gel = HydrogelResonator(transition_c=32.0, band_c=6.0)
        states = [gel.reflection_state(t) for t in [20.0, 29.0, 32.0, 35.0, 44.0]]
        assert all(a < b for a, b in zip(states, states[1:]))
        assert states[0] < 0.05
        assert states[-1] > 0.95
        assert states[2] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            HydrogelResonator(band_c=0.0)


class TestSpringAccelerometer:
    def test_threshold_contact(self):
        spring = SpringAccelerometer(threshold_g=0.5)
        assert spring.reflection_state(0.2) == 0.0
        assert spring.reflection_state(0.7) == 1.0
        assert spring.reflection_state(-0.7) == 1.0  # either direction

    def test_validation(self):
        with pytest.raises(ValueError):
            SpringAccelerometer(threshold_g=0.0)


class TestChopper:
    def test_alternates_with_angle(self):
        gear = MechanicalChopper(teeth=4)
        quarter_tooth = 2 * np.pi / 4 / 2
        s0 = gear.reflection_state(0.0)
        s1 = gear.reflection_state(quarter_tooth * 1.01)
        assert s0 != s1

    def test_flow_decoding(self):
        """A gear spinning at 2 rev/s is recovered from the decoded
        toggle stream."""
        gear = MechanicalChopper(teeth=8)
        readout = ZeroEnergySensorReadout(gear, noise_db=0.2)
        dt = 1e-3
        rev_per_s = 2.0
        angles = 2 * np.pi * rev_per_s * np.arange(2000) * dt
        states = readout.sense_series(angles, np.random.default_rng(1))
        flow = chopper_rate_to_flow(states, dt, teeth=8)
        assert flow == pytest.approx(rev_per_s, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MechanicalChopper(teeth=0)
        with pytest.raises(ValueError):
            chopper_rate_to_flow(np.zeros(1), 0.001)
        with pytest.raises(ValueError):
            chopper_rate_to_flow(np.zeros(10), -1.0)


class TestReadout:
    def test_state_separation(self):
        switch = BimetallicSwitch(threshold_c=30.0)
        readout = ZeroEnergySensorReadout(switch, swing_db=8.0, noise_db=0.5)
        cold = [readout.observe(20.0, RNG) for __ in range(50)]
        hot = [readout.observe(40.0, RNG) for __ in range(50)]
        assert np.mean(hot) - np.mean(cold) == pytest.approx(8.0, abs=1.0)

    def test_decode_roundtrip(self):
        switch = BimetallicSwitch(threshold_c=30.0)
        readout = ZeroEnergySensorReadout(switch, swing_db=10.0, noise_db=0.3)
        temps = [20.0, 40.0, 40.0, 20.0, 40.0]
        states = readout.sense_series(temps, np.random.default_rng(2))
        np.testing.assert_array_equal(states, [0, 1, 1, 0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            ZeroEnergySensorReadout(BimetallicSwitch(), swing_db=0.0)
