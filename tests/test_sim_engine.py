"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import EventQueue, Event, PeriodicProcess, SimulationError, Simulator, Timer


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        seen = []
        q.push(Event(2.0, seen.append, (2,)))
        q.push(Event(1.0, seen.append, (1,)))
        q.push(Event(3.0, seen.append, (3,)))
        while q:
            q.pop().fire()
        assert seen == [1, 2, 3]

    def test_same_time_insertion_order(self):
        q = EventQueue()
        seen = []
        for i in range(5):
            q.push(Event(1.0, seen.append, (i,)))
        while q:
            q.pop().fire()
        assert seen == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        q = EventQueue()
        seen = []
        q.push(Event(1.0, seen.append, ("low",), priority=5))
        q.push(Event(1.0, seen.append, ("high",), priority=0))
        while q:
            q.pop().fire()
        assert seen == ["high", "low"]

    def test_cancel_skips_event(self):
        q = EventQueue()
        e1 = q.push(Event(1.0, lambda: None))
        q.push(Event(2.0, lambda: None))
        q.cancel(e1)
        assert len(q) == 1
        assert q.pop().time == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e = q.push(Event(1.0, lambda: None))
        q.push(Event(5.0, lambda: None))
        q.cancel(e)
        assert q.peek_time() == 5.0


class TestSimulator:
    def test_time_advances_monotonically(self):
        sim = Simulator()
        times = []
        for delay in [3.0, 1.0, 2.0]:
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        end = sim.run(until=5.0)
        assert fired == ["a"]
        assert end == 5.0
        assert sim.pending == 1

    def test_event_at_until_boundary_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 3.0)]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=4)
        assert sim.processed == 4
        assert sim.pending == 6

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending == 0
        assert sim.processed == 0

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.5, fired.append, True)
        sim.run()
        assert sim.now == 12.5
        assert fired == [True]


class TestSimulatorFaultSafety:
    """Handler exceptions and re-entrancy must leave the engine in a
    resumable state (the fault layer leans on this)."""

    def test_handler_exception_propagates(self):
        sim = Simulator()
        sim.schedule(1.0, self._boom)
        with pytest.raises(RuntimeError, match="handler failed"):
            sim.run()

    def test_resumable_after_handler_exception(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "before")
        sim.schedule(2.0, self._boom)
        sim.schedule(3.0, fired.append, "after")
        with pytest.raises(RuntimeError):
            sim.run()
        # The failing event is consumed; the engine is not stuck
        # "running" and the remaining events are still scheduled.
        assert not sim.running
        assert sim.now == 2.0
        assert sim.pending == 1
        end = sim.run()
        assert fired == ["before", "after"]
        assert end == 3.0
        assert not sim.running

    def test_running_property_during_run(self):
        sim = Simulator()
        observed = []
        sim.schedule(1.0, lambda: observed.append(sim.running))
        assert not sim.running
        sim.run()
        assert observed == [True]
        assert not sim.running

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert len(errors) == 1
        assert "re-entrant" in errors[0]
        # The outer run still completed every event.
        assert sim.pending == 0
        assert sim.now == 2.0

    def test_schedule_still_works_after_exception(self):
        sim = Simulator()
        sim.schedule(1.0, self._boom)
        with pytest.raises(RuntimeError):
            sim.run()
        fired = []
        sim.schedule(1.0, fired.append, True)
        sim.run()
        assert fired == [True]
        assert sim.now == 2.0

    @staticmethod
    def _boom():
        raise RuntimeError("handler failed")


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(2.0)
        sim.run()
        assert hits == [2.0]
        assert not t.armed

    def test_restart_reschedules(self):
        sim = Simulator()
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(2.0)
        sim.schedule(1.0, lambda: t.start(5.0))
        sim.run()
        assert hits == [6.0]

    def test_stop_prevents_fire(self):
        sim = Simulator()
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(2.0)
        t.stop()
        sim.run()
        assert hits == []


class TestPeriodicProcess:
    def test_runs_on_period(self):
        sim = Simulator()
        ticks = []
        p = PeriodicProcess(sim, period=2.0, callback=lambda: ticks.append(sim.now))
        p.start()
        sim.run(until=7.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0]
        assert p.invocations == 4

    def test_start_offset(self):
        sim = Simulator()
        ticks = []
        p = PeriodicProcess(
            sim, period=3.0, callback=lambda: ticks.append(sim.now), start_offset=1.0
        )
        p.start()
        sim.run(until=8.0)
        assert ticks == [1.0, 4.0, 7.0]

    def test_stop_from_callback(self):
        sim = Simulator()
        p = PeriodicProcess(sim, period=1.0, callback=lambda: p.stop())
        p.start()
        sim.run(until=100.0)
        assert p.invocations == 1
        assert not p.running

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicProcess(Simulator(), period=0.0, callback=lambda: None)
