"""Parity: every vectorized hot path is behavior-identical to the
kept pre-optimization reference path — same bytes out, same traffic
counted.  This is the contract that lets the perf layer optimize
without invalidating the paper's measured results."""

import numpy as np
import pytest

from repro.core import (
    DistributedExecutor,
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.nn.layers import conv as conv_module
from repro.nn.layers.im2col import (
    clear_index_cache,
    im2col,
    im2col_cached,
)
from repro.wsn import GridTopology, Network

RNG = np.random.default_rng(91)


def make(input_hw=(10, 10), node_grid=(4, 4), filters=2, seed=0):
    model = Sequential([
        Conv2D(filters, 3), ReLU(), MaxPool2D(2), Flatten(),
        Dense(8), ReLU(), Dense(2),
    ])
    model.build((1,) + input_hw, np.random.default_rng(seed))
    graph = UnitGraph(model)
    topo = GridTopology(*node_grid)
    return model, graph, topo


def stats_snapshot(net):
    """Every counter the network keeps, node counters included."""
    s = net.stats
    return {
        "sent": s.sent,
        "delivered": s.delivered,
        "dropped": s.dropped,
        "corrupted": s.corrupted,
        "duplicated": s.duplicated,
        "total_hops": s.total_hops,
        "rx": dict(s.per_node_rx_values),
        "tx": dict(s.per_node_tx_values),
        "node_rx_count": {n.node_id: n.rx_count for n in net.topology},
        "node_tx_count": {n.node_id: n.tx_count for n in net.topology},
        "node_rx_values": {n.node_id: n.rx_values for n in net.topology},
        "node_tx_values": {n.node_id: n.tx_values for n in net.topology},
    }


STRATEGIES = [
    grid_correspondence_assignment,
    lambda g, t: centralized_assignment(g, t),
    round_robin_assignment,
    lambda g, t: random_assignment(g, t, np.random.default_rng(5)),
]


class TestReplayParity:
    @pytest.mark.parametrize("batch", [1, 3, 32])
    def test_aggregated_replay_matches_per_element_stats(self, batch):
        """The headline parity: bulk replay leaves every traffic
        counter byte-identical to the per-element loop."""
        model, graph, topo = make()
        for strategy in STRATEGIES:
            placement = strategy(graph, topo)
            net_fast = Network(topo)
            ex_fast = DistributedExecutor(model, graph, placement, net_fast)
            x = RNG.normal(size=(batch, 1, 10, 10))
            out_fast = ex_fast.forward(x)
            fast = stats_snapshot(net_fast)
            net_fast.reset_stats()

            net_ref = Network(topo)
            ex_ref = DistributedExecutor(model, graph, placement, net_ref)
            out_ref = ex_ref.forward(x, per_element=True)
            ref = stats_snapshot(net_ref)
            net_ref.reset_stats()

            assert fast == ref
            assert out_fast.tobytes() == out_ref.tobytes()

    def test_aggregated_replay_matches_static_cost_model(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo)
        ex = DistributedExecutor(model, graph, placement, net)
        ex.forward(RNG.normal(size=(1, 1, 10, 10)))
        static = ex.measured_cost_report()
        for node_id in topo.nodes:
            assert net.stats.per_node_rx_values.get(node_id, 0) == (
                static.rx_values.get(node_id, 0)
            )

    def test_bulk_rejects_negative_copies(self):
        __, __, topo = make()
        net = Network(topo)
        from repro.wsn.network import Message
        with pytest.raises(ValueError):
            net.unicast_bulk(Message(0, 1, 4), copies=-1)
        assert net.unicast_bulk(Message(0, 1, 4), copies=0) == 0
        assert net.stats.sent == 0

    def test_bulk_falls_back_per_message_on_lossy_links(self):
        """Lossy links draw per-message randomness; bulk must follow
        the exact same RNG stream as the unicast loop."""
        from repro.wsn.network import Message
        __, __, topo = make()
        net_a = Network(topo, loss_probability=0.4, max_retries=0,
                        rng=np.random.default_rng(7))
        net_b = Network(topo, loss_probability=0.4, max_retries=0,
                        rng=np.random.default_rng(7))
        delivered_bulk = net_a.unicast_bulk(Message(0, 15, 3), copies=20)
        delivered_loop = sum(
            net_b.unicast(Message(0, 15, 3)) for __ in range(20)
        )
        assert delivered_bulk == delivered_loop
        assert stats_snapshot(net_a) == stats_snapshot(net_b)


class TestMaskedParity:
    @pytest.mark.parametrize("dead_fraction", [0.0, 0.2, 0.5, 1.0])
    def test_masked_forward_byte_identical(self, dead_fraction):
        model, graph, topo = make(input_hw=(12, 12), node_grid=(4, 4))
        placement = grid_correspondence_assignment(graph, topo)
        ex = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(3, 1, 12, 12))
        node_ids = sorted(topo.nodes)
        n_dead = round(dead_fraction * len(node_ids))
        dead = list(RNG.choice(node_ids, size=n_dead, replace=False))
        fast = ex.forward_masked(x, dead)
        ref = ex.forward_masked_reference(x, dead)
        assert fast.tobytes() == ref.tobytes()

    def test_masked_forward_all_strategies(self):
        model, graph, topo = make()
        x = RNG.normal(size=(2, 1, 10, 10))
        for strategy in STRATEGIES:
            placement = strategy(graph, topo)
            ex = DistributedExecutor(model, graph, placement, Network(topo))
            dead = [0, 5, 11]
            assert ex.forward_masked(x, dead).tobytes() == (
                ex.forward_masked_reference(x, dead).tobytes()
            )

    def test_masked_forward_does_not_mutate_input(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        ex = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(2, 1, 10, 10))
        before = x.copy()
        ex.forward_masked(x, [0, 1])
        ex.forward_masked_reference(x, [2, 3])
        np.testing.assert_array_equal(x, before)

    def test_dead_index_memo_reused_and_correct(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        ex = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(1, 1, 10, 10))
        first = ex.forward_masked(x, [3, 7])
        assert frozenset({3, 7}) in ex._dead_index_cache
        second = ex.forward_masked(x, [7, 3])  # same set, memo hit
        assert first.tobytes() == second.tobytes()


class TestIm2colParity:
    def setup_method(self):
        clear_index_cache()

    @pytest.mark.parametrize("case", [
        # (c, h, w, kh, kw, stride, pad) covering both cache branches.
        (1, 10, 10, 3, 3, 1, 0),   # overlapping -> slice-loop branch
        (2, 7, 7, 3, 3, 1, 1),
        (3, 8, 9, 2, 3, 2, 1),     # mixed overlap
        (4, 12, 6, 2, 2, 2, 0),    # pooling regime -> gather branch
        (2, 10, 10, 2, 2, 2, 0),
        (1, 9, 9, 3, 3, 3, 0),
    ])
    def test_cached_unfold_byte_identical(self, case):
        c, h, w, kh, kw, stride, pad = case
        x = RNG.normal(size=(4, c, h, w))
        ref = im2col(x, kh, kw, stride, pad)
        fast = im2col_cached(x, kh, kw, stride, pad)
        assert ref.shape == fast.shape
        assert ref.tobytes() == fast.tobytes()
        # Second call hits the memo; still identical.
        assert im2col_cached(x, kh, kw, stride, pad).tobytes() == ref.tobytes()

    def test_conv_forward_matches_reference_unfold(self, monkeypatch):
        """A built conv model produces byte-identical logits whether
        its unfold goes through the cache or the reference loop."""
        model, __, __ = make(filters=3)
        x = RNG.normal(size=(4, 1, 10, 10))
        fast = model.forward(x)
        monkeypatch.setattr(conv_module, "im2col_cached", im2col)
        ref = model.forward(x)
        assert fast.tobytes() == ref.tobytes()

    def test_conv_training_gradients_unaffected(self):
        """The cached unfold feeds backward through the same col
        cache; gradients stay finite and shaped."""
        layer = Conv2D(2, 2, stride=2)
        layer.build((2, 8, 8), np.random.default_rng(0))
        x = RNG.normal(size=(3, 2, 8, 8))
        out = layer.forward(x, training=True)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert np.isfinite(grad_in).all()


class TestHookedLazyCopy:
    def test_hook_free_and_hooked_paths_agree(self):
        """The E8 interaction fix: no-hook calls skip the input copy
        yet still produce exactly the hooked (identity) result."""
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        ex = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(2, 1, 10, 10))
        plain = ex.forward_hooked(x)
        identity = ex.forward_hooked(
            x, input_hook=lambda arr: arr,
            layer_hook=lambda entry, out: out,
        )
        assert plain.tobytes() == identity.tobytes()
        assert plain.tobytes() == model.forward(x).tobytes()

    def test_hook_free_path_does_not_copy_or_mutate(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        ex = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(2, 1, 10, 10))
        before = x.copy()
        ex.forward_hooked(x)
        np.testing.assert_array_equal(x, before)

    def test_input_hook_gets_private_copy(self):
        """A mutating input hook must never write through to the
        caller's array."""
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        ex = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(2, 1, 10, 10))
        before = x.copy()

        def zero_everything(arr):
            arr[:] = 0.0
            return arr

        out = ex.forward_hooked(x, input_hook=zero_everything)
        np.testing.assert_array_equal(x, before)
        zeros = ex.forward_hooked(np.zeros_like(x))
        assert out.tobytes() == zeros.tobytes()
