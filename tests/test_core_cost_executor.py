"""Tests for the cost model and distributed executor."""

import numpy as np
import pytest

from repro.core import (
    CommunicationCostModel,
    DistributedExecutor,
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
    random_assignment,
)
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.wsn import GridTopology, Network

RNG = np.random.default_rng(17)


def make(input_hw=(10, 10), channels=1, node_grid=(4, 4)):
    """A CNN in MicroDeep's operating regime: the conv/pool stage
    compresses the spatial data well below the input size before the
    dense stage (10x10 input -> 4x4x2 = 32 values)."""
    model = Sequential([
        Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(8), ReLU(), Dense(2),
    ])
    model.build((channels,) + input_hw, np.random.default_rng(0))
    graph = UnitGraph(model)
    topo = GridTopology(*node_grid)
    return model, graph, topo


class TestCostModel:
    def test_centralized_sink_receives_everything(self):
        model, graph, topo = make()
        placement = centralized_assignment(graph, topo, sink=0)
        report = CommunicationCostModel(graph, topo).inference_cost(placement)
        # The sink receives every input cell it does not own: 64 cells,
        # 4 owned by node 0 (cells mapping to node (0,0)).
        sink_direct = sum(
            1 for pos, node in placement.input_node.items() if node != 0
        )
        assert report.rx_values[0] >= sink_direct
        assert report.max_rx() >= sink_direct

    def test_grid_correspondence_beats_centralized_peak(self):
        """The paper's headline: distributing units slashes the peak
        per-node traffic."""
        model, graph, topo = make()
        cm = CommunicationCostModel(graph, topo)
        central = cm.inference_cost(centralized_assignment(graph, topo))
        spread = cm.inference_cost(grid_correspondence_assignment(graph, topo))
        assert spread.max_rx() < central.max_rx()

    def test_grid_correspondence_beats_random_total(self):
        model, graph, topo = make()
        cm = CommunicationCostModel(graph, topo)
        good = cm.inference_cost(grid_correspondence_assignment(graph, topo))
        bad = cm.inference_cost(random_assignment(graph, topo, RNG))
        assert good.total_rx() < bad.total_rx()

    def test_single_node_zero_cost(self):
        model, graph, topo = make(node_grid=(1, 1))
        placement = grid_correspondence_assignment(graph, topo)
        report = CommunicationCostModel(graph, topo).inference_cost(placement)
        assert report.total_rx() == 0

    def test_elementwise_layers_free(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        report = CommunicationCostModel(graph, topo).inference_cost(placement)
        # ReLU layers are 1 and 5
        assert report.per_layer_total.get(1, 0) == 0
        assert report.per_layer_total.get(5, 0) == 0

    def test_collect_output_adds_cost(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        cm = CommunicationCostModel(graph, topo)
        without = cm.inference_cost(placement)
        with_sink = cm.inference_cost(placement, collect_output_at=0)
        assert with_sink.total_rx() >= without.total_rx()

    def test_node_costs_order(self):
        model, graph, topo = make()
        placement = centralized_assignment(graph, topo, sink=3)
        report = CommunicationCostModel(graph, topo).inference_cost(placement)
        costs = report.node_costs(sorted(topo.nodes))
        assert len(costs) == 16
        assert costs[3] == report.max_rx()

    def test_local_training_costs_same_as_inference(self):
        """MicroDeep's headline: local updates add zero gradient
        traffic on top of the forward pass."""
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        cm = CommunicationCostModel(graph, topo)
        inference = cm.inference_cost(placement)
        local = cm.training_step_cost(placement, "local")
        assert local.total_rx() == inference.total_rx()

    def test_exact_training_doubles_traffic(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        cm = CommunicationCostModel(graph, topo)
        inference = cm.inference_cost(placement)
        exact = cm.training_step_cost(placement, "exact")
        assert exact.total_rx() == 2 * inference.total_rx()

    def test_training_cost_mode_validation(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        cm = CommunicationCostModel(graph, topo)
        with pytest.raises(ValueError):
            cm.training_step_cost(placement, "turbo")


class TestExecutor:
    def test_forward_matches_centralized_math(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo)
        executor = DistributedExecutor(model, graph, placement, net)
        x = RNG.normal(size=(3, 1, 10, 10))
        np.testing.assert_allclose(
            executor.forward(x, count_traffic=False),
            model.forward(x),
        )

    def test_measured_traffic_equals_static_model(self):
        """The distributed executor's measured per-node rx equals the
        static cost model on ideal links — the key accounting
        invariant."""
        model, graph, topo = make()
        for strategy in [
            grid_correspondence_assignment,
            lambda g, t: centralized_assignment(g, t),
            lambda g, t: random_assignment(g, t, np.random.default_rng(1)),
        ]:
            placement = strategy(graph, topo)
            net = Network(topo)
            executor = DistributedExecutor(model, graph, placement, net)
            x = RNG.normal(size=(1, 1, 10, 10))
            executor.forward(x, count_traffic=True)
            static = executor.measured_cost_report()
            for node_id in topo.nodes:
                assert net.stats.per_node_rx_values.get(node_id, 0) == (
                    static.rx_values.get(node_id, 0)
                ), f"node {node_id}"

    def test_traffic_scales_with_batch(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo)
        executor = DistributedExecutor(model, graph, placement, net)
        executor.forward(RNG.normal(size=(1, 1, 10, 10)))
        one = net.stats.max_rx_values()
        net.reset_stats()
        executor.forward(RNG.normal(size=(4, 1, 10, 10)))
        assert net.stats.max_rx_values() == 4 * one

    def test_mismatched_graph_rejected(self):
        model, graph, topo = make()
        other_model, __, __ = make()
        placement = grid_correspondence_assignment(graph, topo)
        with pytest.raises(ValueError):
            DistributedExecutor(other_model, graph, placement, Network(topo))


class TestFaultMasking:
    def test_no_faults_identical(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        executor = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(2, 1, 10, 10))
        np.testing.assert_allclose(
            executor.forward_masked(x, []), model.forward(x)
        )

    def test_dead_input_cells_zeroed(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        executor = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(2, 1, 10, 10))
        out_alive = executor.forward_masked(x, [])
        out_dead = executor.forward_masked(x, [0])
        assert not np.allclose(out_alive, out_dead)

    def test_all_dead_gives_constant_output(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        executor = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(3, 1, 10, 10))
        out = executor.forward_masked(x, list(topo.nodes))
        # Everything zeroed along the way: logits identical across inputs.
        assert np.allclose(out[0], out[1]) and np.allclose(out[1], out[2])

    def test_accuracy_under_faults_degrades_monotone_on_average(self):
        model, graph, topo = make()
        placement = grid_correspondence_assignment(graph, topo)
        executor = DistributedExecutor(model, graph, placement, Network(topo))
        x = RNG.normal(size=(40, 1, 10, 10))
        y = executor.predict(x)  # model's own outputs as ground truth
        acc0 = executor.accuracy_under_faults(x, y, [])
        acc_all = executor.accuracy_under_faults(x, y, list(topo.nodes))
        assert acc0 == 1.0
        assert acc_all <= 1.0
