"""Tests for the energy-harvesting substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import (
    Capacitor,
    HarvestingTrace,
    IntermittentPowerManager,
    PiecewiseTraceHarvester,
    RADIO_PROFILES,
    RadioEnergyModel,
    RFHarvester,
    SolarHarvester,
    TaskSpec,
    ThermalHarvester,
    VibrationHarvester,
    backscatter_vs_active_ratio,
    diurnal_solar_trace,
    rf_field_trace,
)

RNG = np.random.default_rng(7)


class TestCapacitor:
    def test_harvest_and_draw(self):
        cap = Capacitor(capacity_j=1.0)
        stored = cap.harvest(0.4)
        assert stored == 0.4
        assert cap.draw(0.3)
        assert cap.energy_j == pytest.approx(0.1)

    def test_overflow_is_wasted(self):
        cap = Capacitor(capacity_j=1.0, initial_j=0.9)
        stored = cap.harvest(0.5)
        assert stored == pytest.approx(0.1)
        assert cap.total_wasted_j == pytest.approx(0.4)
        assert cap.full

    def test_draw_fails_atomically(self):
        cap = Capacitor(capacity_j=1.0, initial_j=0.2)
        assert not cap.draw(0.3)
        assert cap.energy_j == pytest.approx(0.2)

    def test_thresholds(self):
        cap = Capacitor(capacity_j=1.0, turn_on_j=0.5, brown_out_j=0.1)
        assert not cap.can_turn_on
        cap.harvest(0.6)
        assert cap.can_turn_on
        cap.draw(0.55)
        assert cap.browned_out

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            Capacitor(capacity_j=1.0, turn_on_j=0.2, brown_out_j=0.5)

    def test_negative_amounts_rejected(self):
        cap = Capacitor(capacity_j=1.0)
        with pytest.raises(ValueError):
            cap.harvest(-1.0)
        with pytest.raises(ValueError):
            cap.draw(-1.0)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(0.0, 0.5)), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50)
    def test_energy_conservation(self, ops):
        """stored + consumed bookkeeping always matches current level."""
        cap = Capacitor(capacity_j=2.0, initial_j=1.0)
        for is_harvest, amount in ops:
            if is_harvest:
                cap.harvest(amount)
            else:
                cap.draw(amount)
        expected = 1.0 + cap.total_harvested_j - cap.total_consumed_j
        assert cap.energy_j == pytest.approx(expected)
        assert 0.0 <= cap.energy_j <= cap.capacity_j + 1e-12


class TestHarvesters:
    def test_rf_decays_with_distance(self):
        near = RFHarvester(distance_m=1.0).power_at(0.0)
        far = RFHarvester(distance_m=10.0).power_at(0.0)
        assert near > far > 0 or far == 0.0
        assert near > 0

    def test_rf_sensitivity_floor(self):
        h = RFHarvester(distance_m=1e6)
        assert h.power_at(0.0) == 0.0

    def test_rf_order_of_magnitude(self):
        # ~1 W reader at 3 m should harvest in the uW..tens of uW band.
        p = RFHarvester(tx_power_w=1.0, distance_m=3.0).power_at(0.0)
        assert 1e-7 < p < 1e-3

    def test_solar_scales_with_lux(self):
        dim = SolarHarvester(illuminance=lambda t: 100.0).power_at(0)
        bright = SolarHarvester(illuminance=lambda t: 1000.0).power_at(0)
        assert bright == pytest.approx(10 * dim)

    def test_thermal_quadratic(self):
        h1 = ThermalHarvester(delta_t=lambda t: 1.0).power_at(0)
        h2 = ThermalHarvester(delta_t=lambda t: 2.0).power_at(0)
        assert h2 == pytest.approx(4 * h1)

    def test_vibration_peaks_at_resonance(self):
        h = VibrationHarvester(resonance_hz=50.0)
        at_res = h.power_at(0)
        h_off = VibrationHarvester(
            resonance_hz=50.0, vibration_hz=lambda t: 70.0
        ).power_at(0)
        assert at_res > h_off

    def test_piecewise_trace_lookup(self):
        h = PiecewiseTraceHarvester([0.0, 1.0, 2.0], [1e-6, 2e-6, 3e-6])
        assert h.power_at(0.5) == 1e-6
        assert h.power_at(1.0) == 2e-6
        assert h.power_at(99.0) == 3e-6
        assert h.power_at(-1.0) == 1e-6

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseTraceHarvester([1.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            PiecewiseTraceHarvester([0.0], [-1.0])

    def test_energy_between(self):
        h = PiecewiseTraceHarvester([0.0], [2e-6])
        e = h.energy_between(0.0, 10.0)
        assert e == pytest.approx(2e-5, rel=1e-6)


class TestTraces:
    def test_solar_day_night(self):
        trace = diurnal_solar_trace(1.0, 600.0, 1e-3, RNG)
        quarter = len(trace.times) // 4
        # midnight power zero, midday positive
        assert trace.powers[0] == 0.0
        assert trace.powers[2 * quarter] > 0
        assert trace.total_energy_j() > 0

    def test_rf_trace_never_zero(self):
        trace = rf_field_trace(100.0, 1.0, 50e-6, RNG)
        assert np.all(trace.powers > 0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            HarvestingTrace(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            HarvestingTrace(np.array([0.0, 1.0]), np.array([1.0, -1.0]))

    def test_mean_power(self):
        trace = HarvestingTrace(np.array([0.0, 1.0, 2.0]), np.array([1.0, 1.0, 1.0]))
        assert trace.mean_power_w == pytest.approx(1.0)


class TestRadioBudget:
    def test_paper_10000x_claim(self):
        ratio = backscatter_vs_active_ratio("wifi")
        assert 1_000 <= ratio <= 100_000  # "about 1/10,000"

    def test_ble_milliwatt_order(self):
        assert 1e-3 <= RADIO_PROFILES["ble"].tx_power_w <= 100e-3

    def test_backscatter_10uw(self):
        assert RADIO_PROFILES["backscatter"].tx_power_w == pytest.approx(10e-6)

    def test_tx_energy_scales_with_bits(self):
        model = RadioEnergyModel.named("zigbee")
        assert model.tx_energy_j(2000) == pytest.approx(2 * model.tx_energy_j(1000))

    def test_unknown_radio(self):
        with pytest.raises(KeyError):
            RadioEnergyModel.named("carrier-pigeon")

    def test_sustainable_duty_cycle_backscatter_vs_wifi(self):
        harvested = 20e-6  # 20 uW harvested
        bsc = RadioEnergyModel.named("backscatter").sustainable_duty_cycle(harvested)
        wifi = RadioEnergyModel.named("wifi").sustainable_duty_cycle(harvested)
        assert bsc == 1.0  # backscatter runs continuously
        assert wifi < 1e-3  # active Wi-Fi effectively cannot

    def test_duty_cycle_power_bounds(self):
        model = RadioEnergyModel.named("ble")
        with pytest.raises(ValueError):
            model.duty_cycle_power_w(0.7, 0.7)


class TestIntermittentManager:
    def _trace(self, power_w, duration=100.0, dt=1.0):
        n = int(duration / dt) + 1
        return HarvestingTrace(np.arange(n) * dt, np.full(n, power_w))

    def test_plentiful_energy_runs_all_tasks(self):
        cap = Capacitor(capacity_j=1e-3, turn_on_j=1e-5, initial_j=1e-4)
        tasks = [TaskSpec("sense", 1e-7, 0.1), TaskSpec("tx", 1e-7, 0.1)]
        mgr = IntermittentPowerManager(cap, tasks)
        report = mgr.run(self._trace(100e-6))
        assert report.completions("sense") > 100
        assert report.completions("tx") > 100
        assert report.brown_outs == 0

    def test_starved_device_stays_off(self):
        cap = Capacitor(capacity_j=1e-3, turn_on_j=5e-4)
        tasks = [TaskSpec("tx", 1e-4, 0.1)]
        mgr = IntermittentPowerManager(cap, tasks)
        report = mgr.run(self._trace(1e-9, duration=10.0))
        assert report.completions("tx") == 0
        assert report.availability < 0.05

    def test_intermittent_cycles(self):
        # Harvest slowly, spend fast: device should cycle on/off.
        cap = Capacitor(capacity_j=1e-4, turn_on_j=5e-5, brown_out_j=0.0)
        tasks = [TaskSpec("burst", 6e-5, 0.5)]
        mgr = IntermittentPowerManager(cap, tasks)
        report = mgr.run(self._trace(2e-6, duration=500.0))
        assert report.brown_outs >= 1
        assert report.completions("burst") >= 1

    def test_task_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("bad", -1.0, 1.0)
        with pytest.raises(ValueError):
            IntermittentPowerManager(Capacitor(1.0), [])
