"""Tests for direct/indirect sensing fusion (Fig. 3)."""

import numpy as np
import pytest

from repro.contexts import DirectSensingField, FusionLocalizer
from repro.sensing import default_patterns

RNG = np.random.default_rng(151)


class TestDirectField:
    def test_detection_decays_with_distance(self):
        field = DirectSensingField([(0.0, 0.0)], radius_m=1.0)
        near = field.detection_probability(0, (0.1, 0.0))
        far = field.detection_probability(0, (4.0, 0.0))
        assert near > 0.9
        assert far < 0.1

    def test_false_positive_floor(self):
        field = DirectSensingField([(0.0, 0.0)], false_positive_rate=0.05)
        assert field.detection_probability(0, (100.0, 100.0)) == 0.05

    def test_observe_shape(self):
        field = DirectSensingField([(0.0, 0.0), (2.0, 2.0), (4.0, 0.0)])
        bits = field.observe((2.0, 2.0), RNG)
        assert bits.shape == (3,)
        assert set(np.unique(bits)) <= {0.0, 1.0}

    def test_on_top_of_tag_fires(self):
        field = DirectSensingField([(1.0, 1.0)])
        hits = sum(field.observe((1.0, 1.0), RNG)[0] for __ in range(30))
        assert hits >= 27

    def test_validation(self):
        with pytest.raises(ValueError):
            DirectSensingField([])
        with pytest.raises(ValueError):
            DirectSensingField([(0, 0)], radius_m=0.0)


class TestFusionLocalizer:
    def test_dataset_alignment(self):
        loc = FusionLocalizer()
        pattern = default_patterns()[3]
        csi_x, direct, y = loc.generate_dataset(pattern, 2, RNG, window=2)
        assert len(csi_x) == len(direct) == len(y) == 14
        assert direct.shape[1] == loc.field.n_tags

    def test_fusion_never_much_worse_than_best(self):
        """Fig. 3's claim at test scale: the fused model matches or
        beats the best single modality."""
        loc = FusionLocalizer()
        pattern = [
            p for p in default_patterns() if p.name == "walk-divergent-noisy"
        ][0]
        result = loc.evaluate(pattern, 10, np.random.default_rng(2), window=4)
        best_single = max(result.direct_accuracy, result.indirect_accuracy)
        assert result.fused_accuracy >= best_single - 0.05
        # Direct-only is genuinely limited (tags cover 3 of 7 positions).
        assert result.direct_accuracy < 0.9

    def test_direct_only_above_chance(self):
        loc = FusionLocalizer()
        pattern = default_patterns()[3]
        result = loc.evaluate(pattern, 8, np.random.default_rng(3), window=2)
        assert result.direct_accuracy > 1.0 / 7
