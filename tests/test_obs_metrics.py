"""Metrics registry semantics: instruments, labeled series, pull
collectors, and the null backend."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge()
        g.set(4)
        g.add(-1.5)
        assert g.value == 2.5

    def test_histogram_bucket_placement(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # <=1, <=10, overflow
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(106.5)

    def test_histogram_quantiles(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 0.7, 5.0):
            h.observe(v)
        assert h.quantile_bound(0.5) == 1.0
        assert h.quantile_bound(1.0) == 10.0
        import math

        assert math.isnan(Histogram().quantile_bound(0.5))

    def test_histogram_overflow_quantile_is_inf(self):
        h = Histogram(buckets=(1.0,))
        h.observe(99.0)
        assert h.quantile_bound(0.9) == float("inf")

    def test_histogram_validates_buckets(self):
        with pytest.raises(ValueError, match="increase"):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())


class TestRegistry:
    def test_get_or_create_by_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("net.rx", node=1)
        b = reg.counter("net.rx", node=2)
        assert a is not b
        assert reg.counter("net.rx", node=1) is a
        assert len(reg) == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("x")
        with pytest.raises(TypeError, match="counter"):
            reg.histogram("x")

    def test_value_and_total(self):
        reg = MetricsRegistry()
        reg.counter("net.rx", node=1).inc(10)
        reg.counter("net.rx", node=2).inc(5)
        assert reg.value("net.rx", node=1) == 10
        assert reg.value("net.rx", node=9) == 0.0
        assert reg.total("net.rx") == 15

    def test_series_canonical_order(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", node=2)
        reg.counter("a", node=1)
        names = [(name, labels) for name, labels, __ in reg.series()]
        assert names == [
            ("a", {"node": 1}), ("a", {"node": 2}), ("b", {})
        ]

    def test_collector_runs_at_collect_time(self):
        reg = MetricsRegistry()
        calls = []

        def sync(registry):
            calls.append(registry)
            registry.counter("pulled").inc()

        reg.register_collector(sync)
        assert calls == []  # nothing until collect()
        reg.collect()
        assert calls == [reg]
        assert reg.value("pulled") == 1

    def test_clear_keeps_collectors(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda r: r.counter("c").inc())
        reg.collect()
        reg.clear()
        assert len(reg) == 0
        reg.collect()
        assert reg.value("c") == 1


class TestNullMetrics:
    def test_shared_inert_instruments(self):
        null = NullMetrics()
        c = null.counter("a", node=1)
        assert c is null.counter("b")
        c.inc(100)
        assert c.value == 0.0
        g = null.gauge("g")
        g.set(5)
        g.add(1)
        assert g.value == 0.0
        h = null.histogram("h")
        h.observe(3)
        assert h.count == 0
        assert h.counts == [0] * (len(DEFAULT_BUCKETS) + 1)

    def test_read_side_is_empty(self):
        null = NullMetrics()
        null.register_collector(lambda r: r)
        null.collect()
        assert len(null) == 0
        assert null.series() == []
        assert null.value("x") == 0.0
        assert null.total("x") == 0.0


class TestHistogramEdgeCases:
    def test_q0_returns_first_nonempty_bucket(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        h.observe(5.0)  # lands in the <=10 bucket
        assert h.quantile_bound(0.0) == 10.0

    def test_q1_covers_the_maximum(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(7.0)
        assert h.quantile_bound(1.0) == 10.0

    def test_quantile_rejects_out_of_range(self):
        h = Histogram(buckets=(1.0,))
        with pytest.raises(ValueError, match="quantile"):
            h.quantile_bound(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile_bound(-0.1)

    def test_terminal_inf_bound_accepted(self):
        h = Histogram(buckets=(1.0, float("inf")))
        h.observe(99.0)
        assert h.quantile_bound(0.9) == float("inf")
        assert h.counts == [0, 1, 0]

    def test_non_terminal_inf_bound_rejected(self):
        with pytest.raises(ValueError, match="terminal"):
            Histogram(buckets=(float("inf"), 1.0))

    def test_nan_bound_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Histogram(buckets=(1.0, float("nan")))


class TestMergeSnapshotValidation:
    def test_bucket_boundary_mismatch_raises(self):
        src = MetricsRegistry()
        src.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("lat", buckets=(1.0, 5.0))
        with pytest.raises(
            ValueError, match="bucket boundaries mismatch on merge"
        ):
            dst.merge_snapshot(src.snapshot())

    def test_mismatch_message_names_both_boundaries(self):
        src = MetricsRegistry()
        src.histogram("lat", buckets=(1.0,)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("lat", buckets=(2.0,))
        with pytest.raises(ValueError) as err:
            dst.merge_snapshot(src.snapshot())
        assert "'lat'" in str(err.value)
        assert "(2.0,)" in str(err.value) and "(1.0,)" in str(err.value)

    def test_malformed_counts_raise(self):
        snap = [[
            "lat", [], "histogram",
            {"buckets": [1.0, 2.0], "counts": [1, 2], "sum": 1.0,
             "count": 3},
        ]]
        with pytest.raises(ValueError, match="malformed.*expected 3"):
            MetricsRegistry().merge_snapshot(snap)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            MetricsRegistry().merge_snapshot([["x", [], "summary", 0]])

    def test_valid_merge_accumulates(self):
        src = MetricsRegistry()
        h = src.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        dst.merge_snapshot(src.snapshot())
        merged = dst.histogram("lat", buckets=(1.0, 2.0))
        assert merged.counts == [2, 0, 2]
        assert merged.count == 4
        assert merged.sum == pytest.approx(11.0)
