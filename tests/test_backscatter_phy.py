"""Tests for the backscatter PHY link budget."""

import pytest

from repro.backscatter import (
    BackscatterLink,
    BackscatterTag,
    CarrierSource,
    ambient_wifi_carrier,
    dedicated_cw_carrier,
    tv_tower_carrier,
    zigbee_2_4ghz,
)


class TestCarrierSources:
    def test_presets(self):
        assert ambient_wifi_carrier().frequency_hz == 2.4e9
        assert tv_tower_carrier().duty_cycle == 1.0
        assert dedicated_cw_carrier().name == "cw"

    def test_invalid_duty_cycle(self):
        with pytest.raises(ValueError):
            CarrierSource("x", 0.0, 2.4e9, duty_cycle=0.0)


class TestTag:
    def test_paper_power_order(self):
        tag = BackscatterTag()
        assert tag.power_w == pytest.approx(10e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackscatterTag(reflection_loss_db=-1.0)
        with pytest.raises(ValueError):
            BackscatterTag(bitrate_bps=0.0)


class TestLinkBudget:
    def _link(self, **kw):
        return BackscatterLink(
            carrier=dedicated_cw_carrier(20.0), tag=BackscatterTag(), **kw
        )

    def test_power_decreases_with_either_distance(self):
        link = self._link()
        base = link.received_power_dbm(2.0, 2.0)
        assert link.received_power_dbm(4.0, 2.0) < base
        assert link.received_power_dbm(2.0, 4.0) < base

    def test_reflection_loss_subtracted(self):
        lossy = BackscatterLink(
            dedicated_cw_carrier(20.0), BackscatterTag(reflection_loss_db=20.0)
        )
        clean = BackscatterLink(
            dedicated_cw_carrier(20.0), BackscatterTag(reflection_loss_db=0.0)
        )
        assert (
            clean.received_power_dbm(2.0, 2.0)
            - lossy.received_power_dbm(2.0, 2.0)
        ) == pytest.approx(20.0)

    def test_close_link_decodable(self):
        assert self._link().decodable(1.0, 1.0)

    def test_far_link_not_decodable(self):
        assert not self._link().decodable(100.0, 1000.0)

    def test_per_one_when_undecodable(self):
        assert self._link().packet_error_rate(100.0, 1000.0, 128) == 1.0

    def test_throughput_scales_with_duty_cycle(self):
        bursty = BackscatterLink(ambient_wifi_carrier(20.0, 0.25), BackscatterTag())
        continuous = BackscatterLink(dedicated_cw_carrier(20.0), BackscatterTag())
        t_b = bursty.effective_throughput_bps(1.0, 1.0, 128)
        t_c = continuous.effective_throughput_bps(1.0, 1.0, 128)
        assert t_b == pytest.approx(0.25 * t_c, rel=1e-6)

    def test_max_range_meters_scale(self):
        """Paper: recent RFID/backscatter reaches several meters to
        tens of meters."""
        rng = zigbee_2_4ghz().max_range_m(carrier_to_tag_m=1.0)
        assert 1.0 < rng < 200.0

    def test_max_range_zero_when_hopeless(self):
        link = self._link()
        assert link.max_range_m(carrier_to_tag_m=1e6) == 0.0

    def test_max_range_is_decodability_boundary(self):
        link = self._link()
        r = link.max_range_m(1.0)
        if 0.0 < r < 1000.0:
            assert link.decodable(1.0, r * 0.99)
            assert not link.decodable(1.0, r * 1.01)

    def test_stronger_carrier_longer_range(self):
        weak = BackscatterLink(dedicated_cw_carrier(10.0), BackscatterTag())
        strong = BackscatterLink(dedicated_cw_carrier(30.0), BackscatterTag())
        assert strong.max_range_m(1.0) > weak.max_range_m(1.0)
