"""End-to-end socket tests for the serving HTTP layer.

A real :class:`~repro.serve.http.ServeApp` on an ephemeral port
(``port=0`` — no fixed-port flakes), driven by the stdlib-only
:class:`~repro.serve.loadgen.HttpClient`.  The core pins: logits
served over HTTP are **byte-identical** to a direct
``DistributedExecutor`` forward on the same scenario/seed (JSON's
shortest-repr float round-trip is exact for float64), and the
``/metrics`` endpoint reconciles exactly with the requests sent.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    ServeApp,
    TenantConfig,
    build_tenant,
)
from repro.serve.loadgen import HttpClient, run_load

SEED = 7


def run(coro):
    return asyncio.run(coro)


def make_app(max_batch=4, max_delay=0.002, max_pending=64):
    app = ServeApp(BatchPolicy(
        max_batch=max_batch, max_delay=max_delay, max_pending=max_pending,
    ))
    for name in ("fall", "hvac"):
        app.add_tenant(TenantConfig(
            name=name, scenario=name, seed=SEED, train_epochs=0,
        ))
    return app


async def with_app(test, **app_kwargs):
    """Start an app on an ephemeral port, run ``test(app, client)``,
    always shut down."""
    app = make_app(**app_kwargs)
    await app.start(port=0)
    client = HttpClient("127.0.0.1", app.port)
    try:
        return await test(app, client)
    finally:
        await client.close()
        await app.shutdown()


class TestRecognizeParity:
    def test_served_logits_byte_identical_to_direct_forward(self):
        """The tentpole pin: recognition over HTTP returns the exact
        bytes a direct executor forward produces for the same
        scenario/seed — batching, JSON, and sockets change nothing."""
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(5, 1, 8, 8))

        async def test(app, client):
            responses = []
            for i in range(xs.shape[0]):
                status, body = await client.post_json(
                    "/v1/recognize",
                    {"tenant": "fall", "input": xs[i].tolist()},
                )
                assert status == 200
                responses.append(body)
            # An independently built tenant of the same config must
            # produce the served bytes from scratch.
            fresh = build_tenant(TenantConfig(
                name="fall", scenario="fall", seed=SEED, train_epochs=0,
            ))
            direct = fresh.direct_forward(xs)
            for i, body in enumerate(responses):
                got = np.asarray(body["logits"], dtype=np.float64)
                assert got.tobytes() == direct[i].tobytes()
                assert body["pred"] == int(direct[i].argmax())
                assert body["served_by"] == "plan"

        run(with_app(test))

    def test_parity_holds_under_concurrent_batched_load(self):
        rng = np.random.default_rng(1)
        xs = rng.normal(size=(12, 1, 10, 10))
        payloads = [
            {"tenant": "hvac", "input": xs[i].tolist()}
            for i in range(xs.shape[0])
        ]

        async def test(app, client):
            report = await run_load(
                "127.0.0.1", app.port, payloads, concurrency=4
            )
            assert set(report.statuses) == {200}
            direct = app.pool.require("hvac").direct_forward(xs)
            batch_sizes = set()
            for i, body in enumerate(report.responses):
                got = np.asarray(body["logits"], dtype=np.float64)
                assert got.tobytes() == direct[i].tobytes()
                batch_sizes.add(body["batch_size"])
            return batch_sizes

        batch_sizes = run(with_app(test))
        assert batch_sizes - {1, 2, 3, 4} == set()

    def test_single_channel_input_accepts_2d_payload(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 8, 8))

        async def test(app, client):
            status, with_channel = await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            status2, without = await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x[0].tolist()}
            )
            assert status == status2 == 200
            assert with_channel["logits"] == without["logits"]

        run(with_app(test))


class TestMetricsReconciliation:
    def test_metrics_totals_match_requests_sent(self):
        """``serve.requests`` == requests sent == ``serve.batch_size``
        histogram mass, straight from the JSON metrics endpoint."""
        rng = np.random.default_rng(3)
        n = 9
        payloads = [
            {"tenant": ("fall", "hvac")[i % 2],
             "input": rng.normal(
                 size=(1, 8, 8) if i % 2 == 0 else (1, 10, 10)
             ).tolist()}
            for i in range(n)
        ]

        async def test(app, client):
            report = await run_load(
                "127.0.0.1", app.port, payloads, concurrency=3
            )
            assert set(report.statuses) == {200}
            status, snapshot = await client.get_json("/metrics?format=json")
            assert status == 200
            requests_total = sum(
                payload for name, __, kind, payload in snapshot
                if name == "serve.requests"
            )
            hist_mass = sum(
                payload["sum"] for name, __, kind, payload in snapshot
                if name == "serve.batch_size"
            )
            hist_count_mass = sum(
                batches * 1 for name, __, kind, payload in snapshot
                if name == "serve.batches" for batches in [payload]
            )
            assert requests_total == float(n)
            assert hist_mass == float(n)
            assert hist_count_mass >= 1
            # The text exposition carries the same totals.
            status, __, text = await client.request("GET", "/metrics")
            assert status == 200
            lines = text.decode().splitlines()
            served = sum(
                float(line.rsplit(" ", 1)[1]) for line in lines
                if line.startswith("serve_requests{")
            )
            assert served == float(n)

        run(with_app(test))

    def test_healthz_reports_tenants_and_served_counts(self):
        async def test(app, client):
            status, health = await client.get_json("/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert sorted(health["tenants"]) == ["fall", "hvac"]
            assert health["tenants"]["fall"]["fault"] is None
            assert health["policy"]["max_batch"] == 4
            x = np.zeros((1, 8, 8))
            await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            __, health = await client.get_json("/healthz")
            assert health["tenants"]["fall"]["served"] == 1
            assert health["requests_handled"] >= 1

        run(with_app(test))

    def test_traces_expose_serve_batch_spans(self):
        async def test(app, client):
            x = np.zeros((1, 8, 8))
            await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            status, __, body = await client.request("GET", "/traces")
            assert status == 200
            events = [json.loads(line)
                      for line in body.decode().splitlines()]
            names = {event["name"] for event in events}
            assert "serve.batch" in names
            # The executor's own spans nest under the serving span.
            assert "exec.plan" in names or "exec.forward" in names

        run(with_app(test))


class TestErrorPaths:
    def test_unknown_tenant_404(self):
        async def test(app, client):
            status, body = await client.post_json(
                "/v1/recognize",
                {"tenant": "nope", "input": np.zeros((1, 8, 8)).tolist()},
            )
            assert status == 404
            assert body["error"] == "unknown-tenant"

        run(with_app(test))

    def test_unknown_route_404_and_wrong_method_405(self):
        async def test(app, client):
            assert (await client.request("GET", "/zzz"))[0] == 404
            assert (await client.request("GET", "/v1/recognize"))[0] == 405
            assert (await client.request("POST", "/metrics"))[0] == 405

        run(with_app(test))

    def test_malformed_json_and_shape_400(self):
        async def test(app, client):
            status, __, __ = await client.request(
                "POST", "/v1/recognize", b"{not json"
            )
            assert status == 400
            status, body = await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": [[1, 2]]}
            )
            assert status == 400
            assert body["error"] == "input-shape"
            status, body = await client.post_json(
                "/v1/recognize", {"input": np.zeros((1, 8, 8)).tolist()}
            )
            assert status == 400
            assert body["error"] == "missing-tenant"
            status, body = await client.post_json(
                "/v1/recognize", {"tenant": "fall"}
            )
            assert status == 400
            assert body["error"] == "missing-input"

        run(with_app(test))

    def test_draining_app_responds_503(self):
        async def test(app, client):
            app.dispatcher.drain()
            status, body = await client.post_json(
                "/v1/recognize",
                {"tenant": "fall", "input": np.zeros((1, 8, 8)).tolist()},
            )
            assert status == 503
            assert body["error"] == "overloaded"
            status, health = await client.get_json("/healthz")
            assert health["status"] == "draining"

        run(with_app(test))

    def test_connection_close_honored(self):
        async def test(app, client):
            status, headers, __ = await client.request("GET", "/healthz")
            assert headers["connection"] == "keep-alive"
            # Manual request with Connection: close.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.port
            )
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\nContent-Length: 0\r\n\r\n"
            )
            await writer.drain()
            data = await reader.read()  # until server closes
            writer.close()
            assert b"200 OK" in data
            assert b"Connection: close" in data

        run(with_app(test))


class TestHotSwapEndpoint:
    def test_live_swap_changes_served_bytes(self):
        """POST /v1/tenants installs a new tenant under the name; the
        served logits flip to the new seed's exact bytes."""
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 8, 8))

        async def test(app, client):
            status, before = await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            assert status == 200
            status, swapped = await client.post_json(
                "/v1/tenants",
                {"name": "fall", "scenario": "fall", "seed": 99},
            )
            assert status == 201
            assert swapped["seed"] == 99
            status, after = await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            assert status == 200
            fresh = build_tenant(TenantConfig(
                name="fall", scenario="fall", seed=99, train_epochs=0,
            ))
            expected = fresh.direct_forward(x[np.newaxis])[0]
            got = np.asarray(after["logits"], dtype=np.float64)
            assert got.tobytes() == expected.tobytes()
            assert before["logits"] != after["logits"]

        run(with_app(test))

    def test_swap_rejects_unknown_scenario(self):
        async def test(app, client):
            status, body = await client.post_json(
                "/v1/tenants", {"name": "x", "scenario": "nope"}
            )
            assert status == 400
            assert body["error"] == "bad-tenant-config"
            status, listing = await client.get_json("/v1/tenants")
            assert status == 200
            assert sorted(listing) == ["fall", "hvac"]

        run(with_app(test))


class TestBackpressureOverHttp:
    def test_full_lane_yields_503(self):
        """With a tiny lane bound and a long window, concurrent
        requests beyond max_pending are rejected as 503 — and the
        accepted ones still complete."""
        rng = np.random.default_rng(5)
        payloads = [
            {"tenant": "fall", "input": rng.normal(size=(1, 8, 8)).tolist()}
            for __ in range(6)
        ]

        async def test(app, client):
            report = await run_load(
                "127.0.0.1", app.port, payloads, concurrency=6
            )
            return report

        report = run(with_app(
            test, max_batch=64, max_delay=0.05, max_pending=2,
        ))
        assert 503 in report.statuses
        assert 200 in report.statuses
        ok = [body for status, body in zip(report.statuses, report.responses)
              if status == 200]
        assert all(len(body["logits"]) == 2 for body in ok)


class TestTimelineAndDashboard:
    def test_timeline_jsonl_endpoint(self):
        async def test(app, client):
            x = np.zeros((1, 8, 8))
            await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            # The GET itself gives the recorder a sample_if_due kick,
            # so at least one tick exists even before the timer fires.
            status, headers, body = await client.request(
                "GET", "/timeline"
            )
            assert status == 200
            assert "ndjson" in headers.get("content-type", "")
            lines = body.decode().splitlines()
            assert lines
            doc = json.loads(lines[-1])
            assert set(doc) == {"i", "t", "series"}
            assert any(k.startswith("serve.requests") for k in doc["series"])

        run(with_app(test))

    def test_timeline_json_document(self):
        async def test(app, client):
            x = np.zeros((1, 8, 8))
            await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            status, doc = await client.get_json("/timeline?format=json")
            assert status == 200
            assert doc["interval"] == app.recorder.interval
            assert doc["n_samples"] >= 1
            assert doc["dropped"] == 0
            assert "p99-latency" in doc["rules"]
            assert len(doc["samples"]) == doc["n_samples"]
            assert doc["alerts"] == []
            assert doc["digests"]["timeline"] == app.recorder.digest()
            assert doc["digests"]["alerts"] == app.watchdog.digest()

        run(with_app(test))

    def test_dashboard_serves_html(self):
        async def test(app, client):
            status, headers, body = await client.request(
                "GET", "/dashboard"
            )
            assert status == 200
            assert headers.get("content-type", "").startswith("text/html")
            page = body.decode()
            assert "<!doctype html>" in page.lower()
            # The page is self-contained and polls the app's own
            # endpoints -- no external assets.
            assert "/timeline?format=json" in page
            assert "/healthz" in page
            assert "src=" not in page and "href=" not in page

        run(with_app(test))

    def test_healthz_includes_alert_summary(self):
        async def test(app, client):
            status, health = await client.get_json("/healthz")
            assert status == 200
            assert health["alerts"] == {
                "active": [], "fired": 0, "critical": 0,
            }

        run(with_app(test))


class TestPrometheusExposition:
    def test_label_values_are_escaped(self):
        async def test(app, client):
            app.telemetry.metrics.counter(
                "weird", path='a\\b', msg='say "hi"\nnow'
            ).inc()
            status, __, body = await client.request("GET", "/metrics")
            assert status == 200
            line = next(
                line for line in body.decode().splitlines()
                if line.startswith("weird{")
            )
            assert 'msg="say \\"hi\\"\\nnow"' in line
            assert 'path="a\\\\b"' in line
            assert "\n" not in line  # the newline never leaks raw

        run(with_app(test))

    def test_histogram_le_inf_label(self):
        async def test(app, client):
            x = np.zeros((1, 8, 8))
            await client.post_json(
                "/v1/recognize", {"tenant": "fall", "input": x.tolist()}
            )
            status, __, body = await client.request("GET", "/metrics")
            assert status == 200
            assert 'le="+Inf"' in body.decode()

        run(with_app(test))
