"""Tests for distributed (exact vs. local) backpropagation."""

import numpy as np
import pytest

from repro.core import (
    MicroDeepTrainer,
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
)
from repro.nn import (
    Conv2D,
    CrossEntropyLoss,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
)
from repro.wsn import GridTopology

RNG = np.random.default_rng(23)


def build_model(seed=0):
    model = Sequential([
        Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(8), ReLU(), Dense(2),
    ])
    model.build((1, 10, 10), np.random.default_rng(seed))
    return model


def toy_task(n=120, rng=None):
    """Binary task: is the bright blob in the top or bottom half?"""
    rng = rng or np.random.default_rng(0)
    x = rng.normal(0.0, 0.3, size=(n, 1, 10, 10))
    y = rng.integers(0, 2, size=n)
    for i in range(n):
        cy = rng.integers(0, 4) if y[i] == 0 else rng.integers(6, 10)
        cx = rng.integers(2, 8)
        x[i, 0, max(0, cy - 1) : cy + 2, max(0, cx - 1) : cx + 2] += 2.0
    return x, y


class TestExactModeEquivalence:
    def test_exact_gradients_match_standard_backward(self):
        """Exact distributed mode must be bit-identical to
        centralized backprop."""
        model_a = build_model()
        model_b = build_model()
        graph_b = UnitGraph(model_b)
        topo = GridTopology(4, 4)
        placement = grid_correspondence_assignment(graph_b, topo)
        trainer = MicroDeepTrainer(
            graph_b, placement, SGD(lr=0.1), update_mode="exact"
        )
        x = RNG.normal(size=(4, 1, 10, 10))
        y = np.array([0, 1, 0, 1])
        loss = CrossEntropyLoss()

        model_a.zero_grads()
        out_a = model_a.forward(x, training=True)
        loss.forward(out_a, y)
        model_a.backward(loss.backward())

        model_b.zero_grads()
        out_b = model_b.forward(x, training=True)
        loss_b = CrossEntropyLoss()
        loss_b.forward(out_b, y)
        trainer._backward(loss_b.backward())

        for (sa, pa, ga), (sb, pb, gb) in zip(
            model_a.param_slots(), model_b.param_slots()
        ):
            for name in pa:
                np.testing.assert_allclose(ga[name], gb[name], err_msg=name)


class TestLocalMode:
    def _trainer(self, mode, node_grid=(4, 4), seed=0):
        model = build_model(seed)
        graph = UnitGraph(model)
        topo = GridTopology(*node_grid)
        placement = grid_correspondence_assignment(graph, topo)
        return MicroDeepTrainer(graph, placement, SGD(lr=0.05), update_mode=mode)

    def test_local_top_dense_grads_exact(self):
        """The final dense layer's gradients are exact even in local
        mode (no truncation above it)."""
        t_local = self._trainer("local", seed=1)
        t_exact = self._trainer("exact", seed=1)
        x = RNG.normal(size=(4, 1, 10, 10))
        y = np.array([1, 0, 1, 0])
        for t in (t_local, t_exact):
            t.model.zero_grads()
            logits = t.model.forward(x, training=True)
            t.loss.forward(logits, y)
            t._backward(t.loss.backward())
        # last layer is index 6 -> final param slot
        ga = t_local.model.param_slots()[-1][2]
        gb = t_exact.model.param_slots()[-1][2]
        for name in ga:
            np.testing.assert_allclose(ga[name], gb[name], err_msg=name)

    def test_local_lower_grads_truncated(self):
        """Conv gradients differ under local mode — the sacrifice the
        paper describes."""
        t_local = self._trainer("local", seed=2)
        t_exact = self._trainer("exact", seed=2)
        x = RNG.normal(size=(4, 1, 10, 10))
        y = np.array([1, 0, 1, 0])
        for t in (t_local, t_exact):
            t.model.zero_grads()
            logits = t.model.forward(x, training=True)
            t.loss.forward(logits, y)
            t._backward(t.loss.backward())
        conv_local = t_local.model.param_slots()[0][2]["W"]
        conv_exact = t_exact.model.param_slots()[0][2]["W"]
        assert not np.allclose(conv_local, conv_exact)

    def test_single_node_local_equals_exact(self):
        """With one node nothing is truncated: local == exact."""
        t_local = self._trainer("local", node_grid=(1, 1), seed=3)
        t_exact = self._trainer("exact", node_grid=(1, 1), seed=3)
        x = RNG.normal(size=(3, 1, 10, 10))
        y = np.array([0, 1, 1])
        for t in (t_local, t_exact):
            t.model.zero_grads()
            logits = t.model.forward(x, training=True)
            t.loss.forward(logits, y)
            t._backward(t.loss.backward())
        for (sa, pa, ga), (sb, pb, gb) in zip(
            t_local.model.param_slots(), t_exact.model.param_slots()
        ):
            for name in pa:
                np.testing.assert_allclose(
                    ga[name], gb[name], atol=1e-12, err_msg=name
                )

    def test_invalid_mode(self):
        model = build_model()
        graph = UnitGraph(model)
        topo = GridTopology(2, 2)
        placement = grid_correspondence_assignment(graph, topo)
        with pytest.raises(ValueError):
            MicroDeepTrainer(graph, placement, SGD(lr=0.1), update_mode="turbo")

    def test_invalid_backward_impl(self):
        model = build_model()
        graph = UnitGraph(model)
        placement = grid_correspondence_assignment(graph, GridTopology(2, 2))
        with pytest.raises(ValueError, match="backward_impl"):
            MicroDeepTrainer(
                graph, placement, SGD(lr=0.1), backward_impl="looped"
            )

    def test_masks_built_exactly_once_across_fits(self, monkeypatch):
        """Both mask forms are construction-time artifacts: repeated
        ``fit``/``evaluate`` calls must never rebuild them."""
        calls = {"masks": 0, "stacked": 0}
        orig_masks = MicroDeepTrainer._build_masks
        orig_stacked = MicroDeepTrainer._build_stacked

        def counting_masks(self):
            calls["masks"] += 1
            return orig_masks(self)

        def counting_stacked(self):
            calls["stacked"] += 1
            return orig_stacked(self)

        monkeypatch.setattr(MicroDeepTrainer, "_build_masks", counting_masks)
        monkeypatch.setattr(
            MicroDeepTrainer, "_build_stacked", counting_stacked
        )
        trainer = self._trainer("local", seed=4)
        rng = np.random.default_rng(11)
        x = rng.normal(size=(12, 1, 10, 10))
        y = rng.integers(0, 2, size=12)
        trainer.fit(x, y, epochs=2, batch_size=4,
                    rng=np.random.default_rng(0))
        trainer.fit(x, y, epochs=1, batch_size=6,
                    rng=np.random.default_rng(1))
        trainer.evaluate(x, y)
        assert calls == {"masks": 1, "stacked": 1}


class TestEmptyDataset:
    def _trainer(self):
        model = build_model(seed=12)
        graph = UnitGraph(model)
        placement = grid_correspondence_assignment(graph, GridTopology(2, 2))
        return MicroDeepTrainer(graph, placement, SGD(lr=0.05))

    def test_fit_empty_dataset_raises_value_error(self):
        """An empty dataset must fail loudly up front, not as a
        ZeroDivisionError in the epoch averaging (mirrors the
        repro.nn.Trainer fix)."""
        trainer = self._trainer()
        x = np.empty((0, 1, 10, 10))
        y = np.empty((0,), dtype=int)
        with pytest.raises(ValueError, match="empty dataset"):
            trainer.fit(x, y, epochs=1, batch_size=8,
                        rng=np.random.default_rng(0))

    def test_evaluate_empty_dataset_raises_value_error(self):
        trainer = self._trainer()
        with pytest.raises(ValueError, match="empty dataset"):
            trainer.evaluate(np.empty((0, 1, 10, 10)), np.empty((0,)))


class TestTrainingConvergence:
    @pytest.mark.parametrize("mode", ["exact", "local"])
    def test_learns_toy_task(self, mode):
        rng = np.random.default_rng(4)
        x, y = toy_task(160, rng)
        model = build_model(seed=5)
        graph = UnitGraph(model)
        topo = GridTopology(3, 3)
        placement = grid_correspondence_assignment(graph, topo)
        trainer = MicroDeepTrainer(
            graph, placement, SGD(lr=0.1, momentum=0.9), update_mode=mode
        )
        history = trainer.fit(x, y, epochs=15, batch_size=16, rng=rng)
        assert history.train_accuracy[-1] > 0.85

    def test_exact_at_least_as_good_on_average(self):
        """The paper: local update sacrifices *some* accuracy.  On a
        small task the gap should be modest and exact shouldn't lose
        badly."""
        rng = np.random.default_rng(6)
        x, y = toy_task(200, rng)
        x_tr, y_tr = x[:150], y[:150]
        x_te, y_te = x[150:], y[150:]
        accs = {}
        for mode in ("exact", "local"):
            model = build_model(seed=7)
            graph = UnitGraph(model)
            topo = GridTopology(3, 3)
            placement = grid_correspondence_assignment(graph, topo)
            trainer = MicroDeepTrainer(
                graph, placement, SGD(lr=0.1, momentum=0.9), update_mode=mode
            )
            trainer.fit(x_tr, y_tr, epochs=20, batch_size=16,
                        rng=np.random.default_rng(8))
            __, accs[mode] = trainer.evaluate(x_te, y_te)
        assert accs["exact"] >= accs["local"] - 0.1

    def test_early_stopping_restores_best(self):
        rng = np.random.default_rng(9)
        x, y = toy_task(120, rng)
        model = build_model(seed=10)
        graph = UnitGraph(model)
        topo = GridTopology(2, 2)
        placement = centralized_assignment(graph, topo)
        trainer = MicroDeepTrainer(graph, placement, SGD(lr=0.1),
                                   update_mode="local")
        history = trainer.fit(
            x[:80], y[:80], epochs=30, batch_size=16, rng=rng,
            x_val=x[80:], y_val=y[80:], patience=3,
        )
        __, final_acc = trainer.evaluate(x[80:], y[80:])
        assert final_acc == pytest.approx(history.best_val_accuracy, abs=1e-9)
