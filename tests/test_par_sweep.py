"""Unit tests for the deterministic process-parallel sweep engine.

The contract under test (``repro.par``): a parallel sweep merges to a
report byte-identical to the serial run — same RNG substreams, same
telemetry, same canonical serialization — whatever the worker count
or chunking.  Pool tests here use the cheap ``rng`` diagnostic task so
the spawn cost (~0.5 s on this box) stays affordable in tier 1.
"""

import json

import numpy as np
import pytest

from repro.par import (
    PointResult,
    SweepPoint,
    SweepReport,
    available_tasks,
    default_chunk_size,
    make_points,
    resolve_task,
    run_sweep,
    strip_wall_fields,
    task_ref,
)
from repro.par.tasks import rng_task


class TestMakePoints:
    def test_cartesian_product_seeds_slowest(self):
        points = make_points(seeds=[7, 8], grid={"a": [1, 2], "b": ["x"]})
        assert len(points) == 4
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert [p.seed for p in points] == [7, 7, 8, 8]
        assert [p.config for p in points] == [
            {"a": 1, "b": "x"},
            {"a": 2, "b": "x"},
            {"a": 1, "b": "x"},
            {"a": 2, "b": "x"},
        ]

    def test_base_config_merged_under_grid(self):
        points = make_points(
            seeds=[0], grid={"a": [1]}, base_config={"a": 9, "c": 3}
        )
        assert points[0].config == {"a": 1, "c": 3}

    def test_no_seeds_yields_single_none_seed(self):
        points = make_points(grid={"a": [1, 2]})
        assert [p.seed for p in points] == [None, None]

    def test_empty_everything_is_one_point(self):
        points = make_points()
        assert len(points) == 1
        assert points[0] == SweepPoint(index=0, seed=None, config={})


class TestTaskResolution:
    def test_registry_name_resolves(self):
        assert resolve_task("rng") is rng_task

    def test_unknown_registry_name_raises(self):
        with pytest.raises(ValueError, match="unknown sweep task"):
            resolve_task("no-such-task")

    def test_module_qualname_resolves(self):
        fn = resolve_task("repro.par.tasks:rng_task")
        assert fn is rng_task

    def test_non_callable_reference_raises(self):
        with pytest.raises(ValueError, match="not callable"):
            resolve_task("repro.par.tasks:REGISTRY")

    def test_callable_roundtrips_to_ref(self):
        assert task_ref(rng_task) == "repro.par.tasks:rng_task"

    def test_nested_function_rejected_before_pool(self):
        def nested(point, rng, shared):  # pragma: no cover - never runs
            return None

        with pytest.raises(ValueError, match="top-level function"):
            task_ref(nested)

    def test_lambda_rejected_before_pool(self):
        with pytest.raises(ValueError, match="top-level function"):
            task_ref(lambda point, rng, shared: None)

    def test_available_tasks_lists_registry(self):
        tasks = available_tasks()
        assert "chaos" in tasks and "rng" in tasks
        assert tasks["rng"].startswith("Diagnostic")


class TestChunking:
    def test_four_waves_per_worker(self):
        assert default_chunk_size(100, 4) == 7
        assert default_chunk_size(8, 2) == 1

    def test_never_below_one(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 2) == 1


class TestRunSweepValidation:
    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_sweep("rng", [SweepPoint(0, 0)], jobs=0)

    def test_duplicate_indices_rejected(self):
        points = [SweepPoint(0, 0), SweepPoint(0, 1)]
        with pytest.raises(ValueError, match="must be unique"):
            run_sweep("rng", points)

    def test_task_error_propagates_serial(self):
        with pytest.raises(ValueError, match="unknown example"):
            run_sweep(
                "example",
                [SweepPoint(0, None, {"name": "no-such-example"})],
                jobs=1,
            )

    def test_task_error_propagates_from_pool(self):
        points = [
            SweepPoint(i, None, {"name": "no-such-example"})
            for i in range(2)
        ]
        with pytest.raises(ValueError, match="unknown example"):
            run_sweep("example", points, jobs=2)


class TestDeterminism:
    def test_substreams_keyed_by_index_not_jobs(self):
        points = make_points(seeds=[0, 1, 2], grid={"k": [1, 2]})
        serial = run_sweep("rng", points, jobs=1, root_seed=42)
        draws = [r.value["draw"] for r in serial.results]
        # Re-running serially reproduces the exact draws.
        again = run_sweep("rng", points, jobs=1, root_seed=42)
        assert [r.value["draw"] for r in again.results] == draws
        # Each point's draw matches its independently spawned substream.
        children = np.random.SeedSequence(42).spawn(len(points))
        expected = [
            float(np.random.default_rng(child).random())
            for child in children
        ]
        assert draws == expected

    def test_root_seed_changes_draws(self):
        points = make_points(seeds=[0], grid={"k": [1, 2]})
        a = run_sweep("rng", points, jobs=1, root_seed=0)
        b = run_sweep("rng", points, jobs=1, root_seed=1)
        assert a.values() != b.values()

    @pytest.mark.parametrize("chunk_size", [1, 3])
    def test_parallel_byte_identical_to_serial(self, chunk_size):
        points = make_points(seeds=[0, 1, 2], grid={"k": [1, 2]})
        serial = run_sweep("rng", points, jobs=1, root_seed=7)
        parallel = run_sweep(
            "rng", points, jobs=2, root_seed=7, chunk_size=chunk_size
        )
        assert parallel.canonical_json() == serial.canonical_json()
        assert parallel.digest() == serial.digest()

    def test_results_sorted_by_index(self):
        points = make_points(seeds=[0, 1], grid={"k": [1, 2]})
        report = run_sweep("rng", points, jobs=2, root_seed=0)
        assert [r.index for r in report.results] == [0, 1, 2, 3]


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self):
        points = make_points(seeds=[0, 1])
        return run_sweep("rng", points, jobs=1, root_seed=0)

    def test_canonical_dict_has_no_wall_fields(self, report):
        doc = report.to_dict()
        assert "wall" not in doc
        for point in doc["points"]:
            assert "wall_s" not in point
            assert "worker" not in point

    def test_wall_fields_segregated(self, report):
        doc = report.to_dict(include_wall=True)
        assert doc["wall"]["jobs"] == 1
        assert doc["wall"]["elapsed_s"] >= 0
        for point in doc["points"]:
            assert point["wall_s"] >= 0
            assert point["worker"].startswith("pid-")

    def test_strip_wall_fields_recovers_canonical(self, report):
        full = report.to_dict(include_wall=True)
        assert strip_wall_fields(full) == report.to_dict()

    def test_canonical_json_is_stable(self, report):
        text = report.canonical_json()
        assert json.loads(text) == report.to_dict()
        assert report.canonical_json() == text

    def test_schema_fields(self, report):
        doc = report.to_dict()
        assert doc["schema_version"] == 1
        assert doc["suite"] == "repro-sweep"
        assert doc["task"] == "rng"
        assert doc["n_points"] == 2
        assert len(doc["merged"]["trace_digest"]) == 64


class TestTelemetryMerge:
    def test_merged_metrics_fold_is_stable(self):
        points = make_points(seeds=[0, 1, 2])
        serial = run_sweep("rng", points, jobs=1, root_seed=0)
        merged = serial.merged_metrics()
        assert merged.snapshot() == serial.merged_metrics().snapshot()

    def test_merge_snapshots_order_independent_for_counters(self):
        from repro.obs import MetricsRegistry, merge_snapshots

        a = MetricsRegistry()
        a.counter("hits").inc(2)
        b = MetricsRegistry()
        b.counter("hits").inc(3)
        ab = merge_snapshots([a.snapshot(), b.snapshot()])
        ba = merge_snapshots([b.snapshot(), a.snapshot()])
        assert ab.snapshot() == ba.snapshot()

    def test_merge_digests_depends_on_order(self):
        from repro.obs import merge_digests

        assert merge_digests(["a", "b"]) != merge_digests(["b", "a"])
        assert merge_digests(["a", "b"]) == merge_digests(["a", "b"])

    def test_telemetry_off_leaves_empty_snapshots(self):
        points = make_points(seeds=[0])
        report = run_sweep("rng", points, jobs=1, telemetry=False)
        assert report.results[0].metrics == []
        assert report.results[0].trace_digest == ""


class TestSharedPayload:
    def test_shared_reaches_workers(self):
        points = [SweepPoint(i, i) for i in range(3)]
        report = run_sweep(
            "repro.par.tasks:_echo_shared_task",
            points,
            jobs=2,
            shared={"token": "abc"},
        )
        assert all(r.value == {"token": "abc"} for r in report.results)

    def test_point_result_roundtrip(self):
        r = PointResult(
            index=0, seed=1, config={}, value=2, metrics=[],
            trace_digest="d", trace_events=0, wall_s=0.1, worker="pid-1",
        )
        assert r.to_dict() == {
            "index": 0, "seed": 1, "config": {}, "value": 2,
            "metrics": [], "trace_digest": "d", "trace_events": 0,
        }
