"""Tests for unit-graph extraction and assignment strategies."""

import numpy as np
import pytest

from repro.core import (
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.wsn import GridTopology

RNG = np.random.default_rng(3)


def small_model(input_shape=(1, 8, 8)):
    model = Sequential([
        Conv2D(4, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(8), ReLU(), Dense(2),
    ])
    model.build(input_shape, np.random.default_rng(0))
    return model


class TestUnitGraph:
    def test_layer_kinds(self):
        graph = UnitGraph(small_model())
        kinds = [l.kind for l in graph.layers]
        assert kinds == [
            "spatial", "spatial", "spatial", "flatten", "flat", "flat", "flat",
        ]

    def test_grids_follow_shapes(self):
        graph = UnitGraph(small_model())
        conv = graph.layers[0]
        assert conv.in_hw == (8, 8)
        assert conv.out_hw == (6, 6)
        assert conv.in_values == 1
        assert conv.out_values == 4
        pool = graph.layers[2]
        assert pool.out_hw == (3, 3)

    def test_flat_layer_units(self):
        graph = UnitGraph(small_model())
        dense = graph.layers[4]
        assert dense.n_units == 8
        assert dense.in_units == 4 * 3 * 3

    def test_total_units(self):
        graph = UnitGraph(small_model())
        # conv 36 + relu 36 + pool 9 + dense 8 + relu 8 + dense 2
        assert graph.total_units() == 36 + 36 + 9 + 8 + 8 + 2

    def test_requires_built_model(self):
        model = Sequential([Conv2D(2, 3)])
        with pytest.raises(ValueError):
            UnitGraph(model)

    def test_requires_spatial_input(self):
        model = Sequential([Dense(4)])
        model.build((10,), RNG)
        with pytest.raises(ValueError):
            UnitGraph(model)

    def test_spatial_deps_populated(self):
        graph = UnitGraph(small_model())
        conv = graph.layers[0]
        assert conv.deps[(0, 0)] == [
            (y, x) for y in range(3) for x in range(3)
        ]


class TestAssignments:
    def _setup(self):
        model = small_model()
        graph = UnitGraph(model)
        topo = GridTopology(4, 4)
        return graph, topo

    def test_all_units_assigned_every_strategy(self):
        graph, topo = self._setup()
        for placement in [
            grid_correspondence_assignment(graph, topo),
            centralized_assignment(graph, topo),
            round_robin_assignment(graph, topo),
            random_assignment(graph, topo, RNG),
        ]:
            assert len(placement.unit_node) == graph.total_units()
            assert all(n in topo.nodes for n in placement.unit_node.values())

    def test_input_cells_all_owned(self):
        graph, topo = self._setup()
        placement = grid_correspondence_assignment(graph, topo)
        assert len(placement.input_node) == 64
        corner = placement.input_node[(0, 0)]
        assert corner == topo.node_at(0, 0).node_id
        far = placement.input_node[(7, 7)]
        assert far == topo.node_at(3, 3).node_id

    def test_centralized_puts_units_on_sink(self):
        graph, topo = self._setup()
        placement = centralized_assignment(graph, topo, sink=5)
        assert set(placement.unit_node.values()) == {5}

    def test_centralized_bad_sink(self):
        graph, topo = self._setup()
        with pytest.raises(KeyError):
            centralized_assignment(graph, topo, sink=999)

    def test_grid_correspondence_balances_units(self):
        graph, topo = self._setup()
        placement = grid_correspondence_assignment(graph, topo)
        counts = placement.units_per_node()
        # Every node hosts something and the spread is moderate.
        assert len(counts) == len(topo)
        assert max(counts.values()) <= 4 * (graph.total_units() // len(topo) + 1)

    def test_round_robin_exactly_balances(self):
        graph, topo = self._setup()
        placement = round_robin_assignment(graph, topo)
        counts = placement.units_per_node()
        # Elementwise co-location perturbs pure round-robin, but the
        # non-elementwise units are dealt evenly.
        assert max(counts.values()) - min(counts.values()) <= graph.total_units() // 2

    def test_elementwise_colocated_with_producer(self):
        graph, topo = self._setup()
        for placement in [
            grid_correspondence_assignment(graph, topo),
            round_robin_assignment(graph, topo),
            random_assignment(graph, topo, RNG),
        ]:
            # spatial ReLU (layer 1) follows conv (layer 0)
            for pos in graph.layers[1].output_positions():
                assert placement.node_of(1, pos) == placement.node_of(0, pos)
            # flat ReLU (layer 5) follows dense (layer 4)
            for unit in graph.layers[5].output_positions():
                assert placement.node_of(5, unit) == placement.node_of(4, unit)

    def test_spatial_units_near_their_coordinates(self):
        graph, topo = self._setup()
        placement = grid_correspondence_assignment(graph, topo)
        conv = graph.layers[0]  # 6x6 grid onto 4x4 nodes
        assert placement.node_of(0, (0, 0)) == topo.node_at(0, 0).node_id
        assert placement.node_of(0, (5, 5)) == topo.node_at(3, 3).node_id

    def test_random_assignment_deterministic_with_seed(self):
        graph, topo = self._setup()
        p1 = random_assignment(graph, topo, np.random.default_rng(7))
        p2 = random_assignment(graph, topo, np.random.default_rng(7))
        assert p1.unit_node == p2.unit_node
