"""Parity: the vectorized distributed ``"local"`` backward is
behavior-identical to the retained per-node reference loop — same
gradients, same weights over epochs, same fault-skip callbacks in the
same order — plus the AST lint that keeps the per-node Python loop
from quietly reappearing in the vectorized path.

The one sanctioned numeric slack: conv parameter gradients may differ
at the ulp level because the GEMM grouping differs (the reference sums
per-node ``col.T @ G_i`` products; the vectorized path runs one GEMM
on the node-collapsed gradient).  Input gradients and dense parameter
gradients are asserted byte-identical; conv parameters get a pinned
1e-12 tolerance, and a digest test pins the reference path itself
against drift.
"""

import ast
import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    MicroDeepTrainer,
    UnitGraph,
    grid_correspondence_assignment,
)
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
)
from repro.nn.layers import AvgPool2D
from repro.nn.layers.im2col import col2im, col2im_cached
from repro.wsn import GridTopology

RNG = np.random.default_rng(17)

MODELS = {
    "conv_maxpool": (
        lambda: [Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(),
                 Dense(8), ReLU(), Dense(2)],
        (1, 10, 10), (4, 4),
    ),
    "dense_only": (
        lambda: [Flatten(), Dense(16), ReLU(), Dense(8), ReLU(), Dense(2)],
        (1, 6, 6), (3, 3),
    ),
    "conv_avgpool": (
        lambda: [Conv2D(3, 3), ReLU(), AvgPool2D(2), Flatten(), Dense(4)],
        (1, 9, 9), (2, 3),
    ),
}


def make_trainer(kind, impl, seed=0, fault_adapter=None, optimizer=None):
    layers_fn, input_shape, grid = MODELS[kind]
    model = Sequential(layers_fn())
    model.build(input_shape, np.random.default_rng(seed))
    graph = UnitGraph(model)
    placement = grid_correspondence_assignment(graph, GridTopology(*grid))
    return MicroDeepTrainer(
        graph, placement, optimizer or SGD(lr=0.05), update_mode="local",
        fault_adapter=fault_adapter, backward_impl=impl,
    )


def make_batch(kind, n=8, seed=7):
    __, input_shape, __ = MODELS[kind]
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n,) + input_shape)
    classes = MODELS[kind][0]()[-1].units
    y = rng.integers(0, classes, size=n)
    return x, y


def run_backward(trainer, x, y):
    trainer.model.zero_grads()
    logits = trainer.model.forward(x, training=True)
    trainer.loss.forward(logits, y)
    trainer._backward(trainer.loss.backward())


def grads_of(trainer):
    return {
        (i, name): layer.grads()[name].copy()
        for i, layer in enumerate(trainer.model.layers)
        for name in layer.grads()
    }


class ScriptedAdapter:
    """Fault adapter with a fixed down-set; records every skip."""

    def __init__(self, down):
        self.down = set(down)
        self.skips = []

    def down_nodes(self):
        return self.down

    def on_update_skipped(self, layer_index, node):
        self.skips.append((layer_index, node))


class TestGradientParity:
    @pytest.mark.parametrize("kind", sorted(MODELS))
    def test_single_step_gradients_match_reference(self, kind):
        vec = make_trainer(kind, "vectorized")
        ref = make_trainer(kind, "reference")
        x, y = make_batch(kind)
        run_backward(vec, x, y)
        run_backward(ref, x, y)
        gv, gr = grads_of(vec), grads_of(ref)
        assert gv.keys() == gr.keys()
        for key in gv:
            layer = vec.model.layers[key[0]]
            if isinstance(layer, Conv2D):
                np.testing.assert_allclose(
                    gv[key], gr[key], atol=1e-12, rtol=0,
                    err_msg=f"{kind} {key}",
                )
            else:
                # Dense parameter grads and everything downstream of
                # the input-gradient path are byte-identical.
                np.testing.assert_array_equal(
                    gv[key], gr[key], err_msg=f"{kind} {key}"
                )

    @pytest.mark.parametrize("kind", sorted(MODELS))
    def test_weights_match_reference_after_epochs(self, kind):
        vec = make_trainer(kind, "vectorized")
        ref = make_trainer(kind, "reference")
        x, y = make_batch(kind, n=16)
        for trainer in (vec, ref):
            trainer.fit(x, y, epochs=4, batch_size=4,
                        rng=np.random.default_rng(3))
        for a, b in zip(vec.model.get_weights(), ref.model.get_weights()):
            np.testing.assert_allclose(a, b, atol=1e-9, rtol=0)

    def test_vectorized_is_the_fit_default(self):
        trainer = make_trainer("conv_maxpool", "vectorized")
        assert trainer.backward_impl == "vectorized"
        default = MODELS["conv_maxpool"]
        model = Sequential(default[0]())
        model.build(default[1], np.random.default_rng(0))
        graph = UnitGraph(model)
        placement = grid_correspondence_assignment(
            graph, GridTopology(*default[2])
        )
        assert MicroDeepTrainer(
            graph, placement, SGD(lr=0.05)
        ).backward_impl == "vectorized"

    def test_reference_path_digest_is_stable(self):
        """Pins the reference loop itself: the parity oracle must not
        drift between runs (same seed -> byte-identical weights)."""
        digests = []
        for __ in range(2):
            ref = make_trainer("conv_maxpool", "reference")
            x, y = make_batch("conv_maxpool", n=16)
            ref.fit(x, y, epochs=2, batch_size=4,
                    rng=np.random.default_rng(5))
            blob = b"".join(
                np.ascontiguousarray(w).tobytes()
                for w in ref.model.get_weights()
            )
            digests.append(hashlib.sha256(blob).hexdigest())
        assert digests[0] == digests[1]


class TestFaultParity:
    def test_skip_sequence_identical(self):
        """on_update_skipped must fire for the same (layer, node)
        pairs in the same order under both implementations."""
        records = {}
        for impl in ("vectorized", "reference"):
            adapter = ScriptedAdapter({3, 7, 12})
            trainer = make_trainer("conv_maxpool", impl,
                                   fault_adapter=adapter)
            x, y = make_batch("conv_maxpool")
            run_backward(trainer, x, y)
            records[impl] = (adapter.skips, grads_of(trainer))
        skips_vec, grads_vec = records["vectorized"]
        skips_ref, grads_ref = records["reference"]
        assert skips_vec == skips_ref
        assert len(skips_vec) > 0
        for key in grads_vec:
            np.testing.assert_allclose(
                grads_vec[key], grads_ref[key], atol=1e-12, rtol=0,
                err_msg=str(key),
            )

    def test_all_hosts_down_matches_reference(self):
        """Every node dead: the reference hits its ``total is None``
        branch (zero gradient flows back, zero parameter grads); the
        vectorized path must degenerate identically."""
        layers_fn, input_shape, grid = MODELS["conv_maxpool"]
        all_nodes = set(range(grid[0] * grid[1]))
        records = {}
        for impl in ("vectorized", "reference"):
            adapter = ScriptedAdapter(all_nodes)
            trainer = make_trainer("conv_maxpool", impl,
                                   fault_adapter=adapter)
            x, y = make_batch("conv_maxpool")
            run_backward(trainer, x, y)
            records[impl] = (adapter.skips, grads_of(trainer))
        skips_vec, grads_vec = records["vectorized"]
        skips_ref, grads_ref = records["reference"]
        assert skips_vec == skips_ref
        for key in grads_vec:
            np.testing.assert_array_equal(grads_vec[key], grads_ref[key])
            # Masked layers lost every contributor -> zero grads.
            assert not grads_vec[key].any()

    @pytest.mark.chaos
    def test_real_fault_adapter_parity(self):
        """End to end with the real fault stack: a NodeStateTracker
        with crashed nodes drives TrainingFaultAdapter; both backward
        implementations must log identical skip traces."""
        from repro.faults import FaultTrace, NodeStateTracker
        from repro.faults.runtime import TrainingFaultAdapter

        traces = {}
        for impl in ("vectorized", "reference"):
            layers_fn, input_shape, grid = MODELS["conv_maxpool"]
            topo = GridTopology(*grid)
            trace = FaultTrace()
            tracker = NodeStateTracker(topo, trace, clock=lambda: 0.0)
            for node in (1, 6, 11):
                tracker.crash(node)
            adapter = TrainingFaultAdapter(tracker, trace, clock=lambda: 0.0)
            trainer = make_trainer("conv_maxpool", impl,
                                   fault_adapter=adapter)
            x, y = make_batch("conv_maxpool")
            trainer.fit(x, y, epochs=1, batch_size=4,
                        rng=np.random.default_rng(2))
            traces[impl] = [
                (r.kind, r.detail.get("layer"), r.detail.get("node"))
                for r in trace.records
                if r.kind == "degrade.update-skipped"
            ]
        assert traces["vectorized"] == traces["reference"]
        assert len(traces["vectorized"]) > 0


class TestLayerKernels:
    """backward_nodes row blocks == one backward() call per node."""

    @pytest.mark.parametrize("kind", sorted(MODELS))
    def test_backward_nodes_blocks_match_per_node_backward(self, kind):
        trainer = make_trainer(kind, "vectorized")
        x, y = make_batch(kind)
        trainer.model.zero_grads()
        logits = trainer.model.forward(x, training=True)
        trainer.loss.forward(logits, y)
        grad = trainer.loss.backward()
        # Walk backwards manually, checking each masked layer.
        for entry in reversed(trainer.graph.layers):
            layer = entry.layer
            if entry.kind == "flatten" or layer.is_elementwise:
                grad = layer.backward(grad)
                continue
            stack = trainer._stacked[entry.index]
            batch = grad.shape[0]
            stacked = (grad[np.newaxis] * stack.out_masks).reshape(
                (-1,) + grad.shape[1:]
            )
            got = layer.backward_nodes(stacked, grad)
            got = got.reshape(
                (len(stack.nodes), batch) + got.shape[1:]
            )
            for i, node in enumerate(stack.nodes):
                out_mask, __ = trainer._masks[entry.index][node]
                expected = layer.backward(grad * out_mask)
                np.testing.assert_array_equal(
                    got[i], expected,
                    err_msg=f"{kind} layer {entry.index} node {node}",
                )
            grad = (got * stack.in_masks).sum(axis=0)

    def test_backward_nodes_unimplemented_layer_raises(self):
        with pytest.raises(NotImplementedError, match="ReLU"):
            ReLU().backward_nodes(np.zeros((2, 3)), np.zeros((1, 3)))


class TestCol2imCached:
    def test_non_overlapping_matches_reference_bytes(self):
        rng = np.random.default_rng(31)
        x_shape = (6, 3, 8, 8)
        col = rng.normal(size=(6 * 4 * 4, 3 * 2 * 2))
        fast = col2im_cached(col, x_shape, 2, 2, 2, 0)
        slow = col2im(col, x_shape, 2, 2, 2, 0)
        np.testing.assert_array_equal(fast, slow)

    def test_overlapping_falls_back_to_reference(self):
        """stride < kernel: windows overlap, the gather plan is
        unavailable, and the cached form must still be correct (it
        delegates to the accumulating loop)."""
        rng = np.random.default_rng(32)
        x_shape = (2, 2, 7, 7)
        col = rng.normal(size=(2 * 5 * 5, 2 * 3 * 3))
        fast = col2im_cached(col, x_shape, 3, 3, 1, 0)
        slow = col2im(col, x_shape, 3, 3, 1, 0)
        np.testing.assert_array_equal(fast, slow)

    def test_padded_non_overlapping_crops_correctly(self):
        rng = np.random.default_rng(33)
        x_shape = (3, 2, 6, 6)
        # 2x2/stride-2 over an 8x8 padded field -> 4x4 windows.
        col = rng.normal(size=(3 * 4 * 4, 2 * 2 * 2))
        fast = col2im_cached(col, x_shape, 2, 2, 2, 1)
        slow = col2im(col, x_shape, 2, 2, 2, 1)
        np.testing.assert_array_equal(fast, slow)


class TestTelemetry:
    def test_training_emits_spans_and_metrics(self):
        from repro import obs

        with obs.session() as tel:
            trainer = make_trainer("conv_maxpool", "vectorized")
            x, y = make_batch("conv_maxpool", n=8)
            trainer.fit(x, y, epochs=2, batch_size=4,
                        rng=np.random.default_rng(1))
        names = {e.name for e in tel.tracer.events}
        assert "train.step" in names
        assert "exec.backward" in names
        backward = next(
            e for e in tel.tracer.events if e.name == "exec.backward"
        )
        assert backward.attrs["impl"] == "vectorized"
        assert tel.metrics.total("train.steps") == 4.0  # 2 epochs x 2 steps
        assert tel.metrics.total("train.examples") == 16.0
        assert tel.metrics.total("train.epochs") == 2.0
        assert tel.metrics.value("train.epoch_loss") is not None

    def test_update_skips_counted_by_adapter(self):
        from repro import obs
        from repro.faults import FaultTrace, NodeStateTracker
        from repro.faults.runtime import TrainingFaultAdapter

        with obs.session() as tel:
            layers_fn, input_shape, grid = MODELS["conv_maxpool"]
            topo = GridTopology(*grid)
            trace = FaultTrace()
            tracker = NodeStateTracker(topo, trace, clock=lambda: 0.0)
            tracker.crash(5)
            adapter = TrainingFaultAdapter(tracker, trace, clock=lambda: 0.0)
            trainer = make_trainer("conv_maxpool", "vectorized",
                                   fault_adapter=adapter)
            x, y = make_batch("conv_maxpool")
            run_backward(trainer, x, y)
        n_skips = len([
            r for r in trace.records if r.kind == "degrade.update-skipped"
        ])
        assert n_skips > 0
        assert tel.metrics.total("train.update_skips") == n_skips
        instants = [
            e for e in tel.tracer.events if e.name == "train.update-skipped"
        ]
        assert len(instants) == n_skips

    def test_null_backend_emits_nothing(self):
        """Without a session the default telemetry is the disabled
        NULL backend: training must not record anything anywhere."""
        from repro.obs.runtime import current

        trainer = make_trainer("conv_maxpool", "vectorized")
        assert trainer._telemetry.enabled is False
        x, y = make_batch("conv_maxpool", n=8)
        trainer.fit(x, y, epochs=1, batch_size=4,
                    rng=np.random.default_rng(1))
        assert current().tracer.events == []


TRAINING_PY = (
    Path(__file__).resolve().parent.parent
    / "src" / "repro" / "core" / "training.py"
)

#: The one method allowed to loop over nodes calling layer.backward.
LOOP_ALLOWLIST = {"_backward_reference"}


def backward_calls_in_loops(tree):
    """(function, lineno) pairs where a ``*.backward(...)`` call sits
    inside a ``for`` loop — the pattern the vectorization removed."""
    offenders = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for loop in ast.walk(func):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            for node in ast.walk(loop):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "backward"
                ):
                    offenders.append((func.name, node.lineno))
    return offenders


class TestNoLoopedBackwardLint:
    def test_vectorized_path_has_no_per_node_backward_loop(self):
        """The tentpole's guard rail: outside the allowlisted
        reference oracle, no ``for`` loop in the trainer may call a
        layer ``backward`` — that is exactly the per-node hot loop the
        batched kernels replaced."""
        tree = ast.parse(TRAINING_PY.read_text())
        offenders = [
            (func, line)
            for func, line in backward_calls_in_loops(tree)
            if func not in LOOP_ALLOWLIST
        ]
        assert offenders == [], (
            "per-node backward loop reappeared in training.py: "
            + ", ".join(f"{f}:{l}" for f, l in offenders)
        )

    def test_detector_catches_the_banned_pattern(self):
        tree = ast.parse(
            "def bad(layers, grad):\n"
            "    for layer in layers:\n"
            "        grad = layer.backward(grad)\n"
        )
        assert backward_calls_in_loops(tree) == [("bad", 3)]

    def test_detector_ignores_loop_free_backward(self):
        tree = ast.parse(
            "def good(layer, grad):\n"
            "    return layer.backward(grad)\n"
        )
        assert backward_calls_in_loops(tree) == []

    def test_reference_oracle_is_still_present(self):
        tree = ast.parse(TRAINING_PY.read_text())
        allowed = {
            func for func, __ in backward_calls_in_loops(tree)
        } & LOOP_ALLOWLIST
        assert allowed == LOOP_ALLOWLIST
