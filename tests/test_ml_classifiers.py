"""Classifier behaviour tests on synthetic separable data."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KFold,
    KNeighborsClassifier,
    LogisticRegressionClassifier,
    RandomForestClassifier,
    StandardScaler,
    train_test_split,
)

RNG = np.random.default_rng(42)


def blobs(n_per_class=40, n_classes=3, d=4, sep=4.0, rng=None):
    """Well-separated Gaussian blobs."""
    rng = rng or np.random.default_rng(0)
    xs, ys = [], []
    for c in range(n_classes):
        center = rng.normal(0, 1, size=d) * 0.1 + c * sep
        xs.append(rng.normal(center, 1.0, size=(n_per_class, d)))
        ys.append(np.full(n_per_class, c))
    return np.vstack(xs), np.concatenate(ys)


ALL_CLASSIFIERS = [
    KNeighborsClassifier(k=3),
    LogisticRegressionClassifier(epochs=200),
    GaussianNaiveBayes(),
    DecisionTreeClassifier(max_depth=6),
    RandomForestClassifier(n_trees=10, max_depth=6),
]


@pytest.mark.parametrize("clf", ALL_CLASSIFIERS, ids=lambda c: type(c).__name__)
class TestClassifierContract:
    def test_separable_blobs(self, clf):
        x, y = blobs()
        x = StandardScaler().fit_transform(x)
        x_tr, x_te, y_tr, y_te = train_test_split(
            x, y, 0.3, np.random.default_rng(1), stratify=True
        )
        clf.fit(x_tr, y_tr)
        assert clf.score(x_te, y_te) > 0.9

    def test_predict_before_fit_raises(self, clf):
        fresh = type(clf)()
        with pytest.raises(RuntimeError):
            fresh.predict(np.zeros((1, 4)))

    def test_mismatched_lengths_raise(self, clf):
        with pytest.raises(ValueError):
            clf.fit(np.zeros((3, 2)), np.zeros(4))

    def test_single_class_predicts_it(self, clf):
        x = RNG.normal(size=(10, 3))
        y = np.full(10, 2)
        clf.fit(x, y)
        assert set(clf.predict(x)) == {2}


class TestKNN:
    def test_k1_memorizes(self):
        x, y = blobs(n_per_class=10)
        clf = KNeighborsClassifier(k=1).fit(x, y)
        assert clf.score(x, y) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=0)

    def test_k_larger_than_train(self):
        clf = KNeighborsClassifier(k=100).fit(np.zeros((3, 2)), [0, 0, 1])
        assert clf.predict(np.zeros((1, 2)))[0] == 0


class TestTree:
    def test_depth_respected(self):
        x, y = blobs(n_per_class=50)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_axis_aligned_split(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(x, y)
        np.testing.assert_array_equal(tree.predict(x), y)

    def test_deterministic(self):
        x, y = blobs()
        p1 = DecisionTreeClassifier(seed=5).fit(x, y).predict(x)
        p2 = DecisionTreeClassifier(seed=5).fit(x, y).predict(x)
        np.testing.assert_array_equal(p1, p2)


class TestForest:
    def test_more_trees_no_worse_on_noise(self):
        rng = np.random.default_rng(3)
        x, y = blobs(sep=2.0, rng=rng)
        x += rng.normal(0, 1.0, size=x.shape)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, 0.3, rng)
        small = RandomForestClassifier(n_trees=1, max_depth=4, seed=0)
        big = RandomForestClassifier(n_trees=25, max_depth=4, seed=0)
        s = small.fit(x_tr, y_tr).score(x_te, y_te)
        b = big.fit(x_tr, y_tr).score(x_te, y_te)
        assert b >= s - 0.05

    def test_invalid_n_trees(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)


class TestScaler:
    def test_zero_mean_unit_var(self):
        x = RNG.normal(5.0, 3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_no_nan(self):
        x = np.ones((10, 2))
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestModelSelection:
    def test_split_fractions(self):
        x = np.arange(100).reshape(-1, 1)
        y = np.arange(100) % 2
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, 0.25, RNG)
        assert len(x_te) == 25
        assert len(x_tr) == 75
        assert set(x_tr.ravel()) | set(x_te.ravel()) == set(range(100))

    def test_stratified_keeps_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        x = np.zeros((100, 1))
        __, __, __, y_te = train_test_split(x, y, 0.25, RNG, stratify=True)
        assert (y_te == 1).sum() == 5

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5, RNG)

    def test_kfold_covers_all(self):
        kf = KFold(4, np.random.default_rng(0))
        seen = []
        for train_idx, test_idx in kf.split(22):
            assert set(train_idx) & set(test_idx) == set()
            seen.extend(test_idx)
        assert sorted(seen) == list(range(22))

    def test_kfold_too_few_samples(self):
        kf = KFold(5, RNG)
        with pytest.raises(ValueError):
            list(kf.split(3))
