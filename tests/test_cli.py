"""Tests for the command-line entry point."""

import json

import pytest

from repro.cli import EXAMPLES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXAMPLES:
            assert name in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICDCS 2019" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "teleportation"]) == 2
        assert "unknown example" in capsys.readouterr().err

    def test_run_quickstart(self, capsys):
        assert main(["run", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "communication cost" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_all_examples_exist(self):
        from repro.cli import _examples_dir

        examples = _examples_dir()
        assert examples is not None
        for __, (filename, __d) in EXAMPLES.items():
            assert (examples / filename).exists(), filename


class TestTrainCli:
    def test_train_local_vectorized(self, capsys):
        assert main(["train", "--epochs", "2", "--samples", "24",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "mode=local impl=vectorized" in out
        assert "epoch   2" in out
        assert "final:" in out

    def test_train_reference_impl_and_exact_mode(self, capsys):
        assert main(["train", "--impl", "reference", "--epochs", "1",
                     "--samples", "16"]) == 0
        assert "impl=reference" in capsys.readouterr().out
        assert main(["train", "--mode", "exact", "--epochs", "1",
                     "--samples", "16"]) == 0
        assert "mode=exact" in capsys.readouterr().out

    def test_train_trace_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "train.jsonl"
        assert main(["train", "--epochs", "1", "--samples", "16",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "train.step spans" in out
        assert trace.is_file()
        lines = trace.read_text().strip().splitlines()
        assert any("train.step" in line for line in lines)
        assert any("exec.backward" in line for line in lines)

    def test_train_rejects_nonpositive_samples(self, capsys):
        assert main(["train", "--samples", "0"]) == 2
        assert "--samples" in capsys.readouterr().err


class TestSweepCli:
    def test_list(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out and "rng" in out

    def test_requires_task(self, capsys):
        assert main(["sweep"]) == 2
        assert "task name is required" in capsys.readouterr().err

    def test_unknown_task(self, capsys):
        assert main(["sweep", "teleportation"]) == 2
        assert "unknown sweep task" in capsys.readouterr().err

    def test_bad_grid_entry(self, capsys):
        assert main(["sweep", "rng", "--grid", "nonsense"]) == 2
        assert "not of the form" in capsys.readouterr().err

    def test_parse_seeds_mixed_forms(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("0,3,7") == [0, 3, 7]
        assert _parse_seeds("0-4") == [0, 1, 2, 3, 4]
        assert _parse_seeds("9, 1-3") == [9, 1, 2, 3]
        with pytest.raises(ValueError):
            _parse_seeds(",")

    def test_parse_scalar_casts(self):
        from repro.cli import _parse_scalar

        assert _parse_scalar("3") == 3 and isinstance(_parse_scalar("3"), int)
        assert _parse_scalar("0.5") == 0.5
        assert _parse_scalar("true") is True
        assert _parse_scalar("name") == "name"

    def test_jobs_reports_identical_modulo_wall(self, tmp_path, capsys):
        """The acceptance pin: ``repro sweep --jobs 1`` and ``--jobs 4``
        write identical JSON reports modulo wall-time fields."""
        import json

        from repro.par import strip_wall_fields

        out1 = tmp_path / "sweep1.json"
        out4 = tmp_path / "sweep4.json"
        base = ["sweep", "rng", "--seeds", "0-2", "--grid", "k=1,2"]
        assert main(base + ["--jobs", "1", "--out", str(out1)]) == 0
        assert main(base + ["--jobs", "4", "--out", str(out4)]) == 0
        capsys.readouterr()  # drain the tables
        doc1 = json.loads(out1.read_text())
        doc4 = json.loads(out4.read_text())
        assert doc1["wall"]["jobs"] == 1
        assert doc4["wall"]["jobs"] == 4
        assert strip_wall_fields(doc1) == strip_wall_fields(doc4)


class TestServeCli:
    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["serve", "--tenants", "teleportation"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_empty_tenants_is_usage_error(self, capsys):
        assert main(["serve", "--tenants", " , "]) == 2
        assert "at least one tenant" in capsys.readouterr().err

    def test_bad_policy_is_usage_error(self, capsys):
        assert main(["serve", "--max-batch", "0"]) == 2
        assert "max_batch" in capsys.readouterr().err
        assert main(["serve", "--max-delay", "-1"]) == 2
        assert "max_delay" in capsys.readouterr().err
        assert main(["serve", "--max-pending", "0"]) == 2
        assert "max_pending" in capsys.readouterr().err

    def test_stop_after_serves_and_exits_cleanly(self):
        """End to end through a real subprocess: ephemeral port, one
        request, clean exit 0 after --stop-after."""
        import os
        import re
        import subprocess
        import sys
        import urllib.request
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--tenants", "fall", "--epochs", "0", "--stop-after", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=str(repo),
        )
        try:
            port = None
            for line in proc.stdout:
                found = re.search(r"http://127\.0\.0\.1:(\d+)", line)
                if found:
                    port = int(found.group(1))
                    break
            assert port is not None, "serve never announced its port"
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ) as response:
                assert response.status == 200
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()


class TestMonitorCli:
    def test_monitor_train_prints_health_table(self, capsys):
        assert main(["monitor", "train", "--epochs", "2",
                     "--samples", "24"]) == 0
        out = capsys.readouterr().out
        assert "rule" in out and "state" in out
        assert "loss-plateau" in out and "loss-rising" in out
        assert "samples=" in out and "critical=0" in out

    def test_monitor_unknown_target(self, capsys):
        assert main(["monitor", "teleportation"]) == 2
        assert "unknown monitor target" in capsys.readouterr().err

    def test_monitor_bad_rules_file(self, tmp_path, capsys):
        bad = tmp_path / "rules.json"
        bad.write_text('{"rules": [{"name": "r"}]}')  # missing series
        assert main(["monitor", "train", "--rules", str(bad)]) == 2
        assert "cannot load rules" in capsys.readouterr().err
        assert main(["monitor", "train",
                     "--rules", str(tmp_path / "nope.json")]) == 2

    def test_monitor_writes_timeline_and_alerts(self, tmp_path, capsys):
        out = tmp_path / "timeline.jsonl"
        alerts = tmp_path / "alerts.jsonl"
        assert main(["monitor", "train", "--epochs", "2",
                     "--samples", "24", "--out", str(out),
                     "--alerts", str(alerts)]) == 0
        lines = [json.loads(line)
                 for line in out.read_text().splitlines() if line]
        assert len(lines) == 2  # one tick per epoch
        assert any(k.startswith("train.epoch_loss")
                   for k in lines[-1]["series"])
        assert "digest" in capsys.readouterr().out

    def test_monitor_critical_alert_exits_4(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rules": [
            {"name": "ghost", "series": "no.such.series",
             "kind": "absence", "severity": "critical"},
        ]}))
        assert main(["monitor", "train", "--epochs", "1",
                     "--samples", "16", "--rules", str(rules)]) == 4
        captured = capsys.readouterr()
        assert "FIRING" in captured.out
        assert "critical alert(s) fired" in captured.err
