"""Tests for the command-line entry point."""

import pytest

from repro.cli import EXAMPLES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXAMPLES:
            assert name in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICDCS 2019" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "teleportation"]) == 2
        assert "unknown example" in capsys.readouterr().err

    def test_run_quickstart(self, capsys):
        assert main(["run", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "communication cost" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_all_examples_exist(self):
        from repro.cli import _examples_dir

        examples = _examples_dir()
        assert examples is not None
        for __, (filename, __d) in EXAMPLES.items():
            assert (examples / filename).exists(), filename
