"""Tests for model weight serialization."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    load_weights,
    save_weights,
)


def build(seed=0, hidden=8):
    model = Sequential([
        Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(hidden), Dense(2),
    ])
    model.build((1, 8, 8), np.random.default_rng(seed))
    return model


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, tmp_path):
        model = build(seed=1)
        x = np.random.default_rng(2).normal(size=(3, 1, 8, 8))
        expected = model.forward(x)
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        fresh = build(seed=99)  # different init
        assert not np.allclose(fresh.forward(x), expected)
        load_weights(fresh, path)
        np.testing.assert_allclose(fresh.forward(x), expected)

    def test_architecture_mismatch_rejected(self, tmp_path):
        model = build(hidden=8)
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        other = build(hidden=16)
        with pytest.raises(ValueError, match="architecture mismatch"):
            load_weights(other, path)

    def test_unbuilt_models_rejected(self, tmp_path):
        unbuilt = Sequential([Dense(2)])
        with pytest.raises(RuntimeError):
            save_weights(unbuilt, tmp_path / "w.npz")
        with pytest.raises(RuntimeError):
            load_weights(unbuilt, tmp_path / "w.npz")

    def test_file_is_single_npz(self, tmp_path):
        model = build()
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        assert path.exists()
        with np.load(path) as data:
            assert "__fingerprint__" in data.files
