"""Tests for the information-collection planner (§III.B)."""

import numpy as np
import pytest

from repro.core import CollectionPlanner, Obstacle, PlanningError
from repro.wsn import GridTopology, SensorNode, Topology


class TestObstacle:
    def test_validation(self):
        with pytest.raises(ValueError):
            Obstacle(1.0, 1.0, 1.0, 2.0)

    def test_blocks_crossing_segment(self):
        wall = Obstacle(2.0, -1.0, 3.0, 5.0)
        assert wall.blocks((0.0, 2.0), (5.0, 2.0))

    def test_misses_parallel_segment(self):
        wall = Obstacle(2.0, 0.0, 3.0, 5.0)
        assert not wall.blocks((0.0, 8.0), (5.0, 8.0))

    def test_endpoint_inside_blocks(self):
        box = Obstacle(0.0, 0.0, 2.0, 2.0)
        assert box.blocks((1.0, 1.0), (5.0, 5.0))

    def test_same_side_segments_clear(self):
        box = Obstacle(2.0, 2.0, 3.0, 3.0)
        assert not box.blocks((0.0, 0.0), (1.0, 1.0))


class TestPlanner:
    def _planner(self, rows=3, cols=4, **kw):
        return CollectionPlanner(GridTopology(rows, cols), **kw)

    def test_every_node_scheduled(self):
        planner = self._planner()
        plan = planner.plan(sink=0, cycle_s=1.0)
        scheduled = {s.node for s in plan.schedule}
        assert scheduled == set(range(12)) - {0}
        assert plan.unreachable == []

    def test_tree_reaches_sink(self):
        plan = self._planner().plan(sink=5, cycle_s=1.0)
        for node in plan.parents:
            assert plan.depth_of(node) < 12

    def test_convergecast_order(self):
        """A node transmits no earlier than any of its children."""
        plan = self._planner(4, 4).plan(sink=0, cycle_s=1.0)
        slot_of = {s.node: s.slot for s in plan.schedule}
        for child, parent in plan.parents.items():
            if parent is None or parent == plan.sink:
                continue
            assert slot_of[parent] > slot_of[child], (child, parent)

    def test_channel_reuse_no_slot_conflicts(self):
        """No two transmissions in one slot share a channel or a
        node."""
        plan = self._planner(4, 5, max_channels=3).plan(sink=0, cycle_s=1.0)
        by_slot = {}
        for s in plan.schedule:
            by_slot.setdefault(s.slot, []).append(s)
        for slot, entries in by_slot.items():
            channels = [e.channel for e in entries]
            assert len(channels) == len(set(channels)), f"slot {slot}"
            actors = [e.node for e in entries] + [e.parent for e in entries]
            assert len(actors) == len(set(actors)), f"slot {slot}"

    def test_feasibility_flag(self):
        planner = self._planner(slot_duration_s=0.01)
        fast = planner.plan(sink=0, cycle_s=10.0)
        assert fast.feasible
        slow = planner.plan(sink=0, cycle_s=0.001)
        assert not slow.feasible

    def test_retry_slots_extend_frame(self):
        planner = self._planner()
        lean = planner.plan(sink=0, cycle_s=1.0, retry_slots=0)
        padded = planner.plan(sink=0, cycle_s=1.0, retry_slots=5)
        assert padded.frame_duration_s > lean.frame_duration_s

    def test_obstacle_changes_routing(self):
        topo = GridTopology(1, 5, spacing=1.0, comm_range=1.2)
        # A wall between nodes 1 and 2 disconnects the right half.
        wall = Obstacle(1.4, -1.0, 1.6, 1.0)
        planner = CollectionPlanner(topo, obstacles=[wall])
        plan = planner.plan(sink=0, cycle_s=1.0)
        assert set(plan.unreachable) == {2, 3, 4}

    def test_more_channels_shorter_frame(self):
        lean = self._planner(4, 6, max_channels=1).plan(0, 1.0)
        multi = self._planner(4, 6, max_channels=4).plan(0, 1.0)
        assert multi.frame_duration_s <= lean.frame_duration_s

    def test_fastest_feasible_cycle(self):
        planner = self._planner()
        fastest = planner.fastest_feasible_cycle(sink=0)
        plan = planner.plan(sink=0, cycle_s=fastest)
        assert plan.feasible

    def test_errors(self):
        planner = self._planner()
        with pytest.raises(PlanningError):
            planner.plan(sink=999, cycle_s=1.0)
        with pytest.raises(PlanningError):
            planner.plan(sink=0, cycle_s=-1.0)
        with pytest.raises(ValueError):
            CollectionPlanner(GridTopology(2, 2), slot_duration_s=0.0)
        with pytest.raises(ValueError):
            CollectionPlanner(GridTopology(2, 2), max_channels=0)

    def test_dead_sink_rejected(self):
        topo = GridTopology(2, 2)
        topo.node(0).fail()
        with pytest.raises(PlanningError):
            CollectionPlanner(topo).plan(sink=0, cycle_s=1.0)
