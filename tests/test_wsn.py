"""Tests for the WSN simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.wsn import (
    ChocoCollector,
    CsmaMac,
    FadingModel,
    GridTopology,
    LogDistancePathLoss,
    Message,
    Network,
    RadioModel,
    RandomTopology,
    SensorNode,
    TdmaMac,
    Topology,
    shortest_path_route,
    sink_tree,
    snr_to_per,
)

RNG = np.random.default_rng(11)


class TestTopology:
    def test_grid_node_positions(self):
        g = GridTopology(3, 4, spacing=2.0)
        assert len(g) == 12
        assert g.node_at(0, 0).position == (0.0, 0.0)
        assert g.node_at(2, 3).position == (6.0, 4.0)

    def test_grid_position_roundtrip(self):
        g = GridTopology(5, 7)
        for nid in [0, 6, 17, 34]:
            r, c = g.grid_position(nid)
            assert g.node_at(r, c).node_id == nid

    def test_grid_neighbors_8way(self):
        g = GridTopology(3, 3, spacing=1.0)  # default range 1.5
        center = g.node_at(1, 1)
        assert len(g.neighbors(center.node_id)) == 8
        corner = g.node_at(0, 0)
        assert len(g.neighbors(corner.node_id)) == 3

    def test_dead_nodes_excluded(self):
        g = GridTopology(3, 3)
        g.node_at(1, 1).fail()
        assert len(g.alive_nodes()) == 8
        assert g.node_at(1, 1) not in g.neighbors(g.node_at(0, 1).node_id)

    def test_grid_connected(self):
        assert GridTopology(4, 4).is_connected()

    def test_duplicate_ids_rejected(self):
        nodes = [SensorNode(0, (0, 0)), SensorNode(0, (1, 1))]
        with pytest.raises(ValueError):
            Topology(nodes, comm_range=2.0)

    def test_random_topology_in_bounds(self):
        t = RandomTopology(50, width=10.0, height=5.0, comm_range=3.0, rng=RNG)
        for n in t:
            assert 0 <= n.position[0] <= 10.0
            assert 0 <= n.position[1] <= 5.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            GridTopology(0, 3)
        with pytest.raises(ValueError):
            Topology([], comm_range=-1.0)


class TestRadio:
    def test_path_loss_monotone(self):
        pl = LogDistancePathLoss(exponent=3.0)
        losses = [pl.loss_db(d) for d in [1.0, 2.0, 5.0, 10.0]]
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_rssi_decreases_with_distance(self):
        r = RadioModel(tx_power_dbm=0.0, fading=FadingModel(0.0))
        assert r.mean_rssi_dbm(1.0) > r.mean_rssi_dbm(10.0)

    def test_per_monotone_in_snr(self):
        pers = [snr_to_per(snr, 256) for snr in [-5, 0, 5, 10, 15]]
        assert all(a >= b for a, b in zip(pers, pers[1:]))
        assert pers[-1] < 1e-3
        assert pers[0] > 0.9

    def test_per_bounds(self):
        assert 0.0 <= snr_to_per(-100, 8) <= 1.0
        assert 0.0 <= snr_to_per(100, 8) <= 1.0

    def test_per_invalid_bits(self):
        with pytest.raises(ValueError):
            snr_to_per(10.0, 0)

    def test_close_link_delivers(self):
        r = RadioModel(tx_power_dbm=0.0, fading=FadingModel(0.0))
        rng = np.random.default_rng(0)
        ok = sum(r.delivery_succeeds(1.0, 256, rng) for _ in range(100))
        assert ok == 100

    def test_shadowing_variance(self):
        f = FadingModel(shadowing_sigma_db=4.0)
        rng = np.random.default_rng(0)
        samples = [f.sample_db(rng) for _ in range(2000)]
        assert np.std(samples) == pytest.approx(4.0, rel=0.1)


class TestRouting:
    def test_shortest_path_endpoints(self):
        g = GridTopology(4, 4)
        route = shortest_path_route(g, 0, 15)
        assert route[0] == 0 and route[-1] == 15
        assert len(route) == 4  # diagonal hops allowed (range 1.5)

    def test_self_route(self):
        g = GridTopology(2, 2)
        assert shortest_path_route(g, 0, 0) == [0]

    def test_disconnected_returns_none(self):
        nodes = [SensorNode(0, (0, 0)), SensorNode(1, (100, 100))]
        t = Topology(nodes, comm_range=1.0)
        assert shortest_path_route(t, 0, 1) is None

    def test_sink_tree_parents(self):
        g = GridTopology(3, 3)
        parents = sink_tree(g, sink=4)
        assert parents[4] is None
        assert len(parents) == 9
        # every non-sink node's parent chain reaches the sink
        for nid in parents:
            hops, cur = 0, nid
            while parents[cur] is not None:
                cur = parents[cur]
                hops += 1
                assert hops <= 9
            assert cur == 4

    def test_sink_tree_bad_sink(self):
        with pytest.raises(KeyError):
            sink_tree(GridTopology(2, 2), sink=99)


class TestNetwork:
    def test_unicast_counts_values(self):
        g = GridTopology(1, 3, comm_range=1.0)  # line: 0-1-2
        net = Network(g)
        ok = net.unicast(Message(src=0, dst=2, n_values=5))
        assert ok
        # relay node 1 both received and re-sent the 5 values
        assert g.node(1).rx_values == 5
        assert g.node(1).tx_values == 5
        assert g.node(2).rx_values == 5
        assert net.stats.total_hops == 2
        assert net.stats.max_rx_values() == 5

    def test_lossy_network_drops(self):
        g = GridTopology(1, 10, comm_range=1.0)
        net = Network(
            g, loss_probability=0.8, max_retries=0, rng=np.random.default_rng(0)
        )
        for __ in range(50):
            net.unicast(Message(0, 9, 1))
        assert net.stats.dropped > 0
        assert net.stats.delivered + net.stats.dropped == net.stats.sent

    def test_retries_improve_delivery(self):
        g = GridTopology(1, 5, comm_range=1.0)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        no_retry = Network(g, loss_probability=0.4, max_retries=0, rng=rng1)
        for __ in range(100):
            no_retry.unicast(Message(0, 4, 1))
        ratio_none = no_retry.stats.delivered / 100
        g2 = GridTopology(1, 5, comm_range=1.0)
        with_retry = Network(g2, loss_probability=0.4, max_retries=5, rng=rng2)
        for __ in range(100):
            with_retry.unicast(Message(0, 4, 1))
        assert with_retry.stats.delivered / 100 > ratio_none

    def test_unroutable_message_dropped(self):
        nodes = [SensorNode(0, (0, 0)), SensorNode(1, (100, 0))]
        net = Network(Topology(nodes, comm_range=1.0))
        assert not net.unicast(Message(0, 1, 1))
        assert net.stats.dropped == 1

    def test_reset_stats(self):
        g = GridTopology(2, 2)
        net = Network(g)
        net.unicast(Message(0, 3, 7))
        net.reset_stats()
        assert net.stats.sent == 0
        assert g.node(3).rx_values == 0

    def test_lossy_requires_rng(self):
        with pytest.raises(ValueError):
            Network(GridTopology(2, 2), loss_probability=0.5)

    @given(st.integers(1, 20))
    @settings(max_examples=20)
    def test_value_conservation_ideal_links(self, n_values):
        """On loss-free links, total tx values == total rx values."""
        g = GridTopology(3, 3)
        net = Network(g)
        net.unicast(Message(0, 8, n_values))
        total_tx = sum(n.tx_values for n in g)
        total_rx = sum(n.rx_values for n in g)
        assert total_tx == total_rx


class TestTdma:
    def test_round_robin_delivery(self):
        sim = Simulator()
        delivered = []
        mac = TdmaMac(
            sim, [0, 1, 2], slot_duration=1.0,
            on_delivery=lambda n, p: delivered.append((n, p)),
        )
        mac.offer(0, "a")
        mac.offer(2, "c")
        mac.start()
        sim.run(until=3.5)
        assert delivered == [(0, "a"), (2, "c")]
        assert mac.stats.delivery_ratio == 1.0

    def test_queue_drains_one_per_frame(self):
        sim = Simulator()
        delivered = []
        mac = TdmaMac(sim, [0, 1], 1.0, on_delivery=lambda n, p: delivered.append(p))
        mac.offer(0, "p1")
        mac.offer(0, "p2")
        mac.start()
        sim.run(until=2.5)
        assert delivered == ["p1"]  # second waits for next frame
        sim.run(until=4.5)
        assert delivered == ["p1", "p2"]

    def test_unknown_node(self):
        mac = TdmaMac(Simulator(), [0], 1.0)
        with pytest.raises(KeyError):
            mac.offer(5, "x")


class TestCsma:
    def test_single_sender_delivers(self):
        sim = Simulator()
        delivered = []
        mac = CsmaMac(sim, 1.0, np.random.default_rng(0),
                      on_delivery=lambda n, p: delivered.append(p))
        mac.offer(0, "solo")
        sim.run(until=10.0)
        assert delivered == ["solo"]
        assert mac.stats.collided == 0

    def test_simultaneous_senders_collide_then_recover(self):
        sim = Simulator()
        delivered = []
        mac = CsmaMac(sim, 1.0, np.random.default_rng(3),
                      on_delivery=lambda n, p: delivered.append(p))
        for node in range(4):
            mac.offer(node, f"pkt{node}")
        sim.run(until=200.0)
        assert mac.stats.collided > 0
        assert sorted(delivered) == ["pkt0", "pkt1", "pkt2", "pkt3"]

    def test_overload_drops_packets(self):
        sim = Simulator()
        delivered = []
        mac = CsmaMac(sim, 1.0, np.random.default_rng(1), max_attempts=1,
                      on_delivery=lambda n, p: delivered.append(p))
        for node in range(10):
            mac.offer(node, node)
        sim.run(until=100.0)
        assert len(delivered) < 10


class TestChoco:
    def _collector(self, **kw):
        topo = GridTopology(2, 2, spacing=2.0, comm_range=5.0)
        radio = RadioModel(tx_power_dbm=0.0, fading=FadingModel(0.5))
        return topo, ChocoCollector(topo, radio, **kw)

    def test_round_has_all_pairs(self):
        topo, collector = self._collector()
        round_ = collector.run_round(0.0, RNG)
        assert len(round_.inter_node_rssi) == 4 * 3
        assert set(round_.surrounding_rssi) == {0, 1, 2, 3}

    def test_attenuation_lowers_inter_node(self):
        __, quiet = self._collector()
        __, crowded = self._collector(extra_attenuation_db=lambda i, j, t: 15.0)
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        r_quiet = quiet.run_round(0.0, rng1)
        r_crowd = crowded.run_round(0.0, rng2)
        assert r_crowd.mean_inter_node() < r_quiet.mean_inter_node() - 10

    def test_ambient_offset_raises_surrounding(self):
        __, base = self._collector()
        __, busy = self._collector(ambient_offset_dbm=lambda n, t: 20.0)
        r_base = base.run_round(0.0, np.random.default_rng(6))
        r_busy = busy.run_round(0.0, np.random.default_rng(6))
        assert r_busy.mean_surrounding() > r_base.mean_surrounding() + 10

    def test_dead_node_excluded(self):
        topo, collector = self._collector()
        topo.node(0).fail()
        round_ = collector.run_round(1.0, RNG)
        assert all(0 not in pair for pair in round_.inter_node_rssi)
        assert 0 not in round_.surrounding_rssi
