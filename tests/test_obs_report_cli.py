"""Trace export/aggregation and the trace/stats CLI surfaces.

The acceptance pins live here: on a lossless run the ``repro stats``
per-node table rebuilt from a written trace equals the Network's own
traffic counters exactly, and tracing never changes the model math
(logits byte-identical with and without a session installed).
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.assignment import grid_correspondence_assignment
from repro.core.executor import DistributedExecutor
from repro.core.unitgraph import UnitGraph
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.wsn.network import Network
from repro.wsn.topology import GridTopology


def build_stack(telemetry=None):
    model = Sequential([
        Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(4), Dense(2),
    ])
    model.build((1, 10, 10), np.random.default_rng(0))
    graph = UnitGraph(model)
    topology = GridTopology(4, 4)
    placement = grid_correspondence_assignment(graph, topology)
    network = Network(topology, telemetry=telemetry)
    executor = DistributedExecutor(
        model, graph, placement, network, telemetry=telemetry
    )
    return model, network, executor


@pytest.fixture()
def traced_run():
    """One lossless traced inference; returns (tel, network, events)."""
    with obs.session() as tel:
        __, network, executor = build_stack()
        x = np.random.default_rng(1).normal(size=(4, 1, 10, 10))
        executor.forward(x, count_traffic=True)
        events = obs.export_events(tel)
    return tel, network, events


class TestExport:
    def test_events_validate(self, traced_run):
        __, __, events = traced_run
        for event in events:
            assert obs.validate_event(event) == [], event

    def test_jsonl_round_trip(self, traced_run):
        tel, __, events = traced_run
        text = obs.export_jsonl(tel)
        assert obs.load_trace_jsonl(text) == events

    def test_chrome_envelope(self, traced_run):
        __, __, events = traced_run
        doc = json.loads(obs.to_chrome_json(events))
        assert doc["traceEvents"] == events

    def test_write_and_load_file(self, traced_run, tmp_path):
        tel, __, __ = traced_run
        path = obs.write_trace(tel, tmp_path / "t.jsonl")
        assert obs.load_trace_file(path) == obs.export_events(tel)

    def test_malformed_line_names_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            obs.load_trace_jsonl('{"name":"a","ph":"i","ts":0}\nnot json')

    def test_invalid_event_rejected(self):
        errors = obs.validate_event({"name": "", "ph": "Z", "ts": "x"})
        assert len(errors) == 3
        assert obs.validate_event("nope")


class TestCostTables:
    def test_per_node_costs_equal_network_counters(self, traced_run):
        """Acceptance: trace-derived per-node totals == TrafficStats."""
        __, network, events = traced_run
        costs = obs.per_node_costs(events)
        stats = network.stats
        for node, want in stats.per_node_rx_values.items():
            assert costs[node]["rx_values"] == want
        for node, want in stats.per_node_tx_values.items():
            assert costs[node]["tx_values"] == want
        totals = obs.cost_totals(costs)
        assert totals["rx_values"] == sum(stats.per_node_rx_values.values())
        assert totals["tx_values"] == sum(stats.per_node_tx_values.values())

    def test_reconciliation_clean(self, traced_run):
        __, network, __ = traced_run
        assert network.telemetry_drift() == []

    def test_markdown_tables(self, traced_run):
        __, __, events = traced_run
        costs = obs.per_node_costs(events)
        table = obs.cost_table_markdown(costs)
        assert "Peak receiver" in table
        comparison = obs.cost_comparison_markdown(costs, costs)
        assert "| **peak** |" in comparison
        summary = obs.trace_summary_markdown(events)
        # The steady-state default serves forward() from a compiled
        # plan, so the trace carries exec.plan spans.
        assert "exec.plan" in summary

    def test_counter_samples_last_write_wins(self):
        events = [
            {"name": "c", "ph": "C", "ts": 0.0,
             "args": {"node": 1, "value": 5, "kind": "counter"}},
            {"name": "c", "ph": "C", "ts": 1.0,
             "args": {"node": 1, "value": 9, "kind": "counter"}},
        ]
        (sample,) = obs.counter_samples(events, "c")
        assert sample["value"] == 9


class TestTracingIsInert:
    def test_logits_identical_with_and_without_session(self):
        x = np.random.default_rng(2).normal(size=(4, 1, 10, 10))
        __, __, executor = build_stack()
        baseline = executor.forward(x, count_traffic=False)
        with obs.session():
            __, __, traced_exec = build_stack()
            traced = traced_exec.forward(x, count_traffic=True)
        np.testing.assert_array_equal(baseline, traced)

    def test_traffic_stats_identical_with_and_without_session(self):
        x_shape = 4
        __, plain_net, plain_exec = build_stack()
        plain_exec.replay_traffic(x_shape)
        with obs.session():
            __, traced_net, traced_exec = build_stack()
            traced_exec.replay_traffic(x_shape)
        assert plain_net.stats == traced_net.stats

    def test_trace_determinism_across_runs(self):
        def one_run():
            with obs.session() as tel:
                __, __, executor = build_stack()
                x = np.random.default_rng(3).normal(size=(2, 1, 10, 10))
                executor.forward(x, count_traffic=True)
                return obs.export_jsonl(tel)

        assert one_run() == one_run()


class TestCli:
    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        """Acceptance: `repro trace quickstart` writes Chrome-loadable
        JSONL."""
        out = tmp_path / "quickstart.jsonl"
        summary = tmp_path / "quickstart.md"
        code = main([
            "trace", "quickstart",
            "--out", str(out), "--summary", str(summary),
        ])
        assert code == 0
        events = obs.load_trace_file(out)
        assert events  # parsed and schema-validated
        for event in events:
            assert obs.validate_event(event) == [], event
        assert "Trace: quickstart" in summary.read_text()

    def test_trace_unknown_example(self, capsys):
        assert main(["trace", "teleportation"]) == 2
        assert "unknown example" in capsys.readouterr().err

    def test_stats_and_comparison(self, tmp_path, capsys):
        out = tmp_path / "a.jsonl"
        assert main(["trace", "quickstart", "--out", str(out),
                     "--summary", str(tmp_path / "a.md")]) == 0
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        assert "Per-node communication cost" in capsys.readouterr().out
        assert main(["stats", str(out), "--against", str(out)]) == 0
        comparison = capsys.readouterr().out
        assert "| **peak** |" in comparison

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_stats_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["stats", str(bad)]) == 2
        assert "line 1" in capsys.readouterr().err
