"""Property-based invariants across randomly generated models.

These hypothesis tests check the structural contracts the benchmarks
rely on, over a space of CNN architectures and deployments rather than
hand-picked cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommunicationCostModel,
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.nn.layers.im2col import col2im, conv_output_hw, im2col
from repro.wsn import GridTopology


@st.composite
def cnn_architectures(draw):
    """A random conv[-pool]-flatten-dense(-dense) model plus input."""
    input_hw = draw(st.sampled_from([(6, 6), (8, 8), (9, 7), (10, 10)]))
    channels = draw(st.integers(1, 3))
    filters = draw(st.integers(1, 4))
    kernel = draw(st.sampled_from([2, 3]))
    padding = draw(st.sampled_from(["valid", "same"]))
    use_pool = draw(st.booleans())
    hidden = draw(st.integers(2, 10))
    layers = [Conv2D(filters, kernel, padding=padding), ReLU()]
    if use_pool:
        layers.append(MaxPool2D(2))
    layers += [Flatten(), Dense(hidden), ReLU(), Dense(2)]
    model = Sequential(layers)
    model.build((channels,) + input_hw, np.random.default_rng(draw(st.integers(0, 99))))
    return model


@st.composite
def deployments(draw):
    rows = draw(st.integers(2, 4))
    cols = draw(st.integers(2, 4))
    return GridTopology(rows, cols)


class TestUnitGraphProperties:
    @given(cnn_architectures())
    @settings(max_examples=25, deadline=None)
    def test_unit_totals_match_layer_sums(self, model):
        graph = UnitGraph(model)
        total = 0
        for entry in graph.layers:
            if entry.kind == "spatial":
                h, w = entry.out_hw
                total += h * w
            elif entry.kind == "flat":
                total += entry.n_units
        assert graph.total_units() == total

    @given(cnn_architectures())
    @settings(max_examples=25, deadline=None)
    def test_spatial_deps_in_bounds(self, model):
        graph = UnitGraph(model)
        for entry in graph.spatial_layers():
            h_in, w_in = entry.in_hw
            for pos, reads in entry.deps.items():
                for (iy, ix) in reads:
                    assert 0 <= iy < h_in and 0 <= ix < w_in


class TestAssignmentProperties:
    @given(cnn_architectures(), deployments(), st.integers(0, 9))
    @settings(max_examples=20, deadline=None)
    def test_every_strategy_assigns_every_unit(self, model, topo, seed):
        graph = UnitGraph(model)
        rng = np.random.default_rng(seed)
        for placement in [
            grid_correspondence_assignment(graph, topo),
            centralized_assignment(graph, topo),
            round_robin_assignment(graph, topo),
            random_assignment(graph, topo, rng),
        ]:
            assert len(placement.unit_node) == graph.total_units()
            valid_nodes = set(topo.nodes)
            assert set(placement.unit_node.values()) <= valid_nodes
            h, w = graph.input_hw
            assert len(placement.input_node) == h * w

    @given(cnn_architectures(), deployments())
    @settings(max_examples=20, deadline=None)
    def test_elementwise_always_free(self, model, topo):
        """Elementwise layers never generate traffic under any built-in
        strategy (they are co-located with their producers)."""
        graph = UnitGraph(model)
        cm = CommunicationCostModel(graph, topo)
        for placement in [
            grid_correspondence_assignment(graph, topo),
            centralized_assignment(graph, topo),
            round_robin_assignment(graph, topo),
        ]:
            report = cm.inference_cost(placement)
            for entry in graph.layers:
                if entry.kind != "flatten" and entry.layer.is_elementwise:
                    assert report.per_layer_total.get(entry.index, 0) == 0


class TestCostModelProperties:
    @given(cnn_architectures())
    @settings(max_examples=15, deadline=None)
    def test_single_node_is_free(self, model):
        graph = UnitGraph(model)
        topo = GridTopology(1, 1)
        placement = grid_correspondence_assignment(graph, topo)
        report = CommunicationCostModel(graph, topo).inference_cost(placement)
        assert report.total_rx() == 0

    @given(cnn_architectures(), deployments())
    @settings(max_examples=15, deadline=None)
    def test_costs_non_negative_and_peak_bounded(self, model, topo):
        graph = UnitGraph(model)
        cm = CommunicationCostModel(graph, topo)
        placement = grid_correspondence_assignment(graph, topo)
        report = cm.inference_cost(placement)
        assert all(v >= 0 for v in report.rx_values.values())
        assert report.max_rx() <= report.total_rx()

    @given(cnn_architectures(), deployments(), st.integers(0, 9))
    @settings(max_examples=10, deadline=None)
    def test_transfers_sum_matches_report(self, model, topo, seed):
        """The transfer list and the aggregated report agree on total
        volume once relays are accounted."""
        from repro.wsn.routing import shortest_path_route

        graph = UnitGraph(model)
        cm = CommunicationCostModel(graph, topo)
        placement = random_assignment(graph, topo, np.random.default_rng(seed))
        transfers = cm.transfers(placement)
        expected = 0
        for __, src, dst, n_values in transfers:
            route = shortest_path_route(topo, src, dst)
            assert route is not None
            expected += (len(route) - 1) * n_values
        report = cm.inference_cost(placement)
        assert report.total_rx() == expected


class TestIm2ColProperties:
    @given(
        st.integers(1, 2),  # batch
        st.integers(1, 3),  # channels
        st.sampled_from([(5, 5), (6, 4), (7, 7)]),
        st.sampled_from([(2, 1, 0), (3, 1, 0), (3, 1, 1), (2, 2, 0)]),
        st.integers(0, 99),
    )
    @settings(max_examples=30, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, n, c, hw, khsp, seed):
        """<im2col(x), y> == <x, col2im(y)> — the defining property of
        the conv backward pass."""
        kh, stride, pad = khsp
        h, w = hw
        try:
            conv_output_hw(h, w, kh, kh, stride, pad)
        except ValueError:
            return
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, h, w))
        col = im2col(x, kh, kh, stride, pad)
        y = rng.normal(size=col.shape)
        lhs = float((col * y).sum())
        back = col2im(y, x.shape, kh, kh, stride, pad)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @given(st.integers(0, 99))
    @settings(max_examples=20, deadline=None)
    def test_im2col_rows_are_patches(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 1, 4, 4))
        col = im2col(x, 2, 2, 1, 0)
        # First row is the top-left 2x2 patch.
        np.testing.assert_allclose(col[0], x[0, 0, :2, :2].ravel())
