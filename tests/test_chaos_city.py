"""Opt-in city-scale chaos: 10k nodes, crash plan, lossy links.

The satellite check for the spatial-index rework: run a district-sized
``RandomTopology`` (10k nodes — every query and graph build goes
through the grid-hash/CSR path) under a scheduled crash/brownout plan
*and* a lossy/corrupting link-fault model, push mixed unicast +
lossy-fallback bulk traffic through it, and then assert
:meth:`Network.telemetry_drift` reconciles — the three tally views
(node counters, aggregate stats, drop causes) must agree exactly even
while the epoch caches churn under mid-run topology mutations.

Too heavy for tier-1: opt in with ``REPRO_CITY_CHAOS=1`` (runs in
roughly half a minute)::

    REPRO_CITY_CHAOS=1 PYTHONPATH=src python -m pytest \
        tests/test_chaos_city.py -m chaos -q
"""

import os

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    FaultTrace,
    LinkFaultModel,
    NodeStateTracker,
    schedule_plan,
)
from repro.sim.engine import Simulator
from repro.wsn import Message, Network, RandomTopology

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not os.environ.get("REPRO_CITY_CHAOS"),
        reason="city-scale chaos run; set REPRO_CITY_CHAOS=1 to enable",
    ),
]

N_NODES = 10_000
SIDE = 1_000.0
COMM_RANGE = 15.0
SEED = 424242


@pytest.fixture(scope="module")
def city():
    rng = np.random.default_rng(SEED)
    topo = RandomTopology(N_NODES, SIDE, SIDE, COMM_RANGE, rng)
    return topo, rng


def test_city_chaos_reconciles(city):
    topo, rng = city
    epoch0 = topo.epoch

    # Crash/brownout plan over a random district slice, interleaved
    # with the traffic phases below via simulator virtual time.
    victims = rng.choice(topo.ids_view(), size=60, replace=False).tolist()
    plan = FaultPlan(seed=SEED)
    for k, node in enumerate(victims[:40]):
        plan.crash(0.5 + 0.1 * k, int(node))
    for k, node in enumerate(victims[40:]):
        plan.brownout(1.0 + 0.1 * k, int(node), duration=2.0)
    for node in victims[:10]:
        plan.recover(9.0, int(node))

    trace = FaultTrace()
    sim = Simulator()
    tracker = NodeStateTracker(topo, trace, lambda: sim.now)
    schedule_plan(plan, sim, tracker)

    link_faults = LinkFaultModel(
        loss_rate=0.02,
        corrupt_rate=0.01,
        duplicate_rate=0.01,
        seed=SEED + 1,
        trace=trace,
        clock=lambda: sim.now,
    )
    net = Network(
        topo,
        loss_probability=0.05,
        rng=np.random.default_rng(SEED + 2),
        link_faults=link_faults,
    )

    ids = topo.ids_view()

    def traffic_burst(n_messages):
        for __ in range(n_messages):
            src = int(rng.choice(ids))
            dst = int(rng.choice(ids))
            net.unicast(Message(src, dst, n_values=int(rng.integers(1, 9))))
        # Lossy links force unicast_bulk down the per-message fallback
        # path — exactly the reconciliation surface the chaos suite is
        # meant to stress.
        src = int(rng.choice(ids))
        dst = int(rng.choice(ids))
        net.unicast_bulk(Message(src, dst, n_values=3), copies=5)

    # Interleave fault phases and traffic so routes are resolved
    # against several distinct epochs of the cached graph.
    traffic_burst(40)
    sim.run(until=2.0)
    traffic_burst(40)
    sim.run(until=6.0)
    traffic_burst(40)
    sim.run()
    traffic_burst(40)

    # Faults actually landed and mutated the topology mid-run.
    assert tracker.down_nodes()
    assert topo.epoch > epoch0
    assert len([n for n in topo if not n.alive]) == len(tracker.down_nodes())
    assert net.stats.sent == 4 * 45
    assert net.stats.delivered > 0
    assert net.stats.dropped > 0

    # The point of the exercise: all tally views agree byte-for-byte
    # even though every route/neighbor query ran on the sparse path
    # while crashes churned the epoch caches.
    assert net.telemetry_drift() == []

    # And the sparse structures stayed coherent with node state: the
    # cached graph never contains a down node.
    g = topo.cached_graph()
    assert not (set(g.nodes) & tracker.down_nodes())
    assert g.number_of_nodes() == len(topo.alive_nodes())
