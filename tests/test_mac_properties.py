"""Property-based tests for the MAC layers and coexistence counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backscatter import (
    ContentionBackscatterMac,
    ScheduledBackscatterMac,
    run_coexistence,
)
from repro.sim import Simulator
from repro.wsn import CsmaMac, TdmaMac


class TestTdmaProperties:
    @given(
        st.integers(1, 6),       # nodes
        st.integers(0, 12),      # packets offered
        st.integers(0, 999),     # seed
    )
    @settings(max_examples=30, deadline=None)
    def test_never_drops_never_collides(self, n_nodes, n_packets, seed):
        rng = np.random.default_rng(seed)
        sim = Simulator()
        delivered = []
        mac = TdmaMac(sim, list(range(n_nodes)), slot_duration=1.0,
                      on_delivery=lambda n, p: delivered.append(p))
        for i in range(n_packets):
            mac.offer(int(rng.integers(0, n_nodes)), i)
        mac.start()
        # Enough frames for every queue to drain.
        sim.run(until=(n_packets + 1) * n_nodes + 1.0)
        assert sorted(delivered) == list(range(n_packets))
        assert mac.stats.collided == 0
        assert mac.stats.delivery_ratio in (0.0, 1.0)


class TestCsmaProperties:
    @given(st.integers(1, 8), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_conservation(self, n_senders, seed):
        """Every offered packet is eventually delivered or dropped —
        none duplicated, none lost track of."""
        sim = Simulator()
        delivered = []
        mac = CsmaMac(sim, 1.0, np.random.default_rng(seed),
                      max_attempts=8,
                      on_delivery=lambda n, p: delivered.append(p))
        for node in range(n_senders):
            mac.offer(node, node)
        sim.run(until=5000.0)
        assert len(delivered) == len(set(delivered))
        assert set(delivered) <= set(range(n_senders))
        assert mac.stats.delivered == len(delivered)


class TestCoexistenceProperties:
    @given(
        st.integers(1, 12),                 # devices
        st.floats(0.5, 100.0),              # wlan rate
        st.integers(0, 99),                 # seed
        st.sampled_from([ScheduledBackscatterMac, ContentionBackscatterMac]),
    )
    @settings(max_examples=20, deadline=None)
    def test_counter_invariants(self, n_devices, rate, seed, mac_class):
        result = run_coexistence(
            mac_class, n_devices, device_period_s=1.0, wlan_rate_pps=rate,
            duration_s=30.0, seed=seed,
        )
        assert 0 <= result.readings_delivered <= result.readings_generated
        assert result.deadline_misses <= result.readings_generated
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert result.wlan_airtime_s >= 0.0
        assert 0.0 <= result.dummy_overhead_fraction <= 1.0
        assert len(result.latencies) == result.readings_delivered
        if result.latencies:
            assert min(result.latencies) >= 0.0

    @given(st.integers(2, 10), st.integers(0, 49))
    @settings(max_examples=15, deadline=None)
    def test_scheduler_never_collides(self, n_devices, seed):
        result = run_coexistence(
            ScheduledBackscatterMac, n_devices, 1.0, 30.0, 30.0, seed=seed
        )
        assert result.backscatter_collisions == 0
