"""Chaos/property tests for the fault-injection layer.

For a set of fixed seeds the suite asserts the system-level
invariants the paper's setting demands:

- the resilient executor **never deadlocks**: every inference
  completes, and retry counts respect the bounded-retry policy;
- **virtual time stays monotonic** across all injected fault events
  and degradation decisions;
- **accuracy degrades gracefully**: monotonically (within a tolerance
  that absorbs sampling noise) as the packet-loss rate rises from
  0 to 0.5, and the clean run is never beaten by a faulty one by more
  than the tolerance.

The per-seed workload lives in
:func:`repro.faults.sweeps.chaos_curve_point` — a spawn-safe sweep
task — so the same code path serves the serial tier-1 checks, the
parallel determinism pin, and the opt-in large sweep, which fans out
over worker processes via :func:`repro.par.run_sweep`.

The default seed set is small enough for tier-1; set
``REPRO_CHAOS_SWEEP=1`` to run the larger opt-in sweep
(``pytest -m chaos_sweep``), and ``REPRO_CHAOS_JOBS=N`` to pick its
worker count (default 2).
"""

import os

import numpy as np
import pytest

from repro.faults import (
    CHAOS_LOSS_RATES,
    FaultPlan,
    chaos_curve_point,
    demo_scenario,
    inject,
    scenario_shared,
)
from repro.par import SweepPoint, make_points, run_sweep

CHAOS_TASK = "repro.faults.sweeps:chaos_curve_point"
CHAOS_SEEDS = [0, 1, 2, 3, 4]
SWEEP_SEEDS = list(range(5, 25))
LOSS_RATES = list(CHAOS_LOSS_RATES)
#: Accuracy may wiggle up between adjacent loss rates by at most this
#: much.  The slack is wide because each plan also crashes a node: when
#: the crash hits a load-bearing unit the whole curve sits near chance,
#: where independent fault draws on a finite test set wiggle hard.
MONOTONE_TOLERANCE = 0.25
#: Endpoint slack: loss 0.5 must not beat loss 0.0 by more than this.
EXTREMES_TOLERANCE = 0.05


@pytest.fixture(scope="module")
def trained():
    scenario, (x, y) = demo_scenario(seed=0)
    return scenario, x, y


def assert_chaos_payload(seed, payload) -> None:
    """The chaos invariants, asserted on a ``chaos_curve_point``
    payload (wherever it was computed — in-process or in a worker)."""
    invariants = payload["invariants"]
    # No deadlock: every inference completed with bounded virtual time.
    assert invariants["all_inferences_completed"], f"seed {seed}"
    # Virtual time is monotonic across every recorded event.
    assert invariants["time_monotonic"], f"seed {seed}"
    # Bounded retries: no transfer ever exceeded the policy.
    assert invariants["retries_bounded"], f"seed {seed}"
    # Every scheduled crash either fired or lies beyond the run.
    assert invariants["crashes_within_run"], f"seed {seed}"
    # The trace is canonically digestible for every loss rate.
    assert all(len(d) == 64 for d in payload["fault_trace_digests"])

    # Graceful degradation: within tolerance, accuracy is monotone
    # non-increasing in the loss rate, and the extremes are ordered.
    accuracies = payload["accuracies"]
    rates = payload["loss_rates"]
    for lower, higher in zip(accuracies, accuracies[1:]):
        assert higher <= lower + MONOTONE_TOLERANCE, (
            f"seed {seed}: accuracy rose from {lower:.3f} to {higher:.3f} "
            f"as loss increased (rates {rates}, accs {accuracies})"
        )
    assert accuracies[-1] <= accuracies[0] + EXTREMES_TOLERANCE


def run_chaos_seed(trained, seed: int) -> None:
    scenario, x, y = trained
    payload = chaos_curve_point(
        SweepPoint(index=0, seed=seed, config={}),
        np.random.default_rng(0),
        scenario_shared(scenario, x, y),
    )
    assert payload["loss_rates"] == LOSS_RATES
    assert_chaos_payload(seed, payload)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_invariants(trained, seed):
    run_chaos_seed(trained, seed)


@pytest.mark.chaos
def test_clean_plan_is_lossless(trained):
    """A plan with no faults must reproduce the fault-free accuracy."""
    scenario, x, y = trained
    from repro.core import DistributedExecutor
    from repro.wsn import Network

    run = inject(scenario, FaultPlan(seed=0))
    baseline = DistributedExecutor(
        scenario.model, scenario.graph, scenario.placement,
        Network(scenario.topology),
    )
    expected = float(
        (baseline.predict(x) == np.asarray(y)).mean()
    )
    assert run.accuracy(x, y, chunks=4) == pytest.approx(expected)
    assert len(run.trace.of_kind("degrade")) == 0
    assert len(run.trace.of_kind("link")) == 0


@pytest.mark.chaos
def test_acceptance_scenario_20pct_loss_2_crashes(trained):
    """The PR's acceptance scenario: 20 % loss + 2 crashed nodes runs
    to completion and the trace lists every fault and fallback."""
    scenario, x, y = trained
    plan = FaultPlan(seed=11, loss_rate=0.2).crash(0.0, 2).crash(0.0, 6)
    run = inject(scenario, plan)
    logits = run.infer(x)
    assert logits.shape == (len(x), 2)
    assert np.all(np.isfinite(logits))
    summary = run.trace.summary()
    assert summary.get("fault.crash") == 2
    assert len(run.trace.of_kind("link.drop")) > 0
    # Fallbacks were taken and recorded (crashed hosts force them).
    assert len(run.trace.of_kind("degrade")) > 0
    assert run.trace.is_time_monotonic()


@pytest.mark.chaos
def test_recovery_restores_accuracy(trained):
    """After a brownout ends, a later inference sees the full mesh."""
    scenario, x, y = trained
    plan = FaultPlan(seed=3).brownout(0.0, 4, duration=10.0)
    run = inject(scenario, plan)
    run.infer(x[:8])  # degraded: node 4 is down
    assert 4 in run.tracker.down_nodes()
    run.sim.run(until=20.0)  # let the brownout end
    assert 4 not in run.tracker.down_nodes()
    degraded_before = len(run.trace.of_kind("degrade"))
    run.infer(x[:8])
    # The recovered mesh adds no new degradation decisions.
    assert len(run.trace.of_kind("degrade")) == degraded_before


@pytest.mark.chaos
def test_parallel_chaos_sweep_is_byte_identical_to_serial(trained):
    """The determinism pin: a chaos sweep fanned over two worker
    processes merges to the byte-identical report of the serial run —
    same values, same telemetry, same canonical digest."""
    scenario, x, y = trained
    shared = scenario_shared(scenario, x[:16], y[:16])
    points = make_points(
        seeds=[0, 1], base_config={"loss_rates": [0.0, 0.3]}
    )
    serial = run_sweep(
        CHAOS_TASK, points, jobs=1, root_seed=0, shared=shared
    )
    parallel = run_sweep(
        CHAOS_TASK, points, jobs=2, root_seed=0, shared=shared,
        chunk_size=1,
    )
    assert parallel.canonical_json() == serial.canonical_json()
    assert parallel.digest() == serial.digest()
    assert parallel.merged_trace_digest() == serial.merged_trace_digest()
    assert (
        parallel.merged_metrics().snapshot()
        == serial.merged_metrics().snapshot()
    )
    # The payloads themselves pass the chaos invariants.
    for result in parallel.results:
        assert_chaos_payload(result.seed, result.value)


@pytest.mark.chaos
@pytest.mark.chaos_sweep
@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS_SWEEP"),
    reason="large chaos sweep is opt-in (REPRO_CHAOS_SWEEP=1)",
)
def test_chaos_sweep(trained):
    """The large opt-in sweep, fanned out over worker processes."""
    scenario, x, y = trained
    jobs = int(os.environ.get("REPRO_CHAOS_JOBS", "2"))
    report = run_sweep(
        CHAOS_TASK,
        make_points(seeds=SWEEP_SEEDS),
        jobs=jobs,
        root_seed=0,
        shared=scenario_shared(scenario, x, y),
    )
    assert len(report.results) == len(SWEEP_SEEDS)
    for result in report.results:
        assert result.value["loss_rates"] == LOSS_RATES
        assert_chaos_payload(result.seed, result.value)


# -- telemetry reconciliation (the metrics registry is the single -----------
# -- source of truth for per-node tallies) ----------------------------------
@pytest.mark.chaos
def test_telemetry_reconciles_with_fault_trace(trained):
    """Under faults, the network's three views (node counters, stats,
    metrics registry) agree, and cause-attributed drop counts match
    the FaultTrace event-for-event."""
    from repro import obs

    scenario, x, y = trained
    plan = FaultPlan(seed=7, loss_rate=0.2, duplicate_rate=0.1).crash(0.0, 2)
    with obs.session():
        run = inject(scenario, plan)
        run.infer(x[:8])
        assert run.network.telemetry_drift() == []
        stats = run.network.stats
        assert stats.dropped_causes.get("fault", 0) == len(
            run.trace.of_kind("link.drop")
        )
        assert stats.duplicated == len(run.trace.of_kind("link.duplicate"))
        assert stats.corrupted == len(run.trace.of_kind("link.corrupt"))


@pytest.mark.chaos
def test_telemetry_reconciles_under_lossy_bulk_fallback(trained):
    """`unicast_bulk` falls back to the per-message loop on lossy
    links; the reconciliation must survive that path too."""
    from repro import obs
    from repro.core import DistributedExecutor
    from repro.wsn import Network

    scenario, __, __ = trained
    for node in scenario.topology:  # revive nodes crashed by earlier runs
        node.alive = True
    with obs.session():
        network = Network(
            scenario.topology,
            loss_probability=0.3,
            max_retries=1,
            rng=np.random.default_rng(42),
        )
        network.reset_stats()  # the module-scoped topology is shared
        executor = DistributedExecutor(
            scenario.model, scenario.graph, scenario.placement, network
        )
        executor.replay_traffic(8)
        assert network.telemetry_drift() == []
        stats = network.stats
        assert stats.dropped > 0  # the lossy path actually exercised
        assert set(stats.dropped_causes) == {"loss"}
