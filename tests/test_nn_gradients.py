"""Numerical gradient checks for every layer and loss.

These are the correctness bedrock for MicroDeep: the distributed
executor reuses these layers, so analytic/numeric agreement here
validates both.
"""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    Conv2D,
    CrossEntropyLoss,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    MSELoss,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)

RNG = np.random.default_rng(12345)
EPS = 1e-5
TOL = 1e-4


def numeric_grad(f, x):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + EPS
        hi = f()
        x[idx] = orig - EPS
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * EPS)
        it.iternext()
    return grad


def layer_loss(layer, x):
    """Deterministic scalar 'loss': weighted sum of the layer output."""
    out = layer.forward(x, training=True)
    if not hasattr(layer_loss, "_w") or layer_loss._w.shape != out.shape:
        layer_loss._w = np.arange(out.size, dtype=float).reshape(out.shape) / out.size
    return float((out * layer_loss._w).sum()), layer_loss._w


def check_layer_input_grad(layer, x):
    layer_loss._w = np.empty(0)
    loss, w = layer_loss(layer, x)
    grad_in = layer.backward(w)

    def f():
        return layer_loss(layer, x)[0]

    num = numeric_grad(f, x)
    np.testing.assert_allclose(grad_in, num, rtol=TOL, atol=TOL)


def check_layer_param_grads(layer, x):
    layer_loss._w = np.empty(0)
    loss, w = layer_loss(layer, x)
    layer.zero_grads()
    layer.backward(w)
    for name, p in layer.params().items():
        analytic = layer.grads()[name].copy()

        def f():
            return layer_loss(layer, x)[0]

        num = numeric_grad(f, p)
        np.testing.assert_allclose(analytic, num, rtol=TOL, atol=TOL, err_msg=name)


class TestConv2D:
    @pytest.mark.parametrize("stride,padding", [(1, "valid"), (2, "valid"), (1, "same")])
    def test_input_gradient(self, stride, padding):
        layer = Conv2D(3, 3, stride=stride, padding=padding)
        layer.build((2, 6, 6), RNG)
        x = RNG.normal(size=(2, 2, 6, 6))
        check_layer_input_grad(layer, x)

    def test_param_gradients(self):
        layer = Conv2D(2, 3)
        layer.build((2, 5, 5), RNG)
        x = RNG.normal(size=(2, 2, 5, 5))
        check_layer_param_grads(layer, x)

    def test_output_shape_matches_forward(self):
        layer = Conv2D(4, 3, stride=2, padding="valid")
        layer.build((3, 9, 9), RNG)
        x = RNG.normal(size=(2, 3, 9, 9))
        out = layer.forward(x)
        assert out.shape == (2,) + layer.output_shape((3, 9, 9))

    def test_same_padding_preserves_hw(self):
        layer = Conv2D(4, 3, padding="same")
        layer.build((1, 7, 7), RNG)
        assert layer.output_shape((1, 7, 7)) == (4, 7, 7)

    def test_known_convolution_value(self):
        layer = Conv2D(1, 2)
        layer.build((1, 2, 2), RNG)
        layer.params()["W"][...] = np.ones((1, 1, 2, 2))
        layer.params()["b"][...] = 1.0
        x = np.arange(4, dtype=float).reshape(1, 1, 2, 2)
        out = layer.forward(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == pytest.approx(0 + 1 + 2 + 3 + 1)


class TestPooling:
    def test_maxpool_gradient(self):
        layer = MaxPool2D(2)
        x = RNG.normal(size=(2, 3, 4, 4))
        check_layer_input_grad(layer, x)

    def test_avgpool_gradient(self):
        layer = AvgPool2D(2)
        x = RNG.normal(size=(2, 3, 4, 4))
        check_layer_input_grad(layer, x)

    def test_maxpool_value(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_value(self):
        layer = AvgPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_pool_overlapping_stride(self):
        layer = MaxPool2D(2, stride=1)
        x = RNG.normal(size=(1, 1, 4, 4))
        assert layer.forward(x).shape == (1, 1, 3, 3)


class TestDense:
    def test_input_gradient(self):
        layer = Dense(4)
        layer.build((6,), RNG)
        x = RNG.normal(size=(3, 6))
        check_layer_input_grad(layer, x)

    def test_param_gradients(self):
        layer = Dense(3)
        layer.build((5,), RNG)
        x = RNG.normal(size=(2, 5))
        check_layer_param_grads(layer, x)

    def test_rejects_spatial_input(self):
        layer = Dense(3)
        with pytest.raises(ValueError, match="Flatten"):
            layer.build((2, 3, 3), RNG)


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Sigmoid, Tanh])
    def test_gradient(self, cls):
        layer = cls()
        x = RNG.normal(size=(3, 4)) + 0.1  # avoid ReLU kink at 0
        check_layer_input_grad(layer, x)

    def test_relu_clamps_negative(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.all(out >= 0) and np.all(out <= 1)
        assert out[0, 1] == pytest.approx(0.5)


class TestFlattenDropout:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = RNG.normal(size=(2, 3, 4, 5))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.5)
        layer.build((10,), RNG)
        x = RNG.normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.5)
        layer.build((1000,), np.random.default_rng(0))
        x = np.ones((50, 1000))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLosses:
    def test_cross_entropy_gradient(self):
        loss = CrossEntropyLoss()
        logits = RNG.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        loss.forward(logits, labels)
        analytic = loss.backward()

        def f():
            return CrossEntropyLoss().forward(logits, labels)

        num = numeric_grad(f, logits)
        np.testing.assert_allclose(analytic, num, rtol=TOL, atol=TOL)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        val = CrossEntropyLoss().forward(logits, np.array([0, 1]))
        assert val == pytest.approx(0.0, abs=1e-6)

    def test_mse_gradient(self):
        loss = MSELoss()
        pred = RNG.normal(size=(3, 2))
        target = RNG.normal(size=(3, 2))
        loss.forward(pred, target)
        analytic = loss.backward()

        def f():
            return MSELoss().forward(pred, target)

        num = numeric_grad(f, pred)
        np.testing.assert_allclose(analytic, num, rtol=TOL, atol=TOL)


class TestEndToEndGradient:
    def test_full_cnn_param_gradients(self):
        rng = np.random.default_rng(7)
        model = Sequential(
            [Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(3)]
        )
        model.build((1, 6, 6), rng)
        x = rng.normal(size=(2, 1, 6, 6))
        y = np.array([0, 2])
        loss = CrossEntropyLoss()

        model.zero_grads()
        logits = model.forward(x, training=True)
        loss.forward(logits, y)
        model.backward(loss.backward())

        for slot_id, params, grads in model.param_slots():
            for name, p in params.items():
                analytic = grads[name].copy()

                def f():
                    out = model.forward(x, training=True)
                    return CrossEntropyLoss().forward(out, y)

                num = numeric_grad(f, p)
                np.testing.assert_allclose(
                    analytic, num, rtol=5e-4, atol=5e-4, err_msg=f"{slot_id}.{name}"
                )
