"""Edge-case tests for the network layer, executor, and cost model."""

import numpy as np
import pytest

from repro.core import (
    CommunicationCostModel,
    DistributedExecutor,
    UnitGraph,
    grid_correspondence_assignment,
)
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.wsn import GridTopology, Message, Network, SensorNode, Topology

RNG = np.random.default_rng(111)


class TestBroadcast:
    def test_reaches_all_alive(self):
        topo = GridTopology(3, 3)
        net = Network(topo)
        reached = net.broadcast_from(4, n_values=2)
        assert reached == 8

    def test_skips_dead_nodes(self):
        topo = GridTopology(3, 3)
        topo.node(8).fail()
        net = Network(topo)
        reached = net.broadcast_from(0, n_values=1)
        assert reached == 7

    def test_partitioned_broadcast_partial(self):
        nodes = [
            SensorNode(0, (0.0, 0.0)),
            SensorNode(1, (1.0, 0.0)),
            SensorNode(2, (100.0, 0.0)),
        ]
        net = Network(Topology(nodes, comm_range=1.5))
        reached = net.broadcast_from(0, n_values=1)
        assert reached == 1
        assert net.stats.dropped == 1


class TestCostModelUnroutable:
    def test_partition_counts_unroutable(self):
        model = Sequential([
            Conv2D(1, 2), ReLU(), Flatten(), Dense(2),
        ])
        model.build((1, 4, 4), RNG)
        graph = UnitGraph(model)
        topo = GridTopology(2, 2, spacing=1.0, comm_range=1.2)
        placement = grid_correspondence_assignment(graph, topo)
        # Disconnect one node after placement.
        topo.node(3).fail()
        report = CommunicationCostModel(graph, topo).inference_cost(placement)
        assert report.unroutable > 0


class TestExecutorWithLossyNetwork:
    def test_losses_recorded_but_math_intact(self):
        """Message drops show up in the stats; the logits (computed by
        the ideal-math model) are unchanged — the executor's traffic
        accounting and value computation are deliberately decoupled."""
        model = Sequential([
            Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(4), Dense(2),
        ])
        model.build((1, 8, 8), RNG)
        graph = UnitGraph(model)
        topo = GridTopology(3, 3)
        placement = grid_correspondence_assignment(graph, topo)
        net = Network(topo, loss_probability=0.3, max_retries=0,
                      rng=np.random.default_rng(0))
        executor = DistributedExecutor(model, graph, placement, net)
        x = RNG.normal(size=(1, 1, 8, 8))
        out = executor.forward(x, count_traffic=True)
        np.testing.assert_allclose(out, model.forward(x))
        assert net.stats.dropped > 0
        assert net.stats.delivered + net.stats.dropped == net.stats.sent


class TestMessageKinds:
    def test_layer_tags_in_messages(self):
        model = Sequential([
            Conv2D(1, 3), ReLU(), Flatten(), Dense(2),
        ])
        model.build((1, 5, 5), RNG)
        graph = UnitGraph(model)
        topo = GridTopology(2, 2)
        placement = grid_correspondence_assignment(graph, topo)
        cm = CommunicationCostModel(graph, topo)
        transfers = cm.transfers(placement)
        layer_indices = {t[0] for t in transfers}
        # At least the conv (0) and the dense (3) move data.
        assert 0 in layer_indices or 3 in layer_indices

    def test_message_defaults(self):
        msg = Message(src=0, dst=1, n_values=4)
        assert msg.kind == "data"
