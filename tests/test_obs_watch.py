"""Watchdog semantics: rule kinds, hysteresis, label aggregation,
rule-file parsing, alert determinism, and the health table."""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    Rule,
    Telemetry,
    Watchdog,
    health_table,
    load_rules,
    parse_rules,
)


def _driven(rules, drive, ticks, tel=None, window=4, clock=None):
    """Run `ticks` recorder samples, calling drive(metrics, i) before
    each; returns (recorder, watchdog)."""
    tel = tel if tel is not None else Telemetry()
    rec = FlightRecorder(tel, window=window, clock=clock)
    dog = Watchdog(rules, telemetry=tel)
    rec.attach(dog)
    for i in range(ticks):
        drive(tel.metrics, i)
        rec.sample()
    return rec, dog


class TestRuleValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="non-empty name"):
            Rule(name="", series="x")
        with pytest.raises(ValueError, match="needs a series"):
            Rule(name="r", series="")
        with pytest.raises(ValueError, match="unknown kind"):
            Rule(name="r", series="x", kind="median")
        with pytest.raises(ValueError, match="unknown op"):
            Rule(name="r", series="x", op="==")
        with pytest.raises(ValueError, match="unknown severity"):
            Rule(name="r", series="x", severity="fatal")
        with pytest.raises(ValueError, match="windows"):
            Rule(name="r", series="x", windows=0)
        with pytest.raises(ValueError, match="quantile"):
            Rule(name="r", series="x", kind="quantile", quantile=1.5)

    def test_error_names_the_rule(self):
        with pytest.raises(ValueError, match="'bad-rule'"):
            Rule(name="bad-rule", series="x", kind="nope")

    def test_duplicate_rule_names_rejected(self):
        rules = [Rule(name="r", series="a"), Rule(name="r", series="b")]
        with pytest.raises(ValueError, match="duplicate rule names: r"):
            Watchdog(rules)


class TestRuleKinds:
    def test_threshold_fires_on_level(self):
        rule = Rule(name="deep", series="depth", kind="threshold",
                    op=">=", value=3.0)

        def drive(metrics, i):
            metrics.gauge("depth").set(float(i))

        _, dog = _driven([rule], drive, ticks=5)
        assert len(dog.alerts) == 1
        a = dog.alerts[0]
        assert (a.rule, a.observed, a.index) == ("deep", 3.0, 3)

    def test_rate_fires_on_windowed_rate(self):
        rule = Rule(name="drops", series="net.dropped", kind="rate",
                    op=">", value=0.0, severity="critical")

        def drive(metrics, i):
            if i >= 2:
                metrics.counter("net.dropped").inc()

        state = {"t": 0.0}

        def clock():
            state["t"] += 1.0
            return state["t"]

        _, dog = _driven([rule], drive, ticks=4, clock=clock)
        assert len(dog.alerts) == 1
        assert dog.alerts[0].severity == "critical"

    def test_absence_fires_when_nothing_flows(self):
        rule = Rule(name="stalled", series="net.delivered",
                    kind="absence", windows=2)

        def drive(metrics, i):
            if i < 2:
                metrics.counter("net.delivered").inc()

        _, dog = _driven([rule], drive, ticks=5)
        # Ticks 2,3 are the first two consecutive zero-delta ticks.
        assert [a.index for a in dog.alerts] == [3]

    def test_absence_fires_for_never_seen_series(self):
        rule = Rule(name="missing", series="ghost", kind="absence")
        _, dog = _driven([rule], lambda m, i: None, ticks=1)
        assert len(dog.alerts) == 1
        assert dog.alerts[0].observed == 0.0

    def test_trend_watches_per_tick_delta(self):
        # "loss non-decreasing for 2 ticks" on a gauge.
        rule = Rule(name="plateau", series="train.loss", kind="trend",
                    op=">=", value=0.0, windows=2)
        losses = [1.0, 0.8, 0.8, 0.9, 0.5]

        def drive(metrics, i):
            metrics.gauge("train.loss").set(losses[i])

        _, dog = _driven([rule], drive, ticks=5)
        # Deltas: 0.0 (first gauge tick), -0.2, 0.0, +0.1, -0.4 —
        # ticks 2 and 3 are the consecutive non-decreasing pair.
        assert [a.index for a in dog.alerts] == [3]

    def test_quantile_fires_on_windowed_p99(self):
        rule = Rule(name="p99", series="lat", kind="quantile",
                    quantile=0.99, op=">", value=0.5,
                    severity="critical")

        def drive(metrics, i):
            h = metrics.histogram("lat", buckets=(0.1, 0.5, 2.0))
            h.observe(0.05 if i < 2 else 1.5)

        _, dog = _driven([rule], drive, ticks=4)
        assert len(dog.alerts) == 1
        assert dog.alerts[0].observed == 2.0

    def test_quantile_empty_window_does_not_fire(self):
        rule = Rule(name="p99", series="lat", kind="quantile",
                    op=">", value=0.1)

        def drive(metrics, i):
            metrics.histogram("lat", buckets=(1.0,))  # no observations

        _, dog = _driven([rule], drive, ticks=3)
        assert dog.alerts == []


class TestHysteresis:
    def test_needs_consecutive_windows(self):
        rule = Rule(name="deep", series="depth", op=">", value=0.0,
                    windows=3)
        pattern = [1, 1, 0, 1, 1, 1]  # broken streak, then a full one

        def drive(metrics, i):
            metrics.gauge("depth").set(float(pattern[i]))

        _, dog = _driven([rule], drive, ticks=6)
        assert [a.index for a in dog.alerts] == [5]

    def test_sustained_breach_fires_once(self):
        rule = Rule(name="deep", series="depth", op=">", value=0.0)

        def drive(metrics, i):
            metrics.gauge("depth").set(1.0)

        _, dog = _driven([rule], drive, ticks=5)
        assert len(dog.alerts) == 1
        assert len(dog.active()) == 1

    def test_rearms_after_recovery(self):
        rule = Rule(name="deep", series="depth", op=">", value=0.0)
        pattern = [1, 1, 0, 1]

        def drive(metrics, i):
            metrics.gauge("depth").set(float(pattern[i]))

        _, dog = _driven([rule], drive, ticks=4)
        assert [a.index for a in dog.alerts] == [0, 3]

    def test_clear_resets_state(self):
        rule = Rule(name="deep", series="depth", op=">", value=0.0)

        def drive(metrics, i):
            metrics.gauge("depth").set(1.0)

        _, dog = _driven([rule], drive, ticks=2)
        dog.clear()
        assert dog.alerts == []
        assert dog.active() == []
        assert dog.critical_count() == 0


class TestLabelAggregation:
    def test_unlabeled_rule_sums_all_series(self):
        rule = Rule(name="fallbacks", series="f", op=">", value=2.5)

        def drive(metrics, i):
            metrics.counter("f", tenant="a").inc()
            metrics.counter("f", tenant="b").inc(2)

        _, dog = _driven([rule], drive, ticks=1)
        assert dog.alerts[0].observed == 3.0

    def test_label_filter_is_subset_match(self):
        rule = Rule(name="a-only", series="f", op=">", value=0.0,
                    labels=(("tenant", "a"),))

        def drive(metrics, i):
            metrics.counter("f", tenant="a", reason="x").inc()
            metrics.counter("f", tenant="b").inc(100)

        _, dog = _driven([rule], drive, ticks=1)
        assert dog.alerts[0].observed == 1.0


class TestTelemetryEmission:
    def test_firing_emits_instant_and_counter(self):
        tel = Telemetry()
        rule = Rule(name="deep", series="depth", op=">", value=0.0,
                    severity="critical")

        def drive(metrics, i):
            metrics.gauge("depth").set(1.0)

        _, dog = _driven([rule], drive, ticks=1, tel=tel)
        assert dog.critical_count() == 1
        instants = [e for e in tel.tracer.events
                    if e.name == "watch.alert" and e.phase == "i"]
        assert len(instants) == 1
        assert instants[0].attrs["rule"] == "deep"
        counter = tel.metrics.counter(
            "watch.alerts", rule="deep", severity="critical"
        )
        assert counter.value == 1.0


class TestAlertExport:
    @staticmethod
    def _run():
        rule = Rule(name="deep", series="depth", op=">", value=0.5)
        pattern = [1, 0, 1, 0]

        def drive(metrics, i):
            metrics.gauge("depth").set(float(pattern[i]))

        return _driven([rule], drive, ticks=4)

    def test_jsonl_is_canonical_and_deterministic(self):
        (_, a), (_, b) = self._run(), self._run()
        assert a.to_jsonl() == b.to_jsonl()
        assert a.digest() == b.digest()
        for line in a.to_jsonl().split("\n"):
            doc = json.loads(line)
            assert set(doc) == {"i", "t", "rule", "series", "kind",
                                "severity", "observed", "op", "value"}
            assert json.dumps(
                doc, sort_keys=True, separators=(",", ":")
            ) == line


class TestRuleFiles:
    def test_parse_rules_document_and_bare_list(self):
        doc = {"rules": [{"name": "r", "series": "x"}]}
        assert parse_rules(doc)[0].name == "r"
        assert parse_rules(doc["rules"])[0].name == "r"

    def test_parse_rules_labels_sorted(self):
        rules = parse_rules([{
            "name": "r", "series": "x",
            "labels": {"tenant": "a", "cause": "loss"},
        }])
        assert rules[0].labels == (("cause", "loss"), ("tenant", "a"))

    def test_parse_rules_rejects_garbage(self):
        with pytest.raises(ValueError, match='"rules" list'):
            parse_rules({"rule": []})
        with pytest.raises(ValueError, match="must be a list"):
            parse_rules({"rules": "nope"})
        with pytest.raises(ValueError, match="rule #0 must be an object"):
            parse_rules(["nope"])
        with pytest.raises(ValueError, match="unknown keys threshold"):
            parse_rules([{"name": "r", "series": "x", "threshold": 1}])
        with pytest.raises(ValueError, match="labels must be an object"):
            parse_rules([{"name": "r", "series": "x", "labels": [1]}])
        with pytest.raises(ValueError, match="rule #0"):
            parse_rules([{"series": "x"}])  # missing name -> TypeError

    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "p99", "series": "lat", "kind": "quantile",
             "op": ">", "value": 0.25, "windows": 2,
             "severity": "critical"},
        ]}))
        rules = load_rules(path)
        assert rules[0] == Rule(
            name="p99", series="lat", kind="quantile", op=">",
            value=0.25, windows=2, severity="critical",
        )

    def test_load_rules_invalid_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid rule file"):
            load_rules(path)


class TestHealthTable:
    def test_table_shows_rules_and_footer(self):
        rules = [
            Rule(name="deep", series="depth", op=">", value=0.5),
            Rule(name="stalled", series="ghost", kind="absence",
                 severity="critical"),
        ]

        def drive(metrics, i):
            metrics.gauge("depth").set(1.0)

        rec, dog = _driven(rules, drive, ticks=3)
        table = health_table(rec, dog)
        assert "deep" in table and "FIRING" in table
        assert "delta == 0" in table
        assert "samples=3 retained=3" in table
        assert "critical=1" in table

    def test_empty_recorder(self):
        rec = FlightRecorder(Telemetry())
        dog = Watchdog([Rule(name="r", series="x")])
        table = health_table(rec, dog)
        assert "samples=0" in table
