"""Smoke and unit tests for the ``repro bench`` harness.

One real quick-mode suite run is shared across the CLI tests (module
fixture) so tier-1 stays fast; comparison/threshold semantics are
pinned on hand-built reports.
"""

import json

import pytest

from repro.cli import main
from repro.perf import (
    BenchProtocol,
    Comparison,
    CounterRegistry,
    SCHEMA_VERSION,
    SUITE_NAME,
    TimingStats,
    compare_reports,
    input_digest,
    measure,
    regressions,
    run_suite,
    validate_report,
)


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    """One real quick bench run through the CLI, parsed back."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_quick.json"
    assert main(["bench", "--quick", "--out", str(out)]) == 0
    return out, json.loads(out.read_text())


class TestBenchCli:
    def test_quick_run_writes_schema_valid_report(self, quick_report):
        __, report = quick_report
        assert validate_report(report) == []
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["suite"] == SUITE_NAME
        assert report["protocol"]["quick"] is True
        names = [b["name"] for b in report["benchmarks"]]
        assert "traffic_replay_batched" in names
        assert "forward_masked_dead20" in names
        assert "sim_event_throughput" in names
        assert "sweep_scaling" in names
        assert "city_scale" in names

    def test_sweep_scaling_records_honest_counters(self, quick_report):
        """The scaling benchmark must carry the context needed to read
        its speedup honestly: the core count, the point count, and the
        parallel-equals-serial identity check."""
        __, report = quick_report
        bench = next(
            b for b in report["benchmarks"] if b["name"] == "sweep_scaling"
        )
        counters = bench["counters"]
        assert counters["cpu_count"] >= 1
        assert counters["n_points"] >= 4
        assert counters["reports_identical"] == 1
        assert counters["speedup_jobs2"] > 0
        assert bench["timing"]["best_s"] > 0

    def test_local_backward_entry_certifies_parity(self, quick_report):
        """The training-backward benchmark must carry the untimed
        parity evidence next to its speedup: gradient agreement and
        counter-exact update-skip accounting under a dead-node set."""
        __, report = quick_report
        bench = next(
            b for b in report["benchmarks"] if b["name"] == "local_backward"
        )
        counters = bench["counters"]
        assert counters["parity_max_abs_diff"] <= 1e-12
        assert counters["update_skips_match"] == 1
        assert counters["update_skips"] > 0
        assert counters["n_dead_nodes"] >= 1
        assert bench["params"]["dead_nodes"]
        assert bench["reference_timing"]["best_s"] > 0
        assert bench["speedup"] > 0

    def test_forward_plan_entry_certifies_differential_parity(
        self, quick_report
    ):
        """The compiled-plan benchmark must carry its differential
        evidence next to the speedup: byte-identical logits and exactly
        equal traffic counters against the event-driven oracle, plus
        the plan's shape (links, transfer groups) so a committed entry
        documents what was compiled."""
        __, report = quick_report
        bench = next(
            b for b in report["benchmarks"] if b["name"] == "forward_plan"
        )
        counters = bench["counters"]
        assert counters["parity_logits_identical"] == 1
        assert counters["parity_stats_equal"] == 1
        assert counters["n_links"] > 0
        assert counters["n_transfer_groups"] > 0
        assert counters["values_per_inference"] > 0
        assert counters["batch"] == 8
        assert bench["reference_timing"]["best_s"] > 0
        assert bench["speedup"] > 0

    def test_forward_e2e_and_plan_measure_different_paths(
        self, quick_report
    ):
        """forward_e2e stays pinned to the event-driven path; the
        compiled comparison lives only in forward_plan.  Guarding the
        pin here keeps a future default flip from silently turning
        forward_e2e into a compiled-vs-compiled no-op."""
        __, report = quick_report
        by_name = {b["name"]: b for b in report["benchmarks"]}
        assert "forward_plan" in by_name
        assert "forward_e2e" in by_name
        # The plan benchmark's reference IS the e2e fast path; if the
        # pin broke, timing and reference would converge to ~1x.  The
        # compiled path must be well clear of that even in quick mode.
        assert by_name["forward_plan"]["speedup"] > 2.0

    def test_train_epoch_entry_reports_reference_and_parity(
        self, quick_report
    ):
        """train_epoch now times vectorized vs. reference end-to-end
        and certifies one-epoch weight parity untimed."""
        __, report = quick_report
        bench = next(
            b for b in report["benchmarks"] if b["name"] == "train_epoch"
        )
        assert bench["reference_timing"]["best_s"] > 0
        assert bench["speedup"] > 0
        assert bench["counters"]["parity_max_abs_diff"] <= 1e-9

    def test_serve_throughput_certifies_parity_and_latency(
        self, quick_report
    ):
        """The serving bench's contract: parity counters certify the
        untimed byte-identity and metrics-reconciliation asserts ran
        (they surface in the bench table's parity column), and the
        headline numbers are present and sane."""
        __, report = quick_report
        bench = next(
            b for b in report["benchmarks"]
            if b["name"] == "serve_throughput"
        )
        counters = bench["counters"]
        assert counters["parity_logits_bitwise"] == 1.0
        assert counters["parity_metrics_reconciled"] == 1.0
        assert counters["rps"] > 0
        assert 0 < counters["p50_ms"] <= counters["p99_ms"]
        assert 1.0 <= counters["mean_batch"] <= bench["params"]["max_batch"]
        assert bench["reference_timing"]["best_s"] > 0
        assert bench["params"]["concurrency"] >= bench["params"]["max_batch"]

    def test_suite_fans_out_with_jobs(self):
        """``run_suite(jobs=2)`` runs the pooled benchmarks in worker
        processes and maps the results back in canonical order; the
        report stays schema-valid and names match the serial suite."""
        report = run_suite(quick=True, seed=0, jobs=2)
        assert validate_report(report) == []
        assert report["protocol"]["jobs"] == 2
        names = [b["name"] for b in report["benchmarks"]]
        serial_names = [
            "im2col_unfold", "forward_e2e", "forward_plan",
            "forward_masked_dead20", "local_backward", "train_epoch",
            "sim_event_throughput", "traffic_replay_batched",
            "telemetry_overhead", "timeline_overhead", "sweep_scaling",
            "serve_throughput", "city_scale",
        ]
        assert set(names) == set(serial_names)

    def test_city_scale_certifies_parity_and_build_budget(
        self, quick_report
    ):
        """The city-scale bench's contract: every untimed parity assert
        ran (neighbor lists, graph, routes, counter-exact stats, Choco
        RNG stream, unroutable attribution — surfaced as 1.0 counters),
        the sparse graph build beats its O(n^2) reference, and the
        full-graph construction stays inside the documented budget.
        The committed full-mode BENCH_perf.json pins the 10k-node
        >= 20x headline; quick mode only sanity-bounds the shape."""
        __, report = quick_report
        bench = next(
            b for b in report["benchmarks"] if b["name"] == "city_scale"
        )
        counters = bench["counters"]
        for parity in (
            "parity_graph_identical",
            "parity_neighbors_identical",
            "parity_routes_identical",
            "parity_stats_equal",
            "parity_choco_identical",
            "parity_unroutable_attributed",
        ):
            assert counters[parity] == 1.0, parity
        assert counters["n_nodes"] >= 1000
        assert counters["n_edges"] > 0
        assert counters["n_dead"] > 0
        # The acceptance budget is < 5 s for the FULL 10k build; the
        # quick-mode district must come in far under it.
        assert counters["graph_build_s"] < 5.0
        assert counters["reference_graph_build_s"] > counters["graph_build_s"]
        assert bench["reference_timing"]["best_s"] > 0
        # Even quick mode's smaller district must show a decisive win
        # over the brute-force path (full mode lands far higher).
        assert bench["speedup"] > 3.0
        assert bench["params"]["comm_range"] > 0

    def test_city_scale_rides_the_regression_gate(self, quick_report,
                                                  tmp_path, capsys):
        """Satellite pin: a synthetic slowdown in city_scale ALONE must
        trip the exit-3 gate — i.e. the new benchmark is genuinely
        inside the `--against` comparison, not just present in the
        report."""
        __, report = quick_report
        doctored = json.loads(json.dumps(report))
        for bench in doctored["benchmarks"]:
            if bench["name"] != "city_scale":
                continue
            timing = bench["timing"]
            timing["best_s"] /= 100.0
            timing["mean_s"] /= 100.0
            timing["median_s"] /= 100.0
            timing["runs_s"] = [r / 100.0 for r in timing["runs_s"]]
        baseline = tmp_path / "city_fast_baseline.json"
        baseline.write_text(json.dumps(doctored))
        out = tmp_path / "current.json"
        code = main(["bench", "--quick", "--out", str(out),
                     "--against", str(baseline)])
        assert code == 3
        captured = capsys.readouterr().out
        assert "REGRESSED" in captured
        assert "city_scale" in captured

    def test_against_identical_run_passes(self, quick_report, tmp_path,
                                          capsys):
        """Re-running against the just-written baseline passes.  The
        threshold is generous because quick-mode timings on a loaded
        CI box jitter; the tight-threshold semantics are pinned on
        hand-built reports in TestCompareSemantics."""
        baseline_path, __ = quick_report
        out = tmp_path / "rerun.json"
        code = main(["bench", "--quick", "--out", str(out),
                     "--against", str(baseline_path),
                     "--threshold", "900"])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_against_detects_synthetic_slowdown(self, quick_report, tmp_path,
                                                capsys):
        """A baseline twice as fast as reality == the current code got
        50% slower; the gate must trip (exit 3)."""
        __, report = quick_report
        doctored = json.loads(json.dumps(report))
        for bench in doctored["benchmarks"]:
            timing = bench["timing"]
            timing["best_s"] /= 2.0
            timing["mean_s"] /= 2.0
            timing["median_s"] /= 2.0
            timing["runs_s"] = [r / 2.0 for r in timing["runs_s"]]
        baseline = tmp_path / "fast_baseline.json"
        baseline.write_text(json.dumps(doctored))
        out = tmp_path / "current.json"
        code = main(["bench", "--quick", "--out", str(out),
                     "--against", str(baseline)])
        assert code == 3
        assert "REGRESSED" in capsys.readouterr().out

    def test_against_missing_baseline_is_usage_error(self, tmp_path):
        out = tmp_path / "current.json"
        code = main(["bench", "--quick", "--out", str(out),
                     "--against", str(tmp_path / "nope.json")])
        assert code == 2

    def test_against_invalid_json_baseline_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        out = tmp_path / "current.json"
        code = main(["bench", "--quick", "--out", str(out),
                     "--against", str(bad)])
        assert code == 2

    def test_against_schema_invalid_baseline_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad_schema.json"
        bad.write_text(json.dumps({"schema_version": 99, "benchmarks": []}))
        out = tmp_path / "current.json"
        code = main(["bench", "--quick", "--out", str(out),
                     "--against", str(bad)])
        assert code == 2


class TestSeedStability:
    def test_same_seed_same_digests(self, quick_report):
        """Two runs with the same seed see byte-identical inputs —
        the reproducibility contract behind the regression gate."""
        __, first = quick_report
        second = run_suite(quick=True, seed=0)
        digests_a = {b["name"]: b["input_digest"] for b in first["benchmarks"]}
        digests_b = {b["name"]: b["input_digest"] for b in second["benchmarks"]}
        assert digests_a == digests_b

    def test_different_seed_different_digests(self, quick_report):
        __, first = quick_report
        other = run_suite(quick=True, seed=1)
        digests_a = {b["name"]: b["input_digest"] for b in first["benchmarks"]}
        digests_b = {b["name"]: b["input_digest"] for b in other["benchmarks"]}
        assert any(digests_a[n] != digests_b[n] for n in digests_a)


def make_report(best_by_name):
    """Minimal schema-valid report with the given best_s values."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "protocol": {"quick": True, "seed": 0, "warmup": 1, "repeat": 2},
        "env": {"python": "3", "numpy": "2", "platform": "test"},
        "benchmarks": [
            {
                "name": name,
                "params": {},
                "input_digest": "0" * 64,
                "timing": {"best_s": best, "mean_s": best, "median_s": best,
                           "std_s": 0.0, "runs_s": [best]},
            }
            for name, best in best_by_name.items()
        ],
    }


class TestCompareSemantics:
    def test_threshold_is_strict(self):
        baseline = make_report({"a": 1.0, "b": 1.0, "c": 1.0})
        current = make_report({"a": 1.25, "b": 1.2500001, "c": 0.5})
        comps = {c.name: c for c in compare_reports(current, baseline, 25.0)}
        assert not comps["a"].regressed      # exactly at threshold: pass
        assert comps["b"].regressed          # just past it: fail
        assert not comps["c"].regressed      # faster: pass
        assert [c.name for c in regressions(comps.values())] == ["b"]

    def test_missing_benchmark_counts_as_regression(self):
        baseline = make_report({"a": 1.0, "gone": 1.0})
        current = make_report({"a": 1.0})
        comps = compare_reports(current, baseline)
        gone = next(c for c in comps if c.name == "gone")
        assert gone.missing and gone.regressed

    def test_new_benchmark_in_current_is_ignored(self):
        baseline = make_report({"a": 1.0})
        current = make_report({"a": 1.0, "new": 100.0})
        comps = compare_reports(current, baseline)
        assert [c.name for c in comps] == ["a"]
        assert not comps[0].regressed

    def test_negative_threshold_rejected(self):
        report = make_report({"a": 1.0})
        with pytest.raises(ValueError):
            compare_reports(report, report, threshold_pct=-1.0)

    def test_make_report_is_schema_valid(self):
        assert validate_report(make_report({"a": 1.0})) == []

    def test_validate_catches_common_corruption(self):
        report = make_report({"a": 1.0})
        report["benchmarks"][0]["timing"]["best_s"] = -1.0
        assert validate_report(report)
        report = make_report({"a": 1.0})
        report["benchmarks"].append(dict(report["benchmarks"][0]))
        assert any("duplicate" in e for e in validate_report(report))
        assert validate_report([]) == ["report must be a JSON object"]


class TestTimingPrimitives:
    def test_protocol_validation(self):
        with pytest.raises(ValueError):
            BenchProtocol(warmup=-1, repeat=3)
        with pytest.raises(ValueError):
            BenchProtocol(warmup=0, repeat=0)

    def test_measure_runs_warmup_plus_repeat(self):
        calls = []
        stats = measure(lambda: calls.append(1),
                        BenchProtocol(warmup=2, repeat=3))
        assert len(calls) == 5          # warmup + timed
        assert len(stats.runs_s) == 3   # only timed runs recorded
        assert stats.best_s == min(stats.runs_s)
        assert stats.best_s <= stats.median_s

    def test_measure_setup_untimed_and_passed_through(self):
        seen = []
        stats = measure(seen.append, BenchProtocol(warmup=1, repeat=2),
                        setup=lambda: "fixture")
        assert seen == ["fixture"] * 3
        assert stats.to_dict()["std_s"] >= 0.0

    def test_counter_registry(self):
        counters = CounterRegistry()
        counters.set("x", 2)
        counters.add("x", 3)
        assert counters.to_dict() == {"x": 5.0}

    def test_input_digest_sensitivity(self):
        import numpy as np
        a = np.arange(6, dtype=np.float64)
        assert input_digest(a) == input_digest(a.copy())
        assert input_digest(a) != input_digest(a.astype(np.float32))
        assert input_digest(a) != input_digest(a.reshape(2, 3))
        assert input_digest(a) != input_digest(a, extra="salt")
        assert len(input_digest(a)) == 64

    def test_comparison_dataclass_fields(self):
        comp = Comparison(name="a", baseline_best_s=1.0, current_best_s=2.0,
                          ratio=2.0, regressed=True)
        assert not comp.missing


class TestTelemetryOverheadBench:
    def test_entry_shape_and_budget(self, quick_report):
        """The tracer-overhead case reports both sides of the ratio and
        its documented budget.  The committed full-mode BENCH_perf.json
        is the authoritative budget evidence; here we only sanity-bound
        the quick run loosely so tier-1 cannot flake on scheduler
        noise."""
        __, report = quick_report
        (entry,) = [
            b for b in report["benchmarks"]
            if b["name"] == "telemetry_overhead"
        ]
        assert entry["reference_timing"]["best_s"] > 0
        assert entry["timing"]["best_s"] > 0
        counters = entry["counters"]
        assert counters["budget_pct"] == 5.0
        assert counters["spans_per_run"] > 0
        assert counters["overhead_pct"] < 50.0
        # Interleaved-pairs protocol: both sides ran the same number of
        # times, more than the plain repeat count.
        assert len(entry["timing"]["runs_s"]) == len(
            entry["reference_timing"]["runs_s"]
        )
        assert len(entry["timing"]["runs_s"]) > report["protocol"]["repeat"]

    def test_timeline_entry_shape_budget_and_parity(self, quick_report):
        """The flight-recorder overhead case: same interleaved-pairs
        protocol and 5% budget as the tracer bench, plus the two pins
        specific to the recorder — a near-zero null-backend hook cost
        and byte-identical timeline digests across seeded runs (the
        parity evidence the bench table surfaces)."""
        __, report = quick_report
        (entry,) = [
            b for b in report["benchmarks"]
            if b["name"] == "timeline_overhead"
        ]
        assert entry["reference_timing"]["best_s"] > 0
        assert entry["timing"]["best_s"] > 0
        counters = entry["counters"]
        assert counters["budget_pct"] == 5.0
        assert counters["series_per_sample"] > 0
        assert counters["overhead_pct"] < 50.0  # loose: quick-mode noise
        # The disabled recorder's sample_if_due is one attribute check:
        # nanoseconds, not microseconds.
        assert 0 <= counters["null_sample_ns"] < 2000.0
        assert counters["parity_digest_identical"] == 1.0
        assert len(entry["timing"]["runs_s"]) == len(
            entry["reference_timing"]["runs_s"]
        )

    def test_bench_trace_writes_valid_jsonl(self, tmp_path):
        from repro import obs

        out = tmp_path / "bench.json"
        trace = tmp_path / "bench_trace.jsonl"
        assert main(["bench", "--quick", "--out", str(out),
                     "--trace", str(trace)]) == 0
        events = obs.load_trace_file(trace)
        assert events
        for event in events[:200]:
            assert obs.validate_event(event) == [], event
