"""Tests for CSI gesture recognition (survey §II.B)."""

import numpy as np
import pytest

from repro.contexts import GestureRecognizer
from repro.sensing import CsiGestureScenario, Gesture, gesture_trajectory

RNG = np.random.default_rng(81)


class TestTrajectories:
    def test_shapes(self):
        for gesture in Gesture:
            path = gesture_trajectory(gesture, 20, (3.0, 2.0), 0.5, RNG)
            assert path.shape == (20, 2)

    def test_swipes_are_mirrored(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        right = gesture_trajectory(Gesture.SWIPE_RIGHT, 20, (3.0, 2.0), 0.5, rng1)
        left = gesture_trajectory(Gesture.SWIPE_LEFT, 20, (3.0, 2.0), 0.5, rng2)
        assert right[-1, 0] > right[0, 0]
        assert left[-1, 0] < left[0, 0]

    def test_circle_returns_to_start(self):
        path = gesture_trajectory(Gesture.CIRCLE, 40, (3.0, 2.0), 0.5,
                                  np.random.default_rng(1))
        assert np.linalg.norm(path[-1] - path[0]) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            gesture_trajectory(Gesture.PUSH, 2, (0, 0), 0.5, RNG)


class TestScenario:
    def test_execution_feature_shape(self):
        scenario = CsiGestureScenario(n_frames=8)
        frames = scenario.capture_execution(Gesture.PUSH, RNG)
        assert frames.shape == (8, 624)

    def test_sequence_features_dimension(self):
        scenario = CsiGestureScenario(n_frames=9)
        frames = scenario.capture_execution(Gesture.WAVE, RNG)
        feats = scenario.sequence_features(frames)
        # 6 x 624 thirds stats + 8 energy samples
        assert feats.shape == (6 * 624 + 8,)

    def test_dataset_balanced(self):
        scenario = CsiGestureScenario(n_frames=6)
        x, y = scenario.generate_dataset(2, RNG)
        assert len(x) == 2 * len(Gesture)
        assert np.bincount(y).tolist() == [2] * len(Gesture)

    def test_validation(self):
        scenario = CsiGestureScenario()
        with pytest.raises(ValueError):
            scenario.generate_dataset(0, RNG)
        with pytest.raises(ValueError):
            scenario.sequence_features(np.zeros((2, 624)))


class TestRecognizer:
    def test_infer_before_learn_raises(self):
        with pytest.raises(RuntimeError):
            GestureRecognizer().infer(np.zeros((1, 10)))

    def test_recognizes_above_chance(self):
        """Coarse but fast configuration: clearly above the 20 %
        chance level (the full 40-frame configuration reaches ~90 %,
        see the A2 ablation bench)."""
        recognizer = GestureRecognizer(CsiGestureScenario(n_frames=24))
        result = recognizer.evaluate(8, np.random.default_rng(3))
        assert result.accuracy > 0.4
        assert result.confusion.shape == (5, 5)
