"""Lint: telemetry must stay lazy.

No module outside ``src/repro/obs/`` may import ``repro.obs`` at module
scope — instrumented subsystems resolve :func:`repro.obs.current`
inside function bodies instead, so importing (say) ``repro.wsn`` never
pays for the telemetry layer and the disabled path stays a single
``telemetry.enabled`` attribute check.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def iter_source_files():
    for path in sorted(SRC.rglob("*.py")):
        if "obs" in path.relative_to(SRC).parts[:1]:
            continue
        yield path


def module_scope_obs_imports(tree):
    """Import statements touching repro.obs outside function bodies.

    Walks module, class, and control-flow bodies but does not descend
    into function definitions — imports there are the sanctioned lazy
    form.
    """
    offenders = []
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Import):
            if any(a.name == "repro.obs" or a.name.startswith("repro.obs.")
                   for a in node.names):
                offenders.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "repro.obs" or mod.startswith("repro.obs."):
                offenders.append(node.lineno)
            elif mod == "repro" and any(a.name == "obs" for a in node.names):
                offenders.append(node.lineno)
        else:
            stack.extend(ast.iter_child_nodes(node))
    return offenders


def test_no_module_scope_obs_imports():
    offenders = []
    for path in iter_source_files():
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno in module_scope_obs_imports(tree):
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}")
    assert offenders == [], (
        "repro.obs imported at module scope (must be lazy, inside a "
        f"function body): {offenders}"
    )


def test_lint_covers_the_instrumented_modules():
    """The sweep actually visits the files the telemetry layer hooks."""
    names = {p.relative_to(SRC).as_posix() for p in iter_source_files()}
    for expected in (
        "sim/engine.py", "wsn/network.py", "wsn/mac.py",
        "backscatter/mac.py", "core/executor.py", "energy/manager.py",
        "faults/runtime.py", "cli.py",
    ):
        assert expected in names
    assert not any(name.startswith("obs/") for name in names)


def test_lint_detects_a_violation():
    """The detector itself works on all three import spellings."""
    for src in (
        "import repro.obs\n",
        "from repro.obs import current\n",
        "from repro import obs\n",
        "if True:\n    from repro.obs.trace import Tracer\n",
    ):
        assert module_scope_obs_imports(ast.parse(src)), src
    for src in (
        "def f():\n    from repro.obs import current\n",
        "from repro.wsn import Network\n",
        "import repro.observatory\n",
    ):
        assert not module_scope_obs_imports(ast.parse(src)), src
