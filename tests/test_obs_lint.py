"""Lint: telemetry must stay lazy, and process pools must stay in
``repro.par``.

No module outside ``src/repro/obs/`` may import ``repro.obs`` at module
scope — instrumented subsystems resolve :func:`repro.obs.current`
inside function bodies instead, so importing (say) ``repro.wsn`` never
pays for the telemetry layer and the disabled path stays a single
``telemetry.enabled`` attribute check.

Likewise, no module outside ``src/repro/par/`` may import
``multiprocessing``/``concurrent.futures`` at module scope or create
worker pools at all: spawn children re-import every module an argument
pickle drags in, so a module-scope pool would fork-bomb the sweep
engine, and scattered pool creation would bypass its determinism
contract (seed substreams, canonical merge, daemonic-nesting guard).

And ``repro.serve`` (outside its clock shim, ``serve/clock.py``) may
not touch raw timing primitives — no ``time`` imports, no
``asyncio.sleep`` with a literal delay — so the fake-clock test
harness stays authoritative over every batching window.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def iter_source_files():
    for path in sorted(SRC.rglob("*.py")):
        if "obs" in path.relative_to(SRC).parts[:1]:
            continue
        yield path


def module_scope_obs_imports(tree):
    """Import statements touching repro.obs outside function bodies.

    Walks module, class, and control-flow bodies but does not descend
    into function definitions — imports there are the sanctioned lazy
    form.
    """
    offenders = []
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Import):
            if any(a.name == "repro.obs" or a.name.startswith("repro.obs.")
                   for a in node.names):
                offenders.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "repro.obs" or mod.startswith("repro.obs."):
                offenders.append(node.lineno)
            elif mod == "repro" and any(a.name == "obs" for a in node.names):
                offenders.append(node.lineno)
        else:
            stack.extend(ast.iter_child_nodes(node))
    return offenders


def test_no_module_scope_obs_imports():
    offenders = []
    for path in iter_source_files():
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno in module_scope_obs_imports(tree):
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}")
    assert offenders == [], (
        "repro.obs imported at module scope (must be lazy, inside a "
        f"function body): {offenders}"
    )


def test_lint_covers_the_instrumented_modules():
    """The sweep actually visits the files the telemetry layer hooks."""
    names = {p.relative_to(SRC).as_posix() for p in iter_source_files()}
    for expected in (
        "sim/engine.py", "wsn/network.py", "wsn/mac.py",
        "backscatter/mac.py", "core/executor.py", "energy/manager.py",
        "faults/runtime.py", "cli.py",
    ):
        assert expected in names
    assert not any(name.startswith("obs/") for name in names)


#: Modules whose import at module scope (outside repro.par) is banned.
_MP_MODULES = ("multiprocessing", "concurrent.futures")
#: Pool constructors that may only be called from repro.par.
_POOL_NAMES = {"Pool", "ThreadPool", "ProcessPoolExecutor",
               "ThreadPoolExecutor"}


def iter_non_par_source_files():
    for path in sorted(SRC.rglob("*.py")):
        if path.relative_to(SRC).parts[:1] == ("par",):
            continue
        yield path


def module_scope_mp_usage(tree):
    """Multiprocessing imports at module scope, and pool construction
    anywhere, as ``(lineno, reason)`` pairs.

    Imports inside function bodies are tolerated (lazy, never paid by
    spawn children at re-import time); pool creation is flagged at any
    depth because pools belong to :mod:`repro.par` alone.
    """
    offenders = []
    stack = [(node, False) for node in tree.body]
    while stack:
        node, in_function = stack.pop()
        if isinstance(node, ast.Import):
            if not in_function and any(
                a.name in _MP_MODULES
                or a.name.startswith(tuple(m + "." for m in _MP_MODULES))
                for a in node.names
            ):
                offenders.append((node.lineno, "module-scope mp import"))
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if not in_function and (
                mod in _MP_MODULES
                or mod.startswith(tuple(m + "." for m in _MP_MODULES))
                or (mod == "concurrent"
                    and any(a.name == "futures" for a in node.names))
            ):
                offenders.append((node.lineno, "module-scope mp import"))
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name in _POOL_NAMES:
                offenders.append((node.lineno, f"pool creation ({name})"))
        entering = in_function or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        stack.extend(
            (child, entering) for child in ast.iter_child_nodes(node)
        )
    return offenders


def test_no_mp_usage_outside_par():
    offenders = []
    for path in iter_non_par_source_files():
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, reason in module_scope_mp_usage(tree):
            offenders.append(
                f"{path.relative_to(SRC.parent)}:{lineno} ({reason})"
            )
    assert offenders == [], (
        "multiprocessing belongs to repro.par (deterministic sweep "
        f"engine); found: {offenders}"
    )


def test_mp_lint_detects_violations():
    """The detector flags each banned spelling, and only those."""
    for src in (
        "import multiprocessing\n",
        "import multiprocessing.pool\n",
        "from multiprocessing import Pool\n",
        "from concurrent.futures import ProcessPoolExecutor\n",
        "from concurrent import futures\n",
        "def f():\n    import multiprocessing as mp\n    mp.Pool(2)\n",
        "def f():\n    from concurrent.futures import "
        "ProcessPoolExecutor\n    ProcessPoolExecutor()\n",
    ):
        assert module_scope_mp_usage(ast.parse(src)), src
    for src in (
        "def f():\n    import multiprocessing\n",
        "def f():\n    from concurrent.futures import as_completed\n",
        "import os\n",
        "from repro.par import run_sweep\n",
    ):
        assert not module_scope_mp_usage(ast.parse(src)), src


def test_lint_detects_a_violation():
    """The detector itself works on all three import spellings."""
    for src in (
        "import repro.obs\n",
        "from repro.obs import current\n",
        "from repro import obs\n",
        "if True:\n    from repro.obs.trace import Tracer\n",
    ):
        assert module_scope_obs_imports(ast.parse(src)), src
    for src in (
        "def f():\n    from repro.obs import current\n",
        "from repro.wsn import Network\n",
        "import repro.observatory\n",
    ):
        assert not module_scope_obs_imports(ast.parse(src)), src


def sim_imports_any_scope(tree):
    """Every import statement touching ``repro.sim``, at any depth —
    function bodies included.  The compiled-plan package's whole value
    is that its hot path can never re-enter the event loop, so even
    the lazy-import escape hatch is banned there."""
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name == "repro.sim" or a.name.startswith("repro.sim.")
                   for a in node.names):
                offenders.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "repro.sim" or mod.startswith("repro.sim."):
                offenders.append(node.lineno)
            elif mod == "repro" and any(a.name == "sim" for a in node.names):
                offenders.append(node.lineno)
    return offenders


def test_compiled_package_never_imports_sim():
    compiled = SRC / "core" / "compiled"
    files = sorted(compiled.rglob("*.py"))
    assert files, "repro.core.compiled package is missing"
    offenders = []
    for path in files:
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno in sim_imports_any_scope(tree):
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}")
    assert offenders == [], (
        "repro.core.compiled must never import repro.sim (the compiled "
        f"hot path may not re-enter the event loop): {offenders}"
    )


def serve_timing_usage(tree):
    """Raw timing primitives in serving code, at any depth, as
    ``(lineno, reason)`` pairs.

    Everything in ``repro.serve`` must take time from the clock shim
    (``clock.now()`` / ``clock.call_later``) so the fake-clock harness
    stays authoritative: any ``time`` import (``time.time`` /
    ``monotonic`` / ``perf_counter`` / ``sleep`` ride in on it) or an
    ``asyncio.sleep`` with a literal delay is a hidden dependence on
    real time that would make batching windows untestable without
    real sleeps.
    """
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name == "time" or a.name.startswith("time.")
                   for a in node.names):
                offenders.append((node.lineno, "time import"))
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "time" or mod.startswith("time."):
                offenders.append((node.lineno, "time import"))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "sleep"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "asyncio"
                    and any(isinstance(a, ast.Constant)
                            for a in node.args)):
                offenders.append(
                    (node.lineno, "asyncio.sleep with literal delay")
                )
    return offenders


def test_serve_package_timing_goes_through_the_clock_shim():
    """Only ``repro/serve/clock.py`` may touch timing primitives."""
    serve = SRC / "serve"
    files = sorted(serve.rglob("*.py"))
    assert files, "repro.serve package is missing"
    names = {p.name for p in files}
    for expected in ("clock.py", "dispatch.py", "http.py", "tenants.py",
                     "testing.py", "loadgen.py"):
        assert expected in names
    offenders = []
    for path in files:
        if path.name == "clock.py":
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, reason in serve_timing_usage(tree):
            offenders.append(
                f"{path.relative_to(SRC.parent)}:{lineno} ({reason})"
            )
    assert offenders == [], (
        "repro.serve must take time from the clock shim "
        f"(repro/serve/clock.py), not raw primitives: {offenders}"
    )


def test_serve_timing_lint_detects_violations():
    for src in (
        "import time\n",
        "import time as t\n",
        "from time import monotonic\n",
        "from time import perf_counter as pc\n",
        "def f():\n    import time\n    return time.time()\n",
        "import asyncio\nasync def f():\n    await asyncio.sleep(0.01)\n",
        "import asyncio\nasync def f():\n    await asyncio.sleep(0)\n",
    ):
        assert serve_timing_usage(ast.parse(src)), src
    for src in (
        "import asyncio\n",
        "async def f(clock):\n    return clock.now()\n",
        "def f(clock, cb):\n    return clock.call_later(0.01, cb)\n",
        "import asyncio\nasync def f(d):\n    await asyncio.sleep(d)\n",
        "import timeit\n",
        "from timeit import timeit\n",
    ):
        assert not serve_timing_usage(ast.parse(src)), src


def timeline_forbidden_imports(tree):
    """Imports of ``time`` or ``repro.sim`` at any depth, as
    ``(lineno, reason)`` pairs.

    The flight recorder and watchdog exist to make long-running
    behaviour *deterministically* observable: time reaches them only
    through the pluggable clock they are handed, and they must never
    be able to re-enter the event loop.  Even the lazy-import escape
    hatch is banned in ``repro.obs.timeline`` / ``repro.obs.watch``.
    """
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time" or alias.name.startswith("time."):
                    offenders.append((node.lineno, "time import"))
                elif (alias.name == "repro.sim"
                        or alias.name.startswith("repro.sim.")):
                    offenders.append((node.lineno, "repro.sim import"))
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "time" or mod.startswith("time."):
                offenders.append((node.lineno, "time import"))
            elif mod == "repro.sim" or mod.startswith("repro.sim."):
                offenders.append((node.lineno, "repro.sim import"))
            elif mod == "repro" and any(a.name == "sim" for a in node.names):
                offenders.append((node.lineno, "repro.sim import"))
    return offenders


def test_timeline_and_watch_never_import_time_or_sim():
    offenders = []
    for name in ("timeline.py", "watch.py"):
        path = SRC / "obs" / name
        assert path.is_file(), f"repro/obs/{name} is missing"
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, reason in timeline_forbidden_imports(tree):
            offenders.append(
                f"{path.relative_to(SRC.parent)}:{lineno} ({reason})"
            )
    assert offenders == [], (
        "the flight recorder / watchdog see time only through their "
        f"pluggable clock, never wall time or the sim: {offenders}"
    )


def test_timeline_lint_detects_violations():
    for src in (
        "import time\n",
        "import time as t\n",
        "from time import monotonic\n",
        "import repro.sim\n",
        "from repro.sim import Simulator\n",
        "from repro.sim.engine import Simulator\n",
        "from repro import sim\n",
        "def f():\n    import time\n",                    # lazy too
        "def f():\n    from repro.sim import Simulator\n",
    ):
        assert timeline_forbidden_imports(ast.parse(src)), src
    for src in (
        "import timeit\n",
        "from timeit import timeit\n",
        "import repro.simulation\n",
        "from repro.obs.trace import canonical_value\n",
        "def f(clock):\n    return clock()\n",
    ):
        assert not timeline_forbidden_imports(ast.parse(src)), src


def networkx_imports_any_scope(tree):
    """Every import statement touching ``networkx``, at any depth —
    function bodies included.

    The spatial layer's whole value is that city-scale neighborhood
    queries and adjacency construction run on flat ndarrays; a
    ``networkx`` import in a hot query path would mean per-query graph
    objects sneaking back in.  Graphs are built by the topology layer
    *from* the sparse arrays, never the other way around, so even the
    lazy-import escape hatch is banned in these files.
    """
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name == "networkx" or a.name.startswith("networkx.")
                   for a in node.names):
                offenders.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "networkx" or mod.startswith("networkx."):
                offenders.append(node.lineno)
    return offenders


#: The wsn hot query paths: spatial index + CSR adjacency, the node
#: model (distance kernel), the generator suite, the accounting-heavy
#: network layer, and the Choco round.  ``topology.py``/``routing.py``
#: legitimately *assemble* nx graphs and are exempt.
_NX_BANNED_WSN_FILES = (
    "spatial.py", "node.py", "generators.py", "network.py", "choco.py",
)


def test_wsn_hot_paths_never_import_networkx():
    offenders = []
    for name in _NX_BANNED_WSN_FILES:
        path = SRC / "wsn" / name
        assert path.is_file(), f"repro/wsn/{name} is missing"
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno in networkx_imports_any_scope(tree):
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}")
    assert offenders == [], (
        "networkx must stay out of the wsn hot query paths (graphs are "
        f"built from the sparse arrays, not vice versa): {offenders}"
    )


def test_networkx_lint_detects_violations():
    for src in (
        "import networkx\n",
        "import networkx as nx\n",
        "import networkx.algorithms\n",
        "from networkx import Graph\n",
        "from networkx.algorithms import shortest_path\n",
        "def f():\n    import networkx as nx\n    return nx.Graph()\n",
        "class C:\n    def m(self):\n        from networkx import Graph\n",
    ):
        assert networkx_imports_any_scope(ast.parse(src)), src
    for src in (
        "import numpy as np\n",
        "from repro.wsn.spatial import GridHashIndex\n",
        "import networkx_compat\n",
        "from networkx_compat import thing\n",
        "def f(g):\n    return g.number_of_edges()\n",
    ):
        assert not networkx_imports_any_scope(ast.parse(src)), src


def test_sim_lint_detects_violations():
    for src in (
        "import repro.sim\n",
        "import repro.sim.engine\n",
        "from repro.sim import Simulator\n",
        "from repro.sim.engine import Simulator\n",
        "from repro import sim\n",
        "def f():\n    from repro.sim import Simulator\n",  # lazy too
        "class C:\n    def m(self):\n        import repro.sim\n",
    ):
        assert sim_imports_any_scope(ast.parse(src)), src
    for src in (
        "from repro.wsn import Network\n",
        "import repro.simulation\n",
        "from repro.core.compiled.plan import CompiledPlan\n",
    ):
        assert not sim_imports_any_scope(ast.parse(src)), src
