"""Smoke tests: the fast example scripts run end to end.

The two training-heavy examples (elderly fall monitoring, full
device-free sensing) are exercised by their benchmark counterparts
instead; here we guard the rest against interface drift.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "sociogram_kindergarten.py",
    "zero_energy_backscatter_network.py",
    "train_congestion_monitoring.py",
    "autonomous_hvac.py",
    "design_support_planner.py",
    "athlete_body_sensing.py",
    "wildlife_and_slope_watch.py",
    "fault_injection_demo.py",
    # Binds an ephemeral port (port=0) — safe to run anywhere without
    # port-allocation flakes.
    "serve_quickstart.py",
]


def run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert len(out) > 100  # it actually reported something


def test_examples_all_have_main():
    for path in EXAMPLES.glob("*.py"):
        source = path.read_text()
        assert "def main()" in source, path.name
        assert '__name__ == "__main__"' in source, path.name


@pytest.mark.parametrize(
    "name", sorted(p.name for p in EXAMPLES.glob("*.py"))
)
def test_import_has_no_side_effects(name, capsys):
    """Importing an example must do no work: no output, no training.

    This is the spawn-safety contract the parallel sweep engine relies
    on — the ``example`` sweep task imports these modules inside
    worker processes, so anything running at import time would run
    once per worker (and garble the captured stdout fingerprints).
    """
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(
        f"example_import_check_{name[:-3]}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    captured = capsys.readouterr()
    assert captured.out == "", f"{name} printed at import time"
    assert captured.err == "", f"{name} wrote stderr at import time"
    assert callable(getattr(module, "main", None)), name
