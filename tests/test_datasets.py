"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    IrGaitConfig,
    LoungeDatasetConfig,
    generate_ir_gait_episodes,
    generate_lounge_dataset,
    windows_from_episodes,
)

RNG = np.random.default_rng(5)


class TestLounge:
    def test_paper_dimensions(self):
        cfg = LoungeDatasetConfig(n_samples=50)
        fields, labels = generate_lounge_dataset(cfg, RNG)
        assert fields.shape == (50, 1, 17, 25)
        assert labels.shape == (50,)
        assert set(np.unique(labels)) <= {0, 1}

    def test_default_matches_paper_counts(self):
        cfg = LoungeDatasetConfig()
        assert cfg.n_samples == 2961
        assert (cfg.rows, cfg.cols) == (17, 25)

    def test_temperatures_physical(self):
        cfg = LoungeDatasetConfig(n_samples=100)
        fields, __ = generate_lounge_dataset(cfg, RNG)
        assert fields.min() > 5.0
        assert fields.max() < 45.0

    def test_both_classes_present(self):
        cfg = LoungeDatasetConfig(n_samples=400)
        __, labels = generate_lounge_dataset(cfg, np.random.default_rng(1))
        assert 0.05 < labels.mean() < 0.95

    def test_seasonal_cooling(self):
        cfg = LoungeDatasetConfig(n_samples=2000)
        fields, __ = generate_lounge_dataset(cfg, np.random.default_rng(2))
        first = fields[:200].mean()
        last = fields[-200:].mean()
        assert last < first - 1.0

    def test_deterministic_given_seed(self):
        cfg = LoungeDatasetConfig(n_samples=20)
        f1, l1 = generate_lounge_dataset(cfg, np.random.default_rng(9))
        f2, l2 = generate_lounge_dataset(cfg, np.random.default_rng(9))
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(l1, l2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoungeDatasetConfig(rows=0)
        with pytest.raises(ValueError):
            LoungeDatasetConfig(comfort_low_c=30.0, comfort_high_c=20.0)


class TestIrGait:
    def test_paper_dimensions(self):
        cfg = IrGaitConfig()
        assert cfg.n_episodes == 55
        assert cfg.n_frames == 66
        assert cfg.n_subjects == 5
        assert cfg.window == 10

    def test_episode_shapes_and_labels(self):
        cfg = IrGaitConfig(n_episodes=12)
        eps = generate_ir_gait_episodes(cfg, RNG)
        assert len(eps) == 12
        for ep in eps:
            assert ep.frames.shape == (66, 8, 8)
            assert ep.label in (0, 1)
            assert 0 <= ep.subject < 5
        labels = [ep.label for ep in eps]
        assert 0 < sum(labels) < 12

    def test_fall_lowers_centroid(self):
        cfg = IrGaitConfig(n_episodes=20, noise=0.0)
        eps = generate_ir_gait_episodes(cfg, np.random.default_rng(3))
        rows = np.arange(cfg.grid_rows)

        def centroid_y(frame):
            total = frame.sum()
            return (frame.sum(axis=1) * rows).sum() / total if total > 0 else 0.0

        for ep in eps:
            start = centroid_y(ep.frames[2])
            end = centroid_y(ep.frames[-1])
            if ep.label == 1:
                assert end > start + 1.0  # body ends near the floor
            else:
                assert abs(end - start) < 1.5

    def test_windows_count_and_shapes(self):
        cfg = IrGaitConfig(n_episodes=5)
        eps = generate_ir_gait_episodes(cfg, RNG)
        x, y, ei = windows_from_episodes(eps, window=10, stride=1)
        per_episode = 66 - 10 + 1
        assert x.shape == (5 * per_episode, 10, 8, 8)
        assert len(y) == len(ei) == len(x)

    def test_jitter_augmentation_multiplies(self):
        cfg = IrGaitConfig(n_episodes=3)
        eps = generate_ir_gait_episodes(cfg, RNG)
        x1, __, __ = windows_from_episodes(eps, window=10, stride=3)
        x2, __, __ = windows_from_episodes(
            eps, window=10, stride=3, rng=RNG, jitter_copies=2
        )
        assert len(x2) == 2 * len(x1)

    def test_paper_scale_window_count(self):
        """55 episodes x 57 windows x 2 copies ~ 6,270, the paper's
        6,610 order of magnitude."""
        cfg = IrGaitConfig()
        eps = generate_ir_gait_episodes(cfg, np.random.default_rng(0))
        x, __, __ = windows_from_episodes(
            eps, window=10, stride=1, rng=np.random.default_rng(0), jitter_copies=2
        )
        assert 5500 <= len(x) <= 7500

    def test_windows_validation(self):
        eps = generate_ir_gait_episodes(IrGaitConfig(n_episodes=2), RNG)
        with pytest.raises(ValueError):
            windows_from_episodes(eps, window=0)
        with pytest.raises(ValueError):
            windows_from_episodes(eps, jitter_copies=2)  # rng missing

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IrGaitConfig(window=100)
        with pytest.raises(ValueError):
            IrGaitConfig(fall_fraction=1.5)
