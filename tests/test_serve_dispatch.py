"""Deterministic dispatcher tests on the fake clock.

Every batching behavior here — window flushes, early flushes, the
synchronous fast path, tenant isolation, hot-swap races, backpressure,
shutdown draining — runs on :class:`repro.serve.testing.FakeClock`
with zero real sleeps and no sockets: time moves only when a test
calls ``advance``, so the assertions are exact (a request's recorded
latency *equals* the batching window, not approximately).
"""

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    DispatcherClosed,
    PlainFuture,
    TenantOverloaded,
    UnknownTenant,
)
from repro.serve.testing import FakeClock, ServeHarness


class TestFakeClock:
    def test_now_advances_exactly(self):
        clock = FakeClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5

    def test_callbacks_fire_in_deadline_then_schedule_order(self):
        clock = FakeClock()
        fired = []
        clock.call_later(0.2, lambda: fired.append("b"))
        clock.call_later(0.1, lambda: fired.append("a"))
        clock.call_later(0.2, lambda: fired.append("c"))
        assert clock.advance(0.3) == 3
        assert fired == ["a", "b", "c"]

    def test_cancelled_timer_never_fires(self):
        clock = FakeClock()
        fired = []
        timer = clock.call_later(0.1, lambda: fired.append("x"))
        timer.cancel()
        assert clock.advance(1.0) == 0
        assert fired == []
        assert clock.scheduled() == 0

    def test_callback_scheduled_during_advance_fires_within_it(self):
        clock = FakeClock()
        fired = []
        clock.call_later(
            0.1, lambda: clock.call_later(0.1, lambda: fired.append("inner"))
        )
        assert clock.advance(0.3) == 2
        assert fired == ["inner"]

    def test_callback_sees_its_deadline_as_now(self):
        clock = FakeClock()
        seen = []
        clock.call_later(0.25, lambda: seen.append(clock.now()))
        clock.advance(1.0)
        assert seen == [0.25]
        assert clock.now() == 1.0

    def test_negative_delay_rejected(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            clock.call_later(-0.1, lambda: None)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_run_due_fires_zero_delay_without_moving_time(self):
        clock = FakeClock()
        fired = []
        clock.call_later(0.0, lambda: fired.append("x"))
        assert clock.run_due() == 1
        assert fired == ["x"]
        assert clock.now() == 0.0


class TestBatchingWindows:
    def test_max_delay_flush(self):
        """Requests below max_batch wait out the window, then flush
        together; recorded latency is exactly the window."""
        h = ServeHarness(policy=BatchPolicy(max_batch=4, max_delay=0.01))
        futures = [h.submit("fall") for __ in range(3)]
        assert not any(f.done() for f in futures)
        h.advance(0.005)
        assert not any(f.done() for f in futures)
        h.advance(0.005)  # 0.005 + 0.005 == 0.01 exactly in binary
        assert all(f.done() for f in futures)
        results = [f.result() for f in futures]
        assert all(r.batch_size == 3 for r in results)
        assert all(r.latency_s == 0.01 for r in results)
        assert h.metric("serve.batches", tenant="fall") == 1.0

    def test_max_batch_flushes_early(self):
        """The window closes the instant it fills — no clock advance."""
        h = ServeHarness(policy=BatchPolicy(max_batch=4, max_delay=10.0))
        futures = [h.submit("fall") for __ in range(4)]
        assert all(f.done() for f in futures)
        assert all(f.result().batch_size == 4 for f in futures)
        assert all(f.result().latency_s == 0.0 for f in futures)
        # The armed timer was cancelled; nothing is left to fire.
        assert h.clock.scheduled() == 0

    def test_single_request_fast_path(self):
        """max_delay=0 serves each request synchronously on arrival."""
        h = ServeHarness(policy=BatchPolicy(max_batch=8, max_delay=0.0))
        future = h.submit("fall")
        assert future.done()
        result = future.result()
        assert result.batch_size == 1
        assert result.latency_s == 0.0
        assert h.clock.scheduled() == 0

    def test_fresh_window_rearms_after_flush(self):
        h = ServeHarness(policy=BatchPolicy(max_batch=4, max_delay=0.01))
        first = h.submit("fall")
        h.advance(0.01)
        assert first.done()
        second = h.submit("fall")
        assert not second.done()
        h.advance(0.01)
        assert second.done()
        assert second.result().latency_s == 0.01

    def test_served_logits_match_direct_forward_bitwise(self):
        h = ServeHarness(policy=BatchPolicy(max_batch=4, max_delay=0.01))
        xs = [h.make_input("fall") for __ in range(3)]
        futures = [h.submit("fall", x) for x in xs]
        h.advance(0.01)
        direct = h.direct("fall", xs)
        for i, future in enumerate(futures):
            assert future.result().logits.tobytes() == direct[i].tobytes()

    def test_prediction_metadata(self):
        h = ServeHarness(policy=BatchPolicy(max_batch=1, max_delay=0.0))
        result = h.submit("fall").result()
        assert result.tenant == "fall"
        assert result.pred == int(result.logits.argmax())
        assert result.label == h.pool.require("fall").labels[result.pred]
        assert result.served_by == "plan"


class TestTenantIsolation:
    def test_lanes_batch_independently(self):
        """Filling one tenant's lane flushes it alone; the other
        tenant's window keeps waiting."""
        h = ServeHarness(policy=BatchPolicy(max_batch=2, max_delay=0.01))
        slow = h.submit("hvac")
        fast = [h.submit("fall") for __ in range(2)]
        assert all(f.done() for f in fast)
        assert not slow.done()
        h.advance(0.01)
        assert slow.done()
        assert slow.result().batch_size == 1

    def test_fault_fallback_never_delays_the_other_tenant(self):
        """One tenant falling back to the event-driven oracle is
        invisible to the other lane: same flush time, same plan
        serving, exact latency."""
        h = ServeHarness(policy=BatchPolicy(max_batch=8, max_delay=0.01))
        fall = h.pool.require("fall")
        list(fall.topology)[4].alive = False  # forces the oracle
        assert fall.fault_state() == "node-down"
        faulted = h.submit("fall")
        healthy = h.submit("hvac")
        h.advance(0.01)
        assert faulted.result().served_by == "fallback:node-down"
        assert healthy.result().served_by == "plan"
        assert healthy.result().latency_s == 0.01
        assert h.metric(
            "serve.plan_fallbacks", tenant="fall", reason="node-down"
        ) == 1.0
        assert h.metric("serve.plan_runs", tenant="hvac") == 1.0

    def test_fallback_accounts_traffic_for_real_requests_only(self):
        """The oracle replay accounts exactly the flushed request
        count — pad rows never inflate the network counters."""
        h = ServeHarness(policy=BatchPolicy(max_batch=8, max_delay=0.01))
        fall = h.pool.require("fall")
        list(fall.topology)[4].alive = False
        baseline = fall.network.stats.sent
        h.submit("fall")
        h.advance(0.01)
        sent_one = fall.network.stats.sent - baseline
        assert sent_one > 0
        for __ in range(3):
            h.submit("fall")
        h.advance(0.01)
        assert fall.network.stats.sent - baseline == 4 * sent_one


class TestHotSwap:
    def test_swap_lands_before_flush_serves_from_new_tenant(self):
        """The dispatcher resolves the tenant at flush time, so a
        queued request is served by the tenant installed when the
        window closes."""
        h = ServeHarness(policy=BatchPolicy(max_batch=8, max_delay=0.01))
        x = h.make_input("fall")
        future = h.submit("fall", x)
        replacement = h.build_tenant("fall", seed=9)
        h.pool.swap(replacement)
        h.advance(0.01)
        expected = replacement.direct_forward(x[np.newaxis])[0]
        assert future.result().logits.tobytes() == expected.tobytes()

    def test_swap_to_other_shape_fails_queued_requests_individually(self):
        h = ServeHarness(policy=BatchPolicy(max_batch=8, max_delay=0.01))
        future = h.submit("fall")
        swapped = h.build_tenant("hvac", name="fall")  # (1,10,10) now
        h.pool.swap(swapped)
        ok = h.submit("fall", np.zeros(swapped.input_shape))
        h.advance(0.01)
        with pytest.raises(ValueError, match="swapped"):
            future.result()
        assert ok.result().logits.shape == (2,)

    def test_removed_tenant_fails_queued_requests(self):
        h = ServeHarness(policy=BatchPolicy(max_batch=8, max_delay=0.01))
        future = h.submit("fall")
        h.pool.remove("fall")
        h.advance(0.01)
        with pytest.raises(UnknownTenant):
            future.result()

    def test_unknown_tenant_rejected_at_submit(self):
        h = ServeHarness()
        with pytest.raises(UnknownTenant):
            h.submit("nope", np.zeros((1, 8, 8)))

    def test_wrong_shape_rejected_at_submit(self):
        h = ServeHarness()
        with pytest.raises(ValueError, match="shape"):
            h.submit("fall", np.zeros((1, 9, 9)))


class TestBackpressureAndDrain:
    def test_overloaded_lane_rejects_with_503_semantics(self):
        h = ServeHarness(
            policy=BatchPolicy(max_batch=99, max_delay=1.0, max_pending=2)
        )
        h.submit("fall")
        h.submit("fall")
        with pytest.raises(TenantOverloaded) as exc_info:
            h.submit("fall")
        assert exc_info.value.tenant == "fall"
        assert exc_info.value.pending == 2
        assert h.metric("serve.rejected", tenant="fall") == 1.0
        # The other tenant's lane is unaffected by the full one.
        assert not h.submit("hvac").done()

    def test_drain_serves_everything_in_flight(self):
        """Shutdown flushes every lane's pending window; accepted work
        is never dropped."""
        h = ServeHarness(policy=BatchPolicy(max_batch=8, max_delay=10.0))
        futures = [h.submit("fall") for __ in range(3)]
        futures.append(h.submit("hvac"))
        assert not any(f.done() for f in futures)
        h.drain()
        assert all(f.done() for f in futures)
        assert all(f.result().logits.shape == (2,) for f in futures)

    def test_drained_dispatcher_refuses_new_work(self):
        h = ServeHarness()
        h.drain()
        with pytest.raises(DispatcherClosed):
            h.submit("fall")

    def test_drain_is_idempotent(self):
        h = ServeHarness()
        h.drain()
        h.drain()


class TestMetricsInvariants:
    def test_requests_equal_batch_size_histogram_mass(self):
        """The pinned invariant: every request is observed in exactly
        one batch, so ``serve.requests`` equals the total observation
        mass of the ``serve.batch_size`` histogram."""
        h = ServeHarness(policy=BatchPolicy(max_batch=3, max_delay=0.01))
        for __ in range(7):
            h.submit("fall")
        for __ in range(2):
            h.submit("hvac")
        h.drain()
        assert h.metric_total("serve.requests") == 9.0
        assert h.batch_size_mass() == 9.0
        # 7 fall requests at max_batch=3 -> 3+3+1; hvac -> 2.
        assert h.metric("serve.batches", tenant="fall") == 3.0
        assert h.metric("serve.batches", tenant="hvac") == 1.0

    def test_tenant_served_counter_tracks_requests(self):
        h = ServeHarness(policy=BatchPolicy(max_batch=2, max_delay=0.0))
        for __ in range(3):
            h.submit("fall")
        assert h.pool.require("fall").served == 3


class TestPlainFuture:
    def test_result_and_done_callback(self):
        future = PlainFuture()
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert not future.done()
        future.set_result(42)
        assert future.done()
        assert future.result() == 42
        assert seen == [42]

    def test_exception_path(self):
        future = PlainFuture()
        future.set_exception(ValueError("boom"))
        assert isinstance(future.exception(), ValueError)
        with pytest.raises(ValueError, match="boom"):
            future.result()

    def test_double_resolution_rejected(self):
        future = PlainFuture()
        future.set_result(1)
        with pytest.raises(RuntimeError):
            future.set_result(2)
        with pytest.raises(RuntimeError):
            future.set_exception(ValueError())

    def test_pending_access_rejected(self):
        future = PlainFuture()
        with pytest.raises(RuntimeError):
            future.result()
        with pytest.raises(RuntimeError):
            future.exception()
