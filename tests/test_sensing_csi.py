"""Tests for the CSI channel, 802.11ac feedback, and features."""

import numpy as np
import pytest

from repro.sensing import (
    AntennaPattern,
    Behavior,
    CsiChannelModel,
    CsiLocalizationScenario,
    FEATURE_DIMENSION,
    compress_vmatrix,
    csi_feature_vector,
    default_patterns,
    quantize_angles,
)
from repro.sensing.csi.feedback import num_angles, steering_v

RNG = np.random.default_rng(21)


def random_unitary_tall(n_r, n_c, rng):
    """Random (n_r, n_c) matrix with orthonormal columns."""
    m = rng.normal(size=(n_r, n_r)) + 1j * rng.normal(size=(n_r, n_r))
    q, __ = np.linalg.qr(m)
    return q[:, :n_c]


class TestChannel:
    def _model(self):
        return CsiChannelModel()

    def test_output_shape(self):
        h = self._model().generate((2.0, 2.0), Behavior.STANDING,
                                   AntennaPattern.ALIGNED, RNG)
        assert h.shape == (52, 4, 3)
        assert np.iscomplexobj(h)

    def test_position_changes_channel(self):
        m = self._model()
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        h1 = m.generate((1.0, 1.0), Behavior.STANDING, AntennaPattern.ALIGNED, rng1)
        h2 = m.generate((5.0, 4.0), Behavior.STANDING, AntennaPattern.ALIGNED, rng2)
        assert np.abs(h1 - h2).max() > 0.01

    def test_walking_more_variable_than_standing(self):
        m = self._model()
        def spread(behavior, seed):
            rng = np.random.default_rng(seed)
            hs = np.stack([
                m.generate((3.0, 2.0), behavior, AntennaPattern.ALIGNED, rng)
                for __ in range(20)
            ])
            return float(np.abs(hs - hs.mean(axis=0)).mean())
        assert spread(Behavior.WALKING, 1) > spread(Behavior.STANDING, 1)

    def test_invalid_antenna_count(self):
        with pytest.raises(ValueError):
            CsiChannelModel(n_tx=2, n_rx=3)


class TestFeedback:
    def test_num_angles_4x3_gives_12(self):
        n_phi, n_psi = num_angles(4, 3)
        assert n_phi == 6 and n_psi == 6

    def test_num_angles_validation(self):
        with pytest.raises(ValueError):
            num_angles(2, 3)

    def test_steering_v_orthonormal(self):
        h = RNG.normal(size=(3, 4)) + 1j * RNG.normal(size=(3, 4))
        v = steering_v(h, 3)
        assert v.shape == (4, 3)
        np.testing.assert_allclose(v.conj().T @ v, np.eye(3), atol=1e-10)

    @pytest.mark.parametrize("shape", [(2, 1), (3, 2), (4, 3), (4, 2)])
    def test_angle_counts_match_formula(self, shape):
        v = random_unitary_tall(*shape, rng=RNG)
        phis, psis = compress_vmatrix(v)
        n_phi, n_psi = num_angles(*shape)
        assert len(phis) == n_phi
        assert len(psis) == n_psi

    def test_angle_ranges(self):
        for seed in range(5):
            v = random_unitary_tall(4, 3, np.random.default_rng(seed))
            phis, psis = compress_vmatrix(v)
            assert np.all(phis >= 0) and np.all(phis < 2 * np.pi)
            assert np.all(psis >= 0) and np.all(psis <= np.pi / 2 + 1e-9)

    def test_deterministic(self):
        v = random_unitary_tall(4, 3, np.random.default_rng(2))
        p1 = compress_vmatrix(v)
        p2 = compress_vmatrix(v)
        np.testing.assert_array_equal(p1[0], p2[0])
        np.testing.assert_array_equal(p1[1], p2[1])

    def test_quantization_grid(self):
        phis = np.array([0.1, 1.0, 5.0])
        psis = np.array([0.05, 0.7, 1.5])
        qphi, qpsi = quantize_angles(phis, psis, phi_bits=6, psi_bits=4)
        step_phi = np.pi / 2**5
        step_psi = np.pi / 2**5
        # quantized values sit on the (k + 0.5) grid
        def on_grid(vals, step):
            frac = (vals / step - 0.5) % 1.0
            return np.all(np.minimum(frac, 1.0 - frac) < 1e-6)

        assert on_grid(qphi, step_phi)
        assert on_grid(qpsi, step_psi)
        # quantization error bounded by half a step
        assert np.all(np.abs(qphi - phis) <= step_phi / 2 + 1e-9)

    def test_quantize_validation(self):
        with pytest.raises(ValueError):
            quantize_angles(np.zeros(1), np.zeros(1), phi_bits=0)


class TestFeatures:
    def test_exactly_624_features(self):
        """The paper's headline feature dimensionality."""
        h = CsiChannelModel().generate(
            (2.0, 2.0), Behavior.STANDING, AntennaPattern.ALIGNED, RNG
        )
        f = csi_feature_vector(h)
        assert f.shape == (FEATURE_DIMENSION,)
        assert FEATURE_DIMENSION == 624

    def test_quantize_flag_changes_values(self):
        h = CsiChannelModel().generate(
            (2.0, 2.0), Behavior.STANDING, AntennaPattern.ALIGNED, RNG
        )
        fq = csi_feature_vector(h, quantize=True)
        fr = csi_feature_vector(h, quantize=False)
        assert not np.allclose(fq, fr)
        assert np.abs(fq - fr).max() < 0.2  # quantization is mild

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            csi_feature_vector(np.zeros((4, 3)))


class TestScenario:
    def test_dataset_shapes_single_frame(self):
        scenario = CsiLocalizationScenario()
        pattern = default_patterns()[0]
        x, y = scenario.generate_dataset(pattern, 3, RNG, window=1)
        assert x.shape == (7 * 3, 624)
        assert set(y) == set(range(7))

    def test_dataset_shapes_windowed(self):
        scenario = CsiLocalizationScenario()
        pattern = default_patterns()[0]
        x, y = scenario.generate_dataset(pattern, 2, RNG, window=4)
        assert x.shape == (7 * 2, 4 * 624)

    def test_clutter_ablation_runs(self):
        scenario = CsiLocalizationScenario()
        pattern = default_patterns()[0]
        x, __ = scenario.generate_dataset(
            pattern, 1, RNG, window=2, clutter_paths=3
        )
        assert np.isfinite(x).all()

    def test_six_default_patterns(self):
        names = [p.name for p in default_patterns()]
        assert len(names) == 6
        assert len(set(names)) == 6

    def test_positions_validation(self):
        with pytest.raises(ValueError):
            CsiLocalizationScenario(positions=[(0.0, 0.0)])

    def test_samples_validation(self):
        with pytest.raises(ValueError):
            CsiLocalizationScenario().generate_dataset(
                default_patterns()[0], 0, RNG
            )
