"""E3 — §IV.B: IEEE 802.11ac CSI-feedback localization.

Paper numbers: 624 features per feedback frame; ~96 % accuracy over
seven positions for the best of six behavior/antenna patterns
(walking user, divergent antenna orientations).

We regenerate the six-pattern table on the synthetic channel.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import CsiLocalizationPipeline
from repro.sensing import FEATURE_DIMENSION, default_patterns


@pytest.fixture(scope="module")
def experiment():
    rng = np.random.default_rng(0)
    pipe = CsiLocalizationPipeline()
    results = pipe.evaluate_all_patterns(
        default_patterns(), samples_per_position=20, rng=rng, window=10
    )
    return pipe, results


def test_e3_csi_localization(experiment, benchmark):
    pipe, results = experiment

    print_table(
        "E3: CSI localization over 7 positions (624 features/frame)",
        ["pattern", "accuracy"],
        [[name, f"{res.accuracy:.4f}"] for name, res in results.items()]
        + [["paper best (walk + divergent)", "~0.96"]],
    )

    assert FEATURE_DIMENSION == 624  # the paper's feature count
    best = results["walk-divergent"]
    # The paper's headline: ~96 % in the walking/divergent pattern.
    assert best.accuracy >= 0.9
    # Noisy variants don't beat their clean counterparts.
    assert results["walk-divergent-noisy"].accuracy <= best.accuracy + 0.05
    # Every pattern is far above the 1/7 chance level.
    for res in results.values():
        assert res.accuracy > 0.5

    # Steady-state estimation-phase timing (the already-learned model
    # inferring a batch of captures).
    x, __ = pipe.scenario.generate_dataset(
        default_patterns()[0], 2, np.random.default_rng(1), window=10
    )
    benchmark(lambda: pipe.infer(x))
