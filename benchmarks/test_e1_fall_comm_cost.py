"""E1 — Fig. 10 + §IV.C: fall detection accuracy vs. per-node
communication cost.

Paper numbers: (a) standard CNN, optimal parameters: 91.875 %
accuracy, maximal communication cost 360; (b) heuristic assignment
with feasible parameters: 89.7275 % accuracy, maximal cost 210 — a
~2 % accuracy sacrifice for a ~40 % peak-traffic cut.

We regenerate both configurations end-to-end on the synthetic IR gait
dataset (55 episodes, 66 frames, 10-frame windows — the paper's
geometry) and print the Fig. 10 per-node cost series.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import FallDetectionPipeline
from repro.contexts.fall import FEASIBLE_PARAMS, OPTIMAL_PARAMS
from repro.datasets import IrGaitConfig, generate_ir_gait_episodes, windows_from_episodes


@pytest.fixture(scope="module")
def experiment():
    rng = np.random.default_rng(0)
    episodes = generate_ir_gait_episodes(IrGaitConfig(), rng)
    x, y, ei = windows_from_episodes(episodes, window=10, stride=2)
    # Leave-episodes-out split, stratified by label.
    falls = [i for i, ep in enumerate(episodes) if ep.label == 1]
    walks = [i for i, ep in enumerate(episodes) if ep.label == 0]
    held_out = falls[: len(falls) // 4] + walks[: len(walks) // 4]
    test_mask = np.isin(ei, held_out)
    x_tr, y_tr = x[~test_mask], y[~test_mask]
    x_te, y_te = x[test_mask], y[test_mask]

    pipe = FallDetectionPipeline(node_grid=(4, 4))
    result_a = pipe.run(
        x_tr, y_tr, x_te, y_te, np.random.default_rng(1),
        params=OPTIMAL_PARAMS, assignment="centralized",
        update_mode="exact", epochs=20, lr=2e-3,
    )
    result_b = pipe.run(
        x_tr, y_tr, x_te, y_te, np.random.default_rng(1),
        params=FEASIBLE_PARAMS, assignment="heuristic",
        update_mode="local", epochs=20, lr=2e-3,
    )
    return result_a, result_b, (x_te, y_te)


def test_e1_fall_detection_comm_cost(experiment, benchmark):
    result_a, result_b, (x_te, __) = experiment
    reduction = 1.0 - result_b.max_comm_cost / result_a.max_comm_cost
    gap = result_a.accuracy - result_b.accuracy

    print_table(
        "E1: fall detection (Fig. 10)",
        ["configuration", "accuracy (paper)", "max comm cost (paper)"],
        [
            ["(a) standard CNN, optimal params",
             f"{result_a.accuracy:.4f} (0.9188)",
             f"{result_a.max_comm_cost} (360)"],
            ["(b) heuristic assignment, feasible params",
             f"{result_b.accuracy:.4f} (0.8973)",
             f"{result_b.max_comm_cost} (210)"],
            ["peak-cost reduction", "", f"{reduction:.1%} (40%)"],
            ["accuracy sacrifice", f"{gap:.4f} (~0.02)", ""],
        ],
    )
    print_table(
        "E1: Fig. 10 per-node communication cost",
        ["node", "(a) optimal/centralized", "(b) feasible/heuristic"],
        [
            [str(n), str(ca), str(cb)]
            for n, ca, cb in zip(
                result_a.node_ids, result_a.node_costs(), result_b.node_costs()
            )
        ],
    )

    # Shape assertions: the heuristic cuts the peak by >= 25 % at a
    # small (< 8 %) accuracy cost, and both models genuinely work.
    assert result_a.accuracy > 0.84
    assert result_b.accuracy > 0.80
    assert reduction >= 0.25
    assert gap < 0.08
    # Fig. 10(b)'s point: the distributed placement flattens the
    # distribution — its peak-to-mean ratio is far lower.
    costs_a = np.array(result_a.node_costs(), dtype=float)
    costs_b = np.array(result_b.node_costs(), dtype=float)
    assert costs_b.max() / max(costs_b.mean(), 1.0) < (
        costs_a.max() / max(costs_a.mean(), 1.0)
    )

    # Steady-state timing: one inference batch through the deployed
    # (feasible/heuristic) model.
    batch = x_te[:64]
    benchmark(lambda: result_b.model.forward(batch))
