"""E2 — §IV.C lounge experiment: discomfort detection.

Paper numbers: standard CNN with optimized hyperparameters ~97 %
accuracy; MicroDeep ~95 %; MicroDeep's maximal per-node communication
is just 13 % of the standard version's peak traffic ("MicroDeep can
reduce the peak traffic concentrated onto a single node").

We regenerate on the synthetic lounge field at the paper's scale
(25 x 17 cells, 2,961 samples, 50 sensor nodes).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import DiscomfortPipeline
from repro.datasets import LoungeDatasetConfig, generate_lounge_dataset


@pytest.fixture(scope="module")
def experiment():
    rng = np.random.default_rng(0)
    x, y = generate_lounge_dataset(LoungeDatasetConfig(), rng)
    order = np.random.default_rng(1).permutation(len(x))
    x, y = x[order], y[order]
    split = int(len(x) * 0.75)
    x_tr, y_tr = x[:split][:1500], y[:split][:1500]
    x_te, y_te = x[split:], y[split:]

    pipe = DiscomfortPipeline(node_grid=(5, 10))  # 50 sensors, as the paper
    standard = pipe.run(
        x_tr, y_tr, x_te, y_te, np.random.default_rng(2),
        assignment="centralized", update_mode="exact", epochs=12,
    )
    microdeep = pipe.run(
        x_tr, y_tr, x_te, y_te, np.random.default_rng(2),
        assignment="heuristic", update_mode="local", epochs=12,
    )
    return standard, microdeep, (x_te, y_te)


def test_e2_lounge_discomfort(experiment, benchmark):
    standard, microdeep, (x_te, __) = experiment
    peak_ratio = microdeep.max_comm_cost / standard.max_comm_cost

    print_table(
        "E2: lounge discomfort detection",
        ["configuration", "accuracy (paper)", "max comm cost"],
        [
            ["standard CNN (centralized, exact)",
             f"{standard.accuracy:.4f} (~0.97)", str(standard.max_comm_cost)],
            ["MicroDeep (heuristic, local update)",
             f"{microdeep.accuracy:.4f} (~0.95)", str(microdeep.max_comm_cost)],
            ["peak ratio MicroDeep/standard", "", f"{peak_ratio:.1%} (13%)"],
        ],
    )

    # Shape: both accurate, MicroDeep within a few points of standard,
    # and the peak traffic a small fraction of the centralized peak.
    assert standard.accuracy > 0.9
    assert microdeep.accuracy > 0.88
    assert standard.accuracy - microdeep.accuracy < 0.07
    assert peak_ratio < 0.35

    mean = float(x_te.mean())
    std = float(x_te.std()) or 1.0
    batch = (x_te[:64] - mean) / std
    benchmark(lambda: microdeep.model.forward(batch))
