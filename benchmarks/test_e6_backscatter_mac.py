"""E6 — §IV.A: the backscatter-aware wireless-LAN MAC of [64].

The paper's claims: registering each IoT device's data-acquisition
cycle lets WLAN and backscatter coexist "with low overhead";
scheduling reduces the communication error rate; the AP sends dummy
packets when WLAN traffic alone cannot carry the backscatter load
(sparse-traffic regime: "the packet error rate of backscatter
communication increases when there is not enough wireless LAN
traffic").

We sweep WLAN load and device count for the proposed scheduler vs.
the uncoordinated contention baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.backscatter import (
    ContentionBackscatterMac,
    ScheduledBackscatterMac,
    run_coexistence,
)

WLAN_RATES = [1.0, 10.0, 50.0, 200.0]
DEVICE_COUNTS = [5, 15, 30]
DURATION = 120.0


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for rate in WLAN_RATES:
        for n in DEVICE_COUNTS:
            sched = run_coexistence(
                ScheduledBackscatterMac, n, 1.0, rate, DURATION, seed=7
            )
            cont = run_coexistence(
                ContentionBackscatterMac, n, 1.0, rate, DURATION, seed=7
            )
            results[(rate, n)] = (sched, cont)
    return results


def test_e6_backscatter_mac_coexistence(sweep, benchmark):
    rows = []
    for (rate, n), (sched, cont) in sorted(sweep.items()):
        rows.append([
            f"{rate:g}", str(n),
            f"{sched.error_rate:.3f}", f"{cont.error_rate:.3f}",
            f"{sched.dummy_overhead_fraction:.3f}",
            str(sched.backscatter_collisions), str(cont.backscatter_collisions),
        ])
    print_table(
        "E6: backscatter MAC — scheduled [64] vs. contention baseline",
        ["WLAN pkt/s", "devices", "sched err", "cont err",
         "dummy overhead", "sched collisions", "cont collisions"],
        rows,
    )

    for (rate, n), (sched, cont) in sweep.items():
        # The scheduler never lets backscatter transmissions collide.
        assert sched.backscatter_collisions == 0
        # And it always delivers at least as well as contention.
        assert sched.delivery_ratio >= cont.delivery_ratio - 0.02, (rate, n)
        # Scheduled error rate stays low everywhere (dummy packets
        # cover the sparse-WLAN regime).
        assert sched.error_rate < 0.15, (rate, n)

    # Contention collapses with many devices; the scheduler does not.
    dense_sched, dense_cont = sweep[(50.0, 30)]
    assert dense_cont.error_rate > 0.5
    assert dense_sched.error_rate < 0.15

    # Contention starves under sparse WLAN traffic; dummy packets save
    # the scheduler at bounded overhead.
    sparse_sched, sparse_cont = sweep[(1.0, 5)]
    assert sparse_cont.error_rate > sparse_sched.error_rate + 0.2
    assert sparse_sched.dummy_packets > 0

    # With dense WLAN traffic the scheduler needs almost no dummies —
    # the paper's "low overhead" claim.
    rich_sched, __ = sweep[(200.0, 5)]
    assert rich_sched.dummy_overhead_fraction < 0.05

    benchmark(
        lambda: run_coexistence(
            ScheduledBackscatterMac, 10, 1.0, 50.0, 30.0, seed=1
        )
    )
