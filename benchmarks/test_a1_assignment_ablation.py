"""A1 — ablation: placement strategy and update mode.

DESIGN.md calls out two MicroDeep design choices for ablation:

1. the unit-to-node **assignment strategy** (the paper's
   grid-correspondence heuristic vs. round-robin, random, and the
   centralized sink) — measured by peak and total per-inference
   traffic on the E1 fall CNN;
2. **local vs. exact** distributed backpropagation — measured by test
   accuracy on a controlled task with everything else fixed.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts.fall import FEASIBLE_PARAMS, build_fall_cnn
from repro.core import (
    CommunicationCostModel,
    MicroDeepTrainer,
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.nn import SGD
from repro.wsn import GridTopology


@pytest.fixture(scope="module")
def placements():
    rng = np.random.default_rng(0)
    model = build_fall_cnn(rng=rng, **FEASIBLE_PARAMS)
    graph = UnitGraph(model)
    topology = GridTopology(4, 4)
    cm = CommunicationCostModel(graph, topology)
    strategies = {
        "grid correspondence": grid_correspondence_assignment(graph, topology),
        "round robin": round_robin_assignment(graph, topology),
        "random": random_assignment(graph, topology, rng),
        "centralized sink": centralized_assignment(graph, topology),
    }
    return {name: cm.inference_cost(p) for name, p in strategies.items()}


def toy_task(n, rng):
    x = rng.normal(0.0, 0.3, size=(n, 1, 10, 10))
    y = rng.integers(0, 2, size=n)
    for i in range(n):
        cy = rng.integers(1, 4) if y[i] == 0 else rng.integers(6, 9)
        cx = rng.integers(2, 8)
        x[i, 0, cy - 1 : cy + 2, cx - 1 : cx + 2] += 2.0
    return x, y


@pytest.fixture(scope="module")
def update_mode_accuracies():
    from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

    rng = np.random.default_rng(1)
    x, y = toy_task(240, rng)
    accs = {}
    for mode in ("exact", "local"):
        model = Sequential([
            Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(),
            Dense(8), ReLU(), Dense(2),
        ])
        model.build((1, 10, 10), np.random.default_rng(2))
        graph = UnitGraph(model)
        topology = GridTopology(3, 3)
        placement = grid_correspondence_assignment(graph, topology)
        trainer = MicroDeepTrainer(
            graph, placement, SGD(lr=0.1, momentum=0.9), update_mode=mode
        )
        trainer.fit(x[:180], y[:180], epochs=20, batch_size=16,
                    rng=np.random.default_rng(3))
        __, accs[mode] = trainer.evaluate(x[180:], y[180:])
    return accs


def test_a1_assignment_and_update_ablation(
    placements, update_mode_accuracies, benchmark
):
    print_table(
        "A1: placement strategy ablation (E1 feasible CNN, 16 nodes)",
        ["strategy", "peak rx values", "total rx values"],
        [
            [name, str(report.max_rx()), str(report.total_rx())]
            for name, report in placements.items()
        ],
    )
    grid = placements["grid correspondence"]
    # Locality-aware placement dominates random on both metrics...
    assert grid.total_rx() < placements["random"].total_rx()
    assert grid.max_rx() <= placements["random"].max_rx()
    # ...and cuts the centralized peak.
    assert grid.max_rx() < placements["centralized sink"].max_rx()
    # Round-robin ignores locality: total traffic far above the heuristic.
    assert grid.total_rx() < 0.7 * placements["round robin"].total_rx()

    # Training-step traffic: the quantified version of the paper's
    # "weights ... updated independently by each sensor node to avoid
    # communication overhead".
    rng = np.random.default_rng(7)
    model = build_fall_cnn(rng=rng, **FEASIBLE_PARAMS)
    graph = UnitGraph(model)
    topology = GridTopology(4, 4)
    cm = CommunicationCostModel(graph, topology)
    placement = grid_correspondence_assignment(graph, topology)
    local_cost = cm.training_step_cost(placement, "local")
    exact_cost = cm.training_step_cost(placement, "exact")
    print_table(
        "A1: per-sample training traffic (heuristic placement)",
        ["update mode", "total rx values"],
        [
            ["local (MicroDeep)", str(local_cost.total_rx())],
            ["exact backprop", str(exact_cost.total_rx())],
        ],
    )
    assert exact_cost.total_rx() == 2 * local_cost.total_rx()

    print_table(
        "A1: update-mode ablation (toy task, 3x3 nodes)",
        ["update mode", "test accuracy"],
        [[m, f"{a:.4f}"] for m, a in update_mode_accuracies.items()],
    )
    # Both learn; local sacrifices at most a few points (the paper's
    # "sacrificing some accuracy").
    assert update_mode_accuracies["exact"] > 0.85
    assert update_mode_accuracies["local"] > 0.80
    assert (
        update_mode_accuracies["exact"] - update_mode_accuracies["local"]
    ) < 0.15

    rng = np.random.default_rng(4)
    model = build_fall_cnn(rng=rng, **FEASIBLE_PARAMS)
    graph = UnitGraph(model)
    topology = GridTopology(4, 4)
    cm = CommunicationCostModel(graph, topology)
    placement = grid_correspondence_assignment(graph, topology)
    benchmark(lambda: cm.inference_cost(placement).max_rx())
