"""A2 — the survey technologies of §II: NetScatter scaling,
inter-technology backscatter, CSI gesture recognition, and the §III.B
collection planner.

These regenerate the *claims the paper surveys* on our substrates:
NetScatter's many-device concurrency [27], the published
inter-technology links [17][19][23][24], WiAG/SignFi-class gesture
recognition from CSI [32][33], and the automatic design-support
planning the paper calls for.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.backscatter import (
    NetScatterConfig,
    PUBLISHED_SYSTEMS,
    concurrent_throughput_bps,
    published_link,
    run_concurrent_trial,
    tdma_throughput_bps,
)
from repro.contexts import GestureRecognizer
from repro.core import CollectionPlanner
from repro.sensing import CsiGestureScenario
from repro.wsn import GridTopology


@pytest.fixture(scope="module")
def netscatter_sweep():
    cfg = NetScatterConfig(spreading=256)
    rows = []
    for n in [10, 50, 150, 256]:
        ber = run_concurrent_trial(cfg, n, n_slots=15, snr_db=0.0,
                                   rng=np.random.default_rng(n))
        rows.append((n, concurrent_throughput_bps(cfg, n),
                     tdma_throughput_bps(cfg, n), ber))
    return cfg, rows


@pytest.fixture(scope="module")
def gesture_accuracy():
    recognizer = GestureRecognizer(CsiGestureScenario(n_frames=40))
    return recognizer.evaluate(10, np.random.default_rng(5))


def test_a2_survey_technologies(netscatter_sweep, gesture_accuracy, benchmark):
    cfg, rows = netscatter_sweep
    print_table(
        "A2: NetScatter concurrency (spreading 256, 0 dB per-sample SNR)",
        ["devices", "concurrent bps", "TDMA bps", "BER"],
        [[str(n), f"{c:g}", f"{t:g}", f"{b:.4f}"] for n, c, t, b in rows],
    )
    # Aggregate throughput scales with devices and passes TDMA well
    # before the shift space is full; decoding stays reliable except
    # at full occupancy, where the median-based detector loses its
    # noise-floor estimate (all bins carry signal).
    __, c50, t50, ber50 = rows[1]
    assert c50 > 5 * t50
    for n, __c, __t, ber in rows:
        if n < cfg.spreading:
            assert ber < 0.05, n

    print_table(
        "A2: published inter-technology backscatter links",
        ["system", "carrier -> target", "shift (MHz)", "rate", "tag power"],
        [
            [
                name,
                " -> ".join(PUBLISHED_SYSTEMS[name]),
                f"{published_link(name).frequency_shift_hz / 1e6:.1f}",
                f"{published_link(name).data_rate_bps / 1e6:g} Mbps",
                f"{published_link(name).tag_power_w() * 1e6:.1f} uW",
            ]
            for name in sorted(PUBLISHED_SYSTEMS)
        ],
    )
    for name in PUBLISHED_SYSTEMS:
        assert published_link(name).feasible, name

    print_table(
        "A2: CSI gesture recognition (5 gestures, 40-frame executions)",
        ["metric", "value", "survey reference"],
        [["accuracy", f"{gesture_accuracy.accuracy:.4f}",
          "WiAG ~0.91 / SignFi ~0.94"]],
    )
    assert gesture_accuracy.accuracy > 0.75

    # Planner: frame duration shrinks with channels (the §III.B
    # multi-channel design-support claim).
    rows = []
    for channels in [1, 2, 4]:
        planner = CollectionPlanner(GridTopology(5, 8), max_channels=channels)
        plan = planner.plan(sink=0, cycle_s=10.0)
        rows.append([str(channels), f"{plan.frame_duration_s * 1e3:.1f} ms",
                     str(plan.feasible)])
    print_table(
        "A2: collection-plan superframe vs. channel budget (40 nodes)",
        ["channels", "superframe", "meets 10 s cycle"], rows,
    )
    one = float(rows[0][1].split()[0])
    four = float(rows[2][1].split()[0])
    assert four <= one

    cfg_small = NetScatterConfig(spreading=128)
    benchmark(
        lambda: run_concurrent_trial(
            cfg_small, 30, 5, 0.0, np.random.default_rng(9)
        )
    )
