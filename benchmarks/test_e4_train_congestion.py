"""E4 — §IV.B: car-level congestion and position estimation [65].

Paper numbers: 83 % car-level positioning accuracy; three-level
congestion (low/medium/high) estimated with an F-measure of 0.82 via
reliability-weighted majority voting.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import CongestionEstimator
from repro.sensing import TrainScenario


def make_snapshots(scenario, n, seed, participation=0.35):
    rng = np.random.default_rng(seed)
    return [
        scenario.generate(scenario.random_levels(rng), participation, rng)
        for __ in range(n)
    ]


@pytest.fixture(scope="module")
def experiment():
    scenario = TrainScenario()
    estimator = CongestionEstimator(scenario)
    estimator.calibrate(make_snapshots(scenario, 80, seed=0))
    test = make_snapshots(scenario, 40, seed=1)
    result = estimator.evaluate(test)
    return scenario, estimator, test, result


def test_e4_train_congestion(experiment, benchmark):
    scenario, estimator, test, result = experiment

    print_table(
        "E4: train congestion / position estimation",
        ["metric", "measured", "paper"],
        [
            ["car-level position accuracy",
             f"{result.position_accuracy:.4f}", "0.83"],
            ["3-level congestion F-measure",
             f"{result.congestion_f_measure:.4f}", "0.82"],
            ["3-level congestion accuracy",
             f"{result.congestion_accuracy:.4f}", "-"],
        ],
    )

    # Shape: both metrics land in the paper's band — clearly better
    # than chance, clearly below perfect.
    assert 0.75 <= result.position_accuracy <= 0.97
    assert 0.70 <= result.congestion_f_measure <= 0.97
    # Positioning is the easier of the two at these settings, as in
    # the paper (0.83 vs 0.82 per-metric scales differ but both hold).
    assert result.position_accuracy > 1.0 / scenario.n_cars + 0.3

    snapshot = test[0]
    benchmark(lambda: estimator.estimate_congestion(snapshot))
