"""E9 — Fig. 3: integrating direct (backscatter) and indirect (CSI)
sensing.

The paper's architectural figure claims the two modalities are
complementary: ambient backscatter gives precise but
installation-bound readings; wireless sensing covers space but is
coarse; deep/machine learning over both "handles fine grain spatial
information".  We regenerate that comparison on the localization task:
presence tags cover 3 of the 7 positions (direct), the 624-feature
CSI pipeline covers all of them noisily (indirect), and the fused
model is evaluated against each alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import FusionLocalizer
from repro.sensing import default_patterns


@pytest.fixture(scope="module")
def fusion_results():
    localizer = FusionLocalizer()
    noisy = [
        p for p in default_patterns() if p.name == "walk-divergent-noisy"
    ][0]
    results = [
        localizer.evaluate(noisy, 16, np.random.default_rng(seed), window=8)
        for seed in range(3)
    ]
    return localizer, results


def test_e9_direct_indirect_fusion(fusion_results, benchmark):
    localizer, results = fusion_results
    direct = float(np.mean([r.direct_accuracy for r in results]))
    indirect = float(np.mean([r.indirect_accuracy for r in results]))
    fused = float(np.mean([r.fused_accuracy for r in results]))

    print_table(
        "E9: Fig. 3 sensing fusion (7-position localization, mean of 3 runs)",
        ["modality", "accuracy"],
        [
            ["direct only (3 presence tags)", f"{direct:.4f}"],
            ["indirect only (624 CSI features)", f"{indirect:.4f}"],
            ["fused", f"{fused:.4f}"],
        ],
    )

    # The paper's shape: each modality alone is limited; fusion is the
    # best of the three.
    assert direct < indirect          # sparse tags lose to full coverage
    assert fused >= indirect - 0.02   # fusion never hurts
    assert fused >= direct + 0.1      # and clearly beats direct alone
    assert fused > 1.0 / 7 + 0.3      # far above chance

    pattern = default_patterns()[3]
    rng = np.random.default_rng(99)
    benchmark(
        lambda: localizer.field.observe(localizer.scenario.positions[0], rng)
    )
