"""Shared helpers for the experiment benchmarks.

Every benchmark module reproduces one paper artifact (see DESIGN.md
§4).  The convention: a module-scoped fixture runs the experiment
once, the test asserts the paper's *shape* (who wins, by roughly what
factor) and prints a paper-vs-measured table, and the ``benchmark``
fixture times a representative steady-state operation.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one experiment's result table to stdout."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
