"""E8 — §V resilience challenge: broken devices and network lifetime.

The paper: *"A part of tiny IoT devices may be broken.  The
development of resilient distributed machine learning mechanisms in
the environments containing such broken IoT devices is also
important"*, and §IV.C: *"it is very important to equalize the number
of units assigned to each sensor node and to minimize the maximal
communication costs ... so that all the sensor nodes can be alive and
work well using a small amount of energy."*

Three sweeps: (1) accuracy vs. fraction of failed nodes for the
trained fall detector; (2) accuracy vs. packet-loss rate under the
fault-injection layer (bounded retries + stale-activation fallback,
every degradation decision traced); (3) network lifetime (time to
first node death on a harvested energy budget) for the heuristic vs.
centralized placement, where a node's drain is proportional to its
per-inference traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import FallDetectionPipeline
from repro.contexts.fall import FEASIBLE_PARAMS
from repro.core import DistributedExecutor, UnitGraph
from repro.datasets import IrGaitConfig, generate_ir_gait_episodes, windows_from_episodes
from repro.energy import RADIO_PROFILES
from repro.faults import FaultPlan, FaultScenario, RetryPolicy, inject
from repro.wsn import GridTopology, Network

FAIL_FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.5]
LOSS_RATES = [0.0, 0.1, 0.2, 0.35, 0.5]


@pytest.fixture(scope="module")
def experiment():
    rng = np.random.default_rng(0)
    episodes = generate_ir_gait_episodes(IrGaitConfig(), rng)
    x, y, ei = windows_from_episodes(episodes, window=10, stride=3)
    falls = [i for i, ep in enumerate(episodes) if ep.label == 1]
    walks = [i for i, ep in enumerate(episodes) if ep.label == 0]
    test_mask = np.isin(ei, falls[:6] + walks[:6])
    pipe = FallDetectionPipeline(node_grid=(4, 4))
    result = pipe.run(
        x[~test_mask], y[~test_mask], x[test_mask], y[test_mask],
        np.random.default_rng(1), params=FEASIBLE_PARAMS,
        assignment="heuristic", update_mode="local", epochs=15, lr=3e-3,
    )
    graph = UnitGraph(result.model)
    topology = GridTopology(4, 4)
    executor = DistributedExecutor(
        result.model, graph, result.placement, Network(topology)
    )
    return result, executor, (x[test_mask], y[test_mask])


def lifetime_days(max_rx_values: int, inferences_per_day: float = 2880.0,
                  harvest_j_per_day: float = 0.5) -> float:
    """Days until the busiest node exhausts its daily-harvest margin.

    Each received value costs one 32-bit backscatter reception; a node
    survives while its daily radio energy stays under the harvest.
    Returns the sustainable-load headroom expressed as days of
    operation from a fixed 30-day energy reserve.
    """
    rx_energy = RADIO_PROFILES["backscatter"].rx_power_w * (32 / 1e6)
    daily = max(max_rx_values, 1) * inferences_per_day * rx_energy
    reserve = harvest_j_per_day * 30.0
    return reserve / daily if daily > 0 else float("inf")


def test_e8_resilience_and_lifetime(experiment, benchmark):
    result, executor, (x_te, y_te) = experiment
    rng = np.random.default_rng(42)
    node_ids = result.node_ids

    rows = []
    accuracies = []
    for frac in FAIL_FRACTIONS:
        n_dead = int(round(frac * len(node_ids)))
        trials = []
        for t in range(3):
            dead = rng.choice(node_ids, size=n_dead, replace=False)
            trials.append(executor.accuracy_under_faults(x_te, y_te, dead))
        acc = float(np.mean(trials))
        accuracies.append(acc)
        rows.append([f"{frac:.0%}", f"{acc:.4f}"])
    print_table("E8: fall-detection accuracy vs. failed nodes",
                ["failed nodes", "accuracy (mean of 3 draws)"], rows)

    # Graceful degradation: healthy accuracy high; moderate failures
    # lose some accuracy but stay above chance; the trend is downward.
    assert accuracies[0] > 0.82
    assert accuracies[1] > 0.55
    assert accuracies[0] >= accuracies[-1]

    # Lifetime: balanced placement's peak traffic is lower, so the
    # busiest node lives longer on the same harvest.
    from repro.core import CommunicationCostModel, centralized_assignment

    graph = UnitGraph(result.model)
    topology = GridTopology(4, 4)
    cm = CommunicationCostModel(graph, topology)
    central_peak = cm.inference_cost(
        centralized_assignment(graph, topology)
    ).max_rx()
    heuristic_peak = result.max_comm_cost
    life_h = lifetime_days(heuristic_peak)
    life_c = lifetime_days(central_peak)
    print_table(
        "E8: first-node-death horizon (fixed harvested budget)",
        ["placement", "peak rx values", "relative lifetime"],
        [
            ["centralized sink", str(central_peak), "1.00x"],
            ["heuristic (balanced)", str(heuristic_peak),
             f"{life_h / life_c:.2f}x"],
        ],
    )
    assert life_h > life_c

    dead_sample = node_ids[:3]
    benchmark(lambda: executor.accuracy_under_faults(x_te[:64], y_te[:64],
                                                     dead_sample))


def test_e8_accuracy_vs_loss_rate(experiment):
    """The real resilience curve: the trained fall detector under the
    fault-injection layer, sweeping the packet-loss rate.  Inference
    never hangs — drops are retried within a bounded budget, then
    stale activations (or zeros) substitute for the missing units —
    and every fallback shows up in the structured trace.

    The curve is computed through the sweep engine
    (:func:`repro.faults.sweeps.loss_rate_point` under
    :func:`repro.par.run_sweep`), the same path ``repro sweep`` and
    the parallel determinism pin below use."""
    from repro.faults import loss_rate_point, scenario_shared
    from repro.par import make_points, run_sweep

    result, _, (x_te, y_te) = experiment
    scenario = FaultScenario(
        model=result.model,
        graph=UnitGraph(result.model),
        placement=result.placement,
        topology=GridTopology(4, 4),
    )
    shared = scenario_shared(scenario, x_te, y_te)
    points = make_points(grid={"loss_rate": LOSS_RATES})
    report = run_sweep(
        "repro.faults.sweeps:loss_rate_point",
        points, jobs=1, root_seed=0, shared=shared,
    )

    rows = []
    accuracies = []
    for value in report.values():
        accuracies.append(value["accuracy"])
        rows.append([
            f"{value['loss_rate']:.0%}",
            f"{value['accuracy']:.4f}",
            str(value["drops"]),
            str(value["retries_recovered"]),
            str(value["transfers_exhausted"]),
        ])
        assert value["inferences"] == 4  # no hangs
        assert value["time_monotonic"]
    print_table(
        "E8: fall-detection accuracy vs. packet-loss rate (fault layer)",
        ["loss rate", "accuracy", "drops", "retries ok", "exhausted"],
        rows,
    )

    # Clean run is exact; heavy loss degrades but stays finite, and
    # the curve's endpoints are ordered.
    assert accuracies[0] > 0.82
    assert accuracies[-1] <= accuracies[0]
    assert all(np.isfinite(a) for a in accuracies)

    # The cross-check the old in-line loop provided: the sweep task
    # reproduces a direct inject() at one representative rate.
    run = inject(
        scenario,
        FaultPlan(seed=13, loss_rate=LOSS_RATES[2]),
        policy=RetryPolicy(max_retries=2),
    )
    assert run.accuracy(x_te, y_te, chunks=4) == pytest.approx(
        accuracies[2]
    )


def test_e8_loss_curve_parallel_identical_to_serial(experiment):
    """Determinism pin on the E8 curve: two worker processes merge to
    the byte-identical report of the serial sweep (bounded test set so
    the doubled run stays cheap)."""
    from repro.faults import scenario_shared
    from repro.par import make_points, run_sweep

    result, _, (x_te, y_te) = experiment
    scenario = FaultScenario(
        model=result.model,
        graph=UnitGraph(result.model),
        placement=result.placement,
        topology=GridTopology(4, 4),
    )
    shared = scenario_shared(scenario, x_te[:32], y_te[:32])
    points = make_points(grid={"loss_rate": [0.0, 0.2, 0.5]})
    serial = run_sweep(
        "repro.faults.sweeps:loss_rate_point",
        points, jobs=1, root_seed=0, shared=shared,
    )
    parallel = run_sweep(
        "repro.faults.sweeps:loss_rate_point",
        points, jobs=2, root_seed=0, shared=shared, chunk_size=1,
    )
    assert parallel.canonical_json() == serial.canonical_json()
    assert parallel.digest() == serial.digest()
