"""A3 — the application scenarios (i)-(vi) of §I/§III.C, end to end.

One table per scenario family, generated from the live pipelines:

- (i)/(ii) body sensing: posture recognition, exercise counting,
  breathing extraction (RF-Kinect / Motion-Fi / RF-ECG);
- (iii) perimeter intrusion classification + trajectory tracking;
- (v) slope monitoring: event detection vs. storms;
- (vi) autonomous HVAC: closed-loop discomfort reduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import (
    AutonomousHvacController,
    CellWorld,
    ComfortPolicy,
    IntrusionDetector,
    PerimeterSimulator,
    Posture,
    PostureClassifier,
    RepetitionCounter,
    SlopeMonitor,
    SlopeSimulator,
    TagArraySensor,
    TrajectorySimulator,
    ViterbiTracker,
    default_lounge,
    estimate_periodicity,
    run_closed_loop,
)


@pytest.fixture(scope="module")
def body_sensing():
    rng = np.random.default_rng(0)
    clf = PostureClassifier()
    posture_acc = np.mean([
        clf.observe_and_classify(p, rng) == p
        for p in Posture for __ in range(20)
    ])
    counter = RepetitionCounter(dt=0.05)
    rep_hits = 0
    for true_reps in [4, 8, 12, 16]:
        distances = counter.synthesize_exercise(true_reps, 2.0, 0.3, rng)
        rep_hits += counter.count_from_distances(distances, rng) == true_reps
    sensor = TagArraySensor(phase_noise_rad=0.03)
    dt = 0.1
    t = np.arange(400) * dt
    chest = 1.8 + 0.005 * np.sin(2 * np.pi * 0.3 * t)
    readings = [sensor.read(0, d, ti, rng) for d, ti in zip(chest, t)]
    rate, __ = estimate_periodicity(
        sensor.displacement_series(readings), dt, min_hz=0.1, max_hz=1.0
    )
    return float(posture_acc), rep_hits, rate


@pytest.fixture(scope="module")
def intrusion_and_tracking():
    rng = np.random.default_rng(1)
    sim = PerimeterSimulator()
    detector = IntrusionDetector().fit(sim.generate_dataset(20, rng))
    result = detector.evaluate(sim.generate_dataset(8, np.random.default_rng(2)))
    world = CellWorld.floorplan(3, 4)
    walker = TrajectorySimulator(world, detection_probability=0.6,
                                 confusion_probability=0.25)
    tracker = ViterbiTracker(world, detection_probability=0.6,
                             confusion_probability=0.25)
    rng = np.random.default_rng(3)
    tracked_accs, raw_accs = [], []
    for __ in range(8):
        path = walker.walk(50, rng)
        obs = walker.observe(path, rng)
        tracked, raw = tracker.accuracy(path, obs)
        tracked_accs.append(tracked)
        raw_accs.append(raw)
    return result, float(np.mean(tracked_accs)), float(np.mean(raw_accs))


@pytest.fixture(scope="module")
def slope_watch():
    sim = SlopeSimulator()
    rng = np.random.default_rng(4)
    calibration = [
        sim.observe(w, rng) for w in [0, 5, 10, 15, 20, 25] for __ in range(3)
    ]
    monitor = SlopeMonitor(k_of_n=3).calibrate_wind(calibration)
    windows = []
    for __ in range(12):
        windows.append(sim.observe(8.0, rng, event_center=(1, 3)))
        windows.append(sim.observe(8.0, rng))
        windows.append(sim.observe(28.0, rng))  # storm, no event
    return monitor.evaluate(windows), monitor, sim


@pytest.fixture(scope="module")
def hvac_improvement():
    baseline = run_closed_loop(default_lounge(31.0), None, 40,
                               np.random.default_rng(5))
    controller = AutonomousHvacController(ComfortPolicy(), gain=0.8)
    controlled = run_closed_loop(default_lounge(31.0), controller, 40,
                                 np.random.default_rng(5))
    return baseline, controlled


def test_a3_scenario_applications(
    body_sensing, intrusion_and_tracking, slope_watch, hvac_improvement,
    benchmark,
):
    posture_acc, rep_hits, breathing_hz = body_sensing
    intrusion, tracked_acc, raw_acc = intrusion_and_tracking
    slope_scores, monitor, slope_sim = slope_watch
    baseline, controlled = hvac_improvement

    print_table(
        "A3: scenarios (i)-(vi) end to end",
        ["scenario", "metric", "measured"],
        [
            ["(i)/(ii) posture (RF-Kinect)", "3-class accuracy",
             f"{posture_acc:.3f}"],
            ["(ii) exercise count (Motion-Fi)", "exact bouts of 4",
             f"{rep_hits}/4"],
            ["(i) breathing (RF-ECG)", "estimated rate",
             f"{breathing_hz * 60:.1f}/min (true 18.0)"],
            ["(iii) intrusion", "human/deer/boar accuracy",
             f"{intrusion.kind_accuracy:.3f}"],
            ["(iii) trajectory", "tracked vs raw cell accuracy",
             f"{tracked_acc:.3f} vs {raw_acc:.3f}"],
            ["(v) slope events", "detection / false alarms",
             f"{slope_scores[0]:.2f} / {slope_scores[1]:.2f}"],
            ["(v) wind estimation", "MAE",
             f"{slope_scores[2]:.1f} m/s"],
            ["(vi) autonomous HVAC", "mean discomfort",
             f"{baseline.mean_discomfort:.2f} -> "
             f"{controlled.mean_discomfort:.2f}"],
        ],
    )

    assert posture_acc > 0.9
    assert rep_hits >= 3
    assert breathing_hz * 60 == pytest.approx(18.0, abs=2.0)
    assert intrusion.kind_accuracy > 0.8
    assert tracked_acc > raw_acc
    assert slope_scores[0] > 0.9      # detection
    assert slope_scores[1] < 0.25     # false alarms (includes storms)
    assert controlled.mean_discomfort < 0.7 * baseline.mean_discomfort

    rng = np.random.default_rng(6)
    benchmark(lambda: monitor.assess(slope_sim.observe(8.0, rng)))
