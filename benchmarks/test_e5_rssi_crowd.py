"""E5 — §IV.B: crowd counting on an already-deployed WSN [66].

Paper numbers: the algorithm estimates the number of people with
approximately 79 % accuracy, with errors up to two people, from the
synchronized inter-node RSSI; the number of devices is estimated from
the surrounding RSSI.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.contexts import CrowdCounter
from repro.sensing import RoomOccupancyScenario


@pytest.fixture(scope="module")
def experiment():
    room = RoomOccupancyScenario()
    train = room.generate_dataset(30, np.random.default_rng(0))
    test = room.generate_dataset(10, np.random.default_rng(1))
    counter = CrowdCounter().fit(train)
    result = counter.evaluate(test)
    return room, counter, test, result


def test_e5_rssi_crowd_counting(experiment, benchmark):
    room, counter, test, result = experiment

    print_table(
        "E5: RSSI crowd counting (inter-node + surrounding RSSI)",
        ["metric", "measured", "paper"],
        [
            ["people-count accuracy", f"{result.people_accuracy:.4f}", "~0.79"],
            ["within +-2 people", f"{result.people_within_2:.4f}",
             "1.0 (errors up to two)"],
            ["people MAE", f"{result.people_mae:.3f}", "-"],
            ["device-count MAE", f"{result.device_mae:.3f}", "-"],
        ],
    )

    # Shape: ~0.7-0.9 exact accuracy, and errors bounded by two people.
    assert 0.65 <= result.people_accuracy <= 0.95
    assert result.people_within_2 >= 0.97
    assert result.people_mae < 1.0

    benchmark(lambda: counter.predict_people(test))
