"""E7 — §I / Fig. 1: the zero-energy budget claims.

Paper claims: conventional wireless spends tens to hundreds of mW,
BLE is on the order of mW, and ambient backscatter cuts power to
about 10 uW — roughly 1/10,000; Wi-Fi-based ambient backscatter
reaches tens of meters at Mbps-class rates; harvested energy sustains
a backscatter device but not an active radio.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.backscatter import BackscatterLink, BackscatterTag, dedicated_cw_carrier
from repro.energy import (
    Capacitor,
    IntermittentPowerManager,
    RADIO_PROFILES,
    RadioEnergyModel,
    TaskSpec,
    backscatter_vs_active_ratio,
    rf_field_trace,
)


@pytest.fixture(scope="module")
def link():
    # Line-of-sight deployment with a sensitive backscatter decoder —
    # the favourable regime behind the paper's "several tens of
    # meters with several Mbps" figure for Wi-Fi backscatter.
    from repro.wsn.radio import LogDistancePathLoss

    return BackscatterLink(
        carrier=dedicated_cw_carrier(20.0),
        tag=BackscatterTag(bitrate_bps=2e6),
        path_loss=LogDistancePathLoss(exponent=2.0, ref_loss_db=40.0),
        rx_sensitivity_dbm=-102.0,
    )


def test_e7_energy_budget(link, benchmark):
    # -- power table ---------------------------------------------------------
    rows = [
        [name, f"{p.tx_power_w * 1e3:.3f} mW", f"{p.bitrate_bps / 1e6:g} Mbps"]
        for name, p in RADIO_PROFILES.items()
    ]
    print_table("E7: radio TX power (paper §I orders of magnitude)",
                ["radio", "TX power", "bitrate"], rows)

    ratio = backscatter_vs_active_ratio("wifi")
    print(f"backscatter vs Wi-Fi TX power ratio: 1/{ratio:,.0f} "
          f"(paper: about 1/10,000)")
    assert 1_000 <= ratio <= 100_000
    assert RADIO_PROFILES["backscatter"].tx_power_w == pytest.approx(10e-6)
    assert 1e-3 <= RADIO_PROFILES["ble"].tx_power_w <= 10e-3

    # -- range sweep ------------------------------------------------------------
    sweep = []
    for d in [1.0, 5.0, 10.0, 20.0, 40.0]:
        thr = link.effective_throughput_bps(2.0, d, payload_bits=256)
        sweep.append([f"{d:g} m", f"{thr / 1e6:.3f} Mbps"])
    print_table("E7: backscatter goodput vs tag->receiver distance",
                ["distance", "goodput"], sweep)
    max_range = link.max_range_m(carrier_to_tag_m=2.0)
    print(f"max decodable range: {max_range:.1f} m "
          f"(paper: several tens of meters)")
    assert 5.0 <= max_range <= 100.0
    assert link.effective_throughput_bps(2.0, 5.0, 256) > 0.5e6  # Mbps class

    # -- harvested duty cycles ---------------------------------------------------
    harvested = 30e-6  # 30 uW ambient RF harvest
    duty_rows = []
    for name in ["backscatter", "ble", "zigbee", "wifi"]:
        duty = RadioEnergyModel.named(name).sustainable_duty_cycle(harvested)
        duty_rows.append([name, f"{duty:.6f}"])
    print_table("E7: TX duty cycle sustainable on 30 uW harvest",
                ["radio", "duty cycle"], duty_rows)
    assert RadioEnergyModel.named("backscatter").sustainable_duty_cycle(
        harvested) == 1.0
    assert RadioEnergyModel.named("wifi").sustainable_duty_cycle(
        harvested) < 1e-3

    # -- end-to-end intermittent run ------------------------------------------------
    def run_device(radio_name):
        model = RadioEnergyModel.named(radio_name)
        cap = Capacitor(capacity_j=5e-3, turn_on_j=1e-4, initial_j=1e-4)
        # Each reading costs sense + 5 ms of channel listening (idle
        # listening dominates active radios; backscatter barely pays)
        # + the transmission itself.
        listen_j = model.profile.rx_power_w * 0.005
        tasks = [
            TaskSpec("sense", 5e-6, 0.05),
            TaskSpec("listen", listen_j, 0.005),
            TaskSpec("tx", model.tx_energy_j(1024), 0.05),
        ]
        trace = rf_field_trace(600.0, 1.0, 30e-6, np.random.default_rng(0))
        return IntermittentPowerManager(cap, tasks).run(trace)

    bsc = run_device("backscatter")
    wifi = run_device("wifi")
    print(f"readings delivered in 10 min on harvested RF: "
          f"backscatter={bsc.completions('tx')}, wifi={wifi.completions('tx')}")
    assert bsc.completions("tx") > 5 * max(wifi.completions("tx"), 1)

    benchmark(lambda: link.max_range_m(carrier_to_tag_m=2.0))
