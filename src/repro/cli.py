"""Command-line entry point: list and run the example scenarios.

Usage::

    python -m repro.cli list
    python -m repro.cli run quickstart
    python -m repro.cli info
    python -m repro.cli faults run --loss 0.2 --crashes 2
    python -m repro.cli bench --quick --against BENCH_perf.json
    python -m repro.cli bench --jobs 4
    python -m repro.cli train --mode local --epochs 5 --trace train.jsonl
    python -m repro.cli sweep chaos --seeds 0-4 --grid loss_rate=0.0,0.2,0.4
    python -m repro.cli trace quickstart --out trace.jsonl
    python -m repro.cli stats trace.jsonl
    python -m repro.cli serve --tenants fall,hvac --port 8080
    python -m repro.cli monitor demo --loss 0.3 --rules slo.json
    python -m repro.cli monitor train --epochs 8

``run`` executes the named example script from the installed
repository's ``examples/`` directory (development layout) so users can
explore the scenarios without locating the files.  ``faults run``
drives a MicroDeep inference through the fault-injection layer and
reports the trace.  ``bench`` runs the performance suite, writes the
schema-versioned report, and can gate against a previous one
(``--trace`` additionally records the suite under a telemetry
session).  ``trace`` runs an example with the telemetry layer
installed and writes the Chrome-compatible JSONL trace plus a markdown
summary; ``stats`` aggregates a written trace into the per-node
communication-cost tables (Fig. 10 shape), optionally comparing two
traces.  ``sweep`` fans a registered task over a seed list × config
grid through the deterministic process-parallel engine
(:mod:`repro.par`) — the JSON report is identical whatever ``--jobs``,
except for the ``wall`` timing section.  ``train`` runs MicroDeep
distributed training on the toy field task — exact or local updates,
vectorized or reference backward — and can record the ``train.step`` /
``exec.backward`` telemetry to a trace file.  ``serve`` hosts the
multi-tenant recognition HTTP service (:mod:`repro.serve`) until
interrupted (Ctrl-C drains in-flight batches before exiting) or until
``--stop-after N`` requests have been handled.  ``monitor`` runs a
workload (the fault-injection demo, the training loop, or any example)
under a flight recorder + SLO watchdog (:mod:`repro.obs.timeline` /
:mod:`repro.obs.watch`), prints a windowed health table, optionally
writes the timeline and fired-alert JSONL, and exits non-zero when a
critical alert fired.

Exit codes: 0 success (including a ``serve`` shutdown via Ctrl-C or
``--stop-after``); 2 usage error (unknown example/task/scenario, bad
``--grid``/``--seeds`` spec, invalid ``serve`` batching knobs,
unreadable or schema-invalid ``bench --against`` baseline, invalid
``monitor --rules`` file); 3 ``bench`` performance regression against
the baseline; 4 ``monitor`` saw at least one critical alert fire.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import Dict, Optional

import repro

#: Example name -> (file, one-line description).
EXAMPLES: Dict[str, tuple] = {
    "quickstart": ("quickstart.py", "MicroDeep workflow end to end"),
    "fall": ("elderly_fall_monitoring.py",
             "(i) IR-array fall detection, Fig. 10 comparison"),
    "congestion": ("train_congestion_monitoring.py",
                   "car-level train congestion dashboard"),
    "sociogram": ("sociogram_kindergarten.py",
                  "(iv) kindergarten sociograms from tag logs"),
    "backscatter": ("zero_energy_backscatter_network.py",
                    "links, energy budgets, MAC coexistence"),
    "sensing": ("device_free_sensing.py",
                "localization, gestures, PEM crowds, trajectories"),
    "body": ("athlete_body_sensing.py",
             "(ii) posture, exercise counting, breathing"),
    "watch": ("wildlife_and_slope_watch.py",
              "(iii)+(v) intrusion and slope monitoring"),
    "hvac": ("autonomous_hvac.py", "(vi) closed-loop comfort control"),
    "planner": ("design_support_planner.py",
                "auto-generated collection schedules"),
    "faultdemo": ("fault_injection_demo.py",
                  "fault injection: crashes, loss, degraded inference"),
    "telemetry": ("telemetry_walkthrough.py",
                  "telemetry session -> per-node cost table (Fig. 10)"),
}


def _examples_dir() -> Optional[Path]:
    """The examples directory of a development checkout, if present."""
    candidate = Path(repro.__file__).resolve().parents[2] / "examples"
    return candidate if candidate.is_dir() else None


def cmd_list() -> int:
    """Print the example catalogue."""
    print("available examples (repro run <name>):")
    for name, (__, description) in EXAMPLES.items():
        print(f"  {name:12s} {description}")
    return 0


def cmd_info() -> int:
    """Print package version and layout."""
    print(f"repro {repro.__version__} — reproduction of 'Context "
          "Recognition of Humans and Objects by Distributed Zero-Energy "
          "IoT Devices' (ICDCS 2019)")
    print("subpackages:", ", ".join(repro.__all__))
    examples = _examples_dir()
    print("examples dir:", examples if examples else "(not found)")
    return 0


def _load_example(name: str):
    """Import one example script as a module; returns ``(module, 0)``
    or ``(None, exit_code)`` with the error already printed."""
    if name not in EXAMPLES:
        print(f"unknown example {name!r}; run 'list' to see the choices",
              file=sys.stderr)
        return None, 2
    examples = _examples_dir()
    if examples is None:
        print("examples directory not found (not a development checkout)",
              file=sys.stderr)
        return None, 1
    path = examples / EXAMPLES[name][0]
    spec = importlib.util.spec_from_file_location(f"repro_example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, 0


def cmd_run(name: str) -> int:
    """Execute one example script's main()."""
    module, code = _load_example(name)
    if module is None:
        return code
    module.main()
    return 0


def cmd_trace(args) -> int:
    """Run one example under a telemetry session; write its trace."""
    from repro import obs

    module, code = _load_example(args.name)
    if module is None:
        return code
    with obs.session() as tel:
        module.main()
    events = obs.export_events(tel, include_wall=args.wall)
    out = Path(args.out)
    obs.write_trace(tel, out, include_wall=args.wall)
    print(f"\ntrace: {len(events)} events -> {out}")
    if not events:
        print("(the example manages its own telemetry sessions; "
              "its traces were reported on stdout above)")
    summary = obs.trace_summary_markdown(
        events, title=f"Trace: {args.name}"
    )
    if args.summary:
        Path(args.summary).write_text(summary + "\n")
        print(f"summary -> {args.summary}")
    else:
        print()
        print(summary)
    return 0


def cmd_stats(args) -> int:
    """Aggregate a written trace into per-node cost tables."""
    from repro import obs

    def load(path):
        try:
            return obs.load_trace_file(path)
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
        except ValueError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
        return None

    events = load(args.trace)
    if events is None:
        return 2
    if args.against is None:
        print(obs.trace_summary_markdown(events, title=f"Trace: {args.trace}"))
        return 0
    other = load(args.against)
    if other is None:
        return 2
    print(obs.cost_comparison_markdown(
        obs.per_node_costs(events),
        obs.per_node_costs(other),
        base_label=Path(args.trace).stem,
        other_label=Path(args.against).stem,
    ))
    return 0


def cmd_faults_run(args) -> int:
    """Run one fault-injected inference and report the trace."""
    import numpy as np

    from repro.faults import FaultPlan, demo_scenario, inject

    print(f"building demo scenario (seed {args.seed}) ...")
    scenario, (x, y) = demo_scenario(seed=args.seed)
    baseline = inject(scenario, FaultPlan(seed=args.seed))
    clean_acc = baseline.accuracy(x, y, chunks=2)

    plan = FaultPlan(
        seed=args.seed,
        loss_rate=args.loss,
        corrupt_rate=args.corrupt,
        duplicate_rate=args.duplicate,
    )
    node_ids = sorted(scenario.topology.nodes)
    rng = np.random.default_rng(args.seed)
    for node in rng.choice(node_ids, size=min(args.crashes, len(node_ids)),
                           replace=False):
        plan.crash(0.0, int(node))
    run = inject(scenario, plan)
    acc = run.accuracy(x, y, chunks=2)

    print(f"\nfault plan: loss={args.loss:.0%} corrupt={args.corrupt:.0%} "
          f"duplicate={args.duplicate:.0%} crashes={args.crashes}")
    print(f"accuracy: {clean_acc:.3f} clean -> {acc:.3f} degraded "
          f"(no hang: {run.executor.inferences} inferences completed, "
          f"virtual time {run.sim.now:.3f}s)")
    print("\ntrace summary (kind: count):")
    for kind, count in run.trace.summary().items():
        print(f"  {kind:26s} {count:5d}")
    if args.trace:
        Path(args.trace).write_text(run.trace.to_jsonl() + "\n")
        print(f"\nfull trace ({len(run.trace)} records) written to {args.trace}")
    return 0


def cmd_bench(args) -> int:
    """Run the perf suite, write the report, optionally gate."""
    import json

    from repro.perf import compare_reports, run_suite, validate_report

    mode = "quick" if args.quick else "full"
    jobs = max(1, args.jobs)
    note = f" with {jobs} workers" if jobs > 1 else ""
    print(f"running {mode} benchmark suite (seed {args.seed}){note} ...")
    if args.trace:
        from repro import obs

        if jobs > 1:
            print("note: --trace records the parent process only; "
                  "worker-side benchmarks are not traced")
        # The session is live while the workloads build their stacks,
        # so the suite itself is traced (the telemetry_overhead
        # benchmark injects its backends explicitly and is immune).
        with obs.session() as tel:
            report = run_suite(quick=args.quick, seed=args.seed, jobs=jobs)
        trace_path = obs.write_trace(tel, args.trace, include_wall=True)
        print(f"telemetry trace written to {trace_path}")
    else:
        report = run_suite(quick=args.quick, seed=args.seed, jobs=jobs)
    errors = validate_report(report)
    if errors:  # pragma: no cover - suite always emits valid reports
        for err in errors:
            print(f"internal error: {err}", file=sys.stderr)
        return 1
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {out}\n")
    print(f"{'benchmark':28s} {'best':>10s} {'mean':>10s} {'speedup':>8s} "
          f"{'parity':>7s}")
    for bench in report["benchmarks"]:
        timing = bench["timing"]
        speedup = bench.get("speedup")
        # Entries that assert equivalence untimed before the clocks
        # start record it in parity_* counters; surface that so a
        # certified speedup is distinguishable from a bare timing.
        certified = any(
            key.startswith("parity") for key in bench.get("counters", {})
        )
        print(f"{bench['name']:28s} {timing['best_s']*1e3:8.2f}ms "
              f"{timing['mean_s']*1e3:8.2f}ms "
              f"{'%.2fx' % speedup if speedup else '-':>8s} "
              f"{'yes' if certified else '-':>7s}")

    if args.against is None:
        return 0
    baseline_path = Path(args.against)
    if not baseline_path.is_file():
        print(f"\nbaseline {baseline_path} not found", file=sys.stderr)
        return 2
    try:
        baseline = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as exc:
        print(f"\nbaseline {baseline_path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 2
    base_errors = validate_report(baseline)
    if base_errors:
        print(f"\nbaseline {baseline_path} fails schema validation:",
              file=sys.stderr)
        for err in base_errors:
            print(f"  {err}", file=sys.stderr)
        return 2
    comparisons = compare_reports(report, baseline, args.threshold)
    print(f"\ncomparison against {baseline_path} "
          f"(threshold {args.threshold:.0f}%):")
    failed = False
    for comp in comparisons:
        if comp.missing:
            print(f"  {comp.name:28s} MISSING from current run")
            failed = True
            continue
        verdict = "REGRESSED" if comp.regressed else "ok"
        print(f"  {comp.name:28s} {comp.ratio:6.2f}x baseline  {verdict}")
        failed = failed or comp.regressed
    if failed:
        print("\nperformance regression detected", file=sys.stderr)
        return 3
    print("\nno regressions")
    return 0


def cmd_train(args) -> int:
    """Train the demo CNN with distributed updates; report the curves."""
    import numpy as np

    from repro.core import (
        MicroDeepTrainer,
        UnitGraph,
        grid_correspondence_assignment,
    )
    from repro.faults.scenario import toy_field_task
    from repro.nn import (
        Conv2D, Dense, Flatten, MaxPool2D, ReLU, SGD, Sequential,
    )
    from repro.wsn import GridTopology

    if args.samples <= 0:
        print(f"--samples must be positive, got {args.samples}",
              file=sys.stderr)
        return 2

    def build_and_fit():
        rng = np.random.default_rng(args.seed)
        x, y = toy_field_task(args.samples, (10, 10), rng)
        model = Sequential([
            Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(),
            Dense(8), ReLU(), Dense(2),
        ])
        model.build((1, 10, 10), np.random.default_rng(args.seed))
        graph = UnitGraph(model)
        placement = grid_correspondence_assignment(graph, GridTopology(4, 4))
        trainer = MicroDeepTrainer(
            graph, placement, SGD(lr=0.05),
            update_mode=args.mode, backward_impl=args.impl,
        )
        history = trainer.fit(
            x, y, epochs=args.epochs, batch_size=args.batch_size,
            rng=np.random.default_rng(args.seed + 1),
        )
        loss, acc = trainer.evaluate(x, y)
        return history, loss, acc

    print(f"training: mode={args.mode} impl={args.impl} "
          f"epochs={args.epochs} batch={args.batch_size} "
          f"samples={args.samples} seed={args.seed}")
    if args.trace:
        from repro import obs

        # The trainer resolves its telemetry at construction, so the
        # whole build-and-fit runs inside the session.
        with obs.session() as tel:
            history, loss, acc = build_and_fit()
        trace_path = obs.write_trace(tel, args.trace)
        steps = tel.metrics.total("train.steps")
        print(f"telemetry: {steps:.0f} train.step spans -> {trace_path}")
    else:
        history, loss, acc = build_and_fit()
    for epoch, (ep_loss, ep_acc) in enumerate(
        zip(history.train_loss, history.train_accuracy)
    ):
        print(f"  epoch {epoch + 1:3d}: loss={ep_loss:.4f} "
              f"accuracy={ep_acc:.3f}")
    print(f"final: loss={loss:.4f} accuracy={acc:.3f}")
    return 0


def _parse_scalar(text: str):
    """int, then float, then bool, then the bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_seeds(spec: str) -> list:
    """``"0,3,7"`` and ``"0-4"`` (inclusive) forms, freely mixed."""
    seeds = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        lo, dash, hi = part.partition("-")
        if dash and lo:
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"empty seed spec {spec!r}")
    return seeds


def _parse_grid(entries) -> dict:
    """``key=v1,v2,...`` entries into an ordered value-list dict."""
    grid = {}
    for entry in entries or []:
        key, eq, values = entry.partition("=")
        if not eq or not key or not values:
            raise ValueError(
                f"grid entry {entry!r} is not of the form key=v1,v2,..."
            )
        grid[key] = [_parse_scalar(v) for v in values.split(",")]
    return grid


def cmd_sweep(args) -> int:
    """Fan a registered task over seeds × grid; write the report."""
    import json

    from repro.par import available_tasks, make_points, run_sweep

    tasks = available_tasks()
    if args.list:
        print("registered sweep tasks (repro sweep <task>):")
        for name, description in tasks.items():
            print(f"  {name:12s} {description}")
        return 0
    if args.task is None:
        print("a task name is required (or --list)", file=sys.stderr)
        return 2
    if args.task not in tasks:
        print(f"unknown sweep task {args.task!r}; registered: "
              f"{', '.join(tasks)}", file=sys.stderr)
        return 2
    try:
        seeds = _parse_seeds(args.seeds)
        grid = _parse_grid(args.grid)
        base = _parse_grid(args.set)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    base_config = {k: v[0] for k, v in base.items()}
    points = make_points(seeds=seeds, grid=grid, base_config=base_config)
    print(f"sweeping {args.task!r}: {len(points)} points "
          f"({len(seeds)} seeds x {max(1, len(points) // len(seeds))} "
          f"configs), jobs={args.jobs}, root seed {args.root_seed}")
    report = run_sweep(
        args.task, points, jobs=args.jobs, root_seed=args.root_seed
    )

    header = f"{'idx':>4s} {'seed':>6s} {'config':32s} result"
    print(header)
    for result in report.results:
        config = json.dumps(result.config, sort_keys=True)
        if isinstance(result.value, dict) and "accuracy" in result.value:
            shown = f"accuracy={result.value['accuracy']:.4f}"
        else:
            shown = json.dumps(result.value, sort_keys=True)[:48]
        print(f"{result.index:4d} {str(result.seed):>6s} {config:32s} {shown}")
    print(f"\nmerged trace digest: {report.merged_trace_digest()}")
    print(f"report digest:       {report.digest()}")
    print(f"elapsed: {report.elapsed_s:.2f}s with {report.jobs} job(s)")
    if args.out:
        doc = report.to_dict(include_wall=True)
        Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.out}")
    return 0


def cmd_serve(args) -> int:
    """Host the recognition service until interrupted."""
    import asyncio

    from repro.serve import BatchPolicy, ServeApp, TenantConfig
    from repro.serve.tenants import SCENARIOS

    names = [t.strip() for t in args.tenants.split(",") if t.strip()]
    if not names:
        print("at least one tenant is required (--tenants)", file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}; available: "
              f"{', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    try:
        policy = BatchPolicy(
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            max_pending=args.max_pending,
        )
        policy.validate()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    app = ServeApp(policy)
    for name in names:
        print(f"building tenant {name!r} "
              f"(seed {args.seed}, {args.epochs} training epoch(s))...",
              flush=True)
        app.add_tenant(TenantConfig(
            name=name, scenario=name, seed=args.seed,
            train_epochs=args.epochs,
        ))

    def ready(started) -> None:
        # Flushed so a supervisor reading a pipe sees readiness live.
        print(f"serving on http://{args.host}:{started.port}")
        print("  POST /v1/recognize   {\"tenant\": ..., \"input\": [[...]]}")
        print("  POST /v1/tenants     hot-swap a tenant")
        print("  GET  /healthz /metrics /traces")
        print(f"  batching: max_batch={policy.max_batch} "
              f"max_delay={policy.max_delay}s "
              f"max_pending={policy.max_pending}", flush=True)

    try:
        asyncio.run(app.run(
            args.host, args.port, stop_after=args.stop_after, ready=ready,
        ))
    except KeyboardInterrupt:
        print("interrupted; draining")
    print(f"served {app.requests_handled} request(s); bye")
    return 0


def _default_monitor_rules(target: str):
    """Built-in rule sets when ``monitor`` runs without ``--rules``."""
    from repro.obs.watch import Rule

    if target == "train":
        return [
            Rule(name="loss-plateau", series="train.epoch_loss",
                 kind="trend", op=">=", value=0.0, windows=3,
                 severity="warning"),
            Rule(name="loss-rising", series="train.epoch_loss",
                 kind="trend", op=">", value=0.0, windows=2,
                 severity="critical"),
        ]
    rules = [
        Rule(name="packet-drops", series="net.dropped_causes",
             kind="rate", op=">", value=0.0, severity="warning"),
        Rule(name="fault-transitions", series="faults.transitions",
             kind="threshold", op=">", value=0.0, severity="warning"),
        Rule(name="retry-storm", series="resilient.retries",
             kind="rate", op=">", value=500.0, severity="critical"),
    ]
    if target == "demo":
        rules.append(Rule(
            name="delivery-stalled", series="net.delivered",
            kind="absence", windows=3, severity="critical",
        ))
    return rules


def cmd_monitor(args) -> int:
    """Run a workload under the flight recorder + SLO watchdog."""
    import numpy as np

    from repro import obs

    target = args.target
    if target not in ("demo", "train") and target not in EXAMPLES:
        print(f"unknown monitor target {target!r}; use 'demo', 'train', "
              f"or an example name (see 'list')", file=sys.stderr)
        return 2
    if args.rules:
        try:
            rules = obs.load_rules(args.rules)
        except (OSError, ValueError) as exc:
            print(f"cannot load rules from {args.rules}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        rules = _default_monitor_rules(target)

    with obs.session() as tel:
        recorder = obs.FlightRecorder(
            tel, interval=args.interval, window=args.window
        )
        watchdog = obs.Watchdog(rules, telemetry=tel)
        recorder.attach(watchdog)
        if target == "demo":
            from repro.faults import FaultPlan, demo_scenario, inject

            print(f"building demo scenario (seed {args.seed}) ...")
            scenario, (x, y) = demo_scenario(seed=args.seed)
            plan = FaultPlan(seed=args.seed, loss_rate=args.loss)
            node_ids = sorted(scenario.topology.nodes)
            rng = np.random.default_rng(args.seed)
            for node in rng.choice(
                node_ids, size=min(args.crashes, len(node_ids)),
                replace=False,
            ):
                plan.crash(0.0, int(node))
            run = inject(scenario, plan, recorder=recorder)
            acc = run.accuracy(x, y, chunks=args.chunks)
            recorder.sample()  # capture the end state
            print(f"degraded accuracy {acc:.3f} over {args.chunks} "
                  f"inference(s), virtual time {run.sim.now:.3f}s")
        elif target == "train":
            from repro.core import (
                MicroDeepTrainer,
                UnitGraph,
                grid_correspondence_assignment,
            )
            from repro.faults.scenario import toy_field_task
            from repro.nn import Conv2D, Dense, Flatten, ReLU, SGD, Sequential
            from repro.wsn import GridTopology

            print(f"training demo CNN for {args.epochs} epoch(s) "
                  f"(seed {args.seed}) ...")
            rng = np.random.default_rng(args.seed)
            x, y = toy_field_task(args.samples, (8, 8), rng)
            model = Sequential([Conv2D(2, 3), ReLU(), Flatten(), Dense(2)])
            model.build((1, 8, 8), np.random.default_rng(args.seed))
            graph = UnitGraph(model)
            placement = grid_correspondence_assignment(
                graph, GridTopology(3, 3)
            )
            trainer = MicroDeepTrainer(
                graph, placement, SGD(lr=0.05), update_mode="local"
            )
            trainer.fit(
                x, y, epochs=args.epochs, batch_size=16,
                rng=np.random.default_rng(args.seed + 1),
                recorder=recorder,
            )
        else:
            module, code = _load_example(target)
            if module is None:
                return code
            module.main()
            recorder.sample()  # one end-of-run snapshot of the registry

    print()
    print(obs.health_table(recorder, watchdog, last=args.window))
    if args.out:
        Path(args.out).write_text(recorder.to_jsonl() + "\n")
        print(f"\ntimeline ({len(recorder)} samples, digest "
              f"{recorder.digest()[:12]}…) written to {args.out}")
    if args.alerts:
        Path(args.alerts).write_text(watchdog.to_jsonl() + "\n")
        print(f"alerts ({len(watchdog.alerts)}) written to {args.alerts}")
    if watchdog.critical_count():
        print(f"\n{watchdog.critical_count()} critical alert(s) fired",
              file=sys.stderr)
        return 4
    return 0


def cmd_topo(args) -> int:
    """Generate a topology, print its summary, optionally export it."""
    import json

    import numpy as np

    from repro.wsn import (
        GridTopology,
        RandomTopology,
        load_map_topology,
        make_topology,
        sample_map_path,
    )

    kind = args.kind
    try:
        if kind == "grid":
            topo = GridTopology(args.rows, args.cols, spacing=args.spacing,
                                comm_range=args.comm_range)
        elif kind == "random":
            topo = RandomTopology(
                args.n, args.side, args.side,
                comm_range=args.comm_range if args.comm_range else 15.0,
                rng=np.random.default_rng(args.seed),
            )
        elif kind == "map":
            path = Path(args.path) if args.path else sample_map_path()
            topo = load_map_topology(path, comm_range=args.comm_range)
        else:
            params = {"n_leaves" if kind == "star" else "n_nodes": args.n}
            if kind in ("clique", "star"):
                params["radius"] = args.radius
            else:
                params["spacing"] = args.spacing
            if args.comm_range is not None:
                params["comm_range"] = args.comm_range
            topo = make_topology(kind, **params)
    except (ValueError, OSError) as exc:
        print(f"topology generation failed: {exc}", file=sys.stderr)
        return 2
    g = topo.graph()
    degrees = sorted(d for __, d in g.degree())
    adjacency = topo.sparse_adjacency()
    print(f"kind:        {kind}")
    print(f"nodes:       {len(topo)} ({len(topo.alive_nodes())} alive)")
    print(f"comm_range:  {topo.comm_range:g}")
    print(f"edges:       {adjacency.n_edges}")
    print(f"connected:   {topo.is_connected()}")
    if degrees:
        mean = sum(degrees) / len(degrees)
        print(f"degree:      min {degrees[0]}  mean {mean:.2f}  "
              f"max {degrees[-1]}")
    if args.out:
        doc = {
            "name": f"{kind}-{len(topo)}",
            "comm_range": topo.comm_range,
            "nodes": [
                {"id": n.node_id, "pos": [n.position[0], n.position[1]]}
                for n in topo
            ],
        }
        Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
        print(f"map written to {args.out} (reload with "
              f"'repro topo map --path {args.out}')")
    return 0


def main(argv: Optional[list] = None) -> int:
    """Argument parsing and dispatch; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the example scenarios")
    sub.add_parser("info", help="package and layout information")
    run_parser = sub.add_parser("run", help="run one example scenario")
    run_parser.add_argument("name", help="example name (see 'list')")
    faults_parser = sub.add_parser(
        "faults", help="fault-injection utilities"
    )
    faults_sub = faults_parser.add_subparsers(dest="faults_command",
                                              required=True)
    faults_run = faults_sub.add_parser(
        "run", help="inject faults into a demo MicroDeep inference"
    )
    faults_run.add_argument("--loss", type=float, default=0.2,
                            help="per-hop packet loss rate (default 0.2)")
    faults_run.add_argument("--corrupt", type=float, default=0.0,
                            help="per-hop corruption rate (default 0)")
    faults_run.add_argument("--duplicate", type=float, default=0.0,
                            help="per-hop duplication rate (default 0)")
    faults_run.add_argument("--crashes", type=int, default=2,
                            help="nodes crashed at t=0 (default 2)")
    faults_run.add_argument("--seed", type=int, default=0,
                            help="root seed for all fault draws")
    faults_run.add_argument("--trace", default=None, metavar="PATH",
                            help="write the full JSONL trace to PATH")
    bench_parser = sub.add_parser(
        "bench", help="run the performance suite and write BENCH_perf.json"
    )
    bench_parser.add_argument("--quick", action="store_true",
                              help="reduced sizes/repeats (CI smoke mode)")
    bench_parser.add_argument("--seed", type=int, default=0,
                              help="root seed for all benchmark inputs")
    bench_parser.add_argument("--out", default="BENCH_perf.json",
                              metavar="PATH",
                              help="report path (default BENCH_perf.json)")
    bench_parser.add_argument("--against", default=None, metavar="JSON",
                              help="baseline report; exit 3 on regression")
    bench_parser.add_argument("--threshold", type=float, default=25.0,
                              metavar="PCT",
                              help="regression threshold in percent "
                                   "(default 25)")
    bench_parser.add_argument("--trace", default=None, metavar="PATH",
                              help="record the suite under a telemetry "
                                   "session and write the JSONL trace "
                                   "(heavy in full mode; pair with --quick)")
    bench_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="run independent benchmarks on N worker "
                                   "processes (each timing loop stays "
                                   "pinned to one worker; default 1)")
    train_parser = sub.add_parser(
        "train", help="train the demo CNN with distributed updates"
    )
    train_parser.add_argument("--mode", choices=("exact", "local"),
                              default="local",
                              help="update mode (default local)")
    train_parser.add_argument("--impl", choices=("vectorized", "reference"),
                              default="vectorized",
                              help="'local' backward implementation "
                                   "(default vectorized)")
    train_parser.add_argument("--epochs", type=int, default=5,
                              help="training epochs (default 5)")
    train_parser.add_argument("--batch-size", type=int, default=8,
                              help="mini-batch size (default 8)")
    train_parser.add_argument("--samples", type=int, default=120,
                              help="toy-task samples (default 120)")
    train_parser.add_argument("--seed", type=int, default=0,
                              help="seed for data, init and batching")
    train_parser.add_argument("--trace", default=None, metavar="PATH",
                              help="record training telemetry and write "
                                   "the JSONL trace to PATH")
    sweep_parser = sub.add_parser(
        "sweep", help="fan a registered task over seeds x config grid "
                      "(deterministic process-parallel engine)"
    )
    sweep_parser.add_argument("task", nargs="?", default=None,
                              help="registered task name (see --list)")
    sweep_parser.add_argument("--seeds", default="0", metavar="SPEC",
                              help="seed list: '0,1,2' and/or '0-4' "
                                   "(default '0')")
    sweep_parser.add_argument("--grid", action="append", metavar="KEY=V1,V2",
                              help="config axis (repeatable); the sweep "
                                   "covers the cartesian product")
    sweep_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                              help="fixed config entry applied to every "
                                   "point (repeatable)")
    sweep_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes (default 1; the JSON "
                                   "report is identical for any N, modulo "
                                   "the wall section)")
    sweep_parser.add_argument("--root-seed", type=int, default=0,
                              help="root of the per-point RNG substreams "
                                   "(default 0)")
    sweep_parser.add_argument("--out", default=None, metavar="PATH",
                              help="write the JSON report to PATH")
    sweep_parser.add_argument("--list", action="store_true",
                              help="list the registered tasks and exit")
    trace_parser = sub.add_parser(
        "trace", help="run an example with telemetry on; write its trace"
    )
    trace_parser.add_argument("name", help="example name (see 'list')")
    trace_parser.add_argument("--out", default="trace.jsonl", metavar="PATH",
                              help="JSONL trace path (default trace.jsonl)")
    trace_parser.add_argument("--summary", default=None, metavar="PATH",
                              help="write the markdown summary to PATH "
                                   "instead of stdout")
    trace_parser.add_argument("--wall", action="store_true",
                              help="include wall-clock durations (trace is "
                                   "no longer byte-deterministic)")
    serve_parser = sub.add_parser(
        "serve", help="host the multi-tenant recognition HTTP service"
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="bind port; 0 picks an ephemeral port "
                                   "(default 8080)")
    serve_parser.add_argument("--tenants", default="fall,hvac",
                              metavar="NAMES",
                              help="comma-separated scenario tenants "
                                   "(default fall,hvac)")
    serve_parser.add_argument("--seed", type=int, default=0,
                              help="tenant build seed (default 0)")
    serve_parser.add_argument("--epochs", type=int, default=2,
                              help="training epochs per tenant at startup "
                                   "(default 2; 0 skips training)")
    serve_parser.add_argument("--max-batch", type=int, default=8,
                              metavar="N",
                              help="flush a tenant's window at N pending "
                                   "requests (default 8)")
    serve_parser.add_argument("--max-delay", type=float, default=0.005,
                              metavar="SECONDS",
                              help="batching window (default 0.005; 0 "
                                   "serves each request synchronously)")
    serve_parser.add_argument("--max-pending", type=int, default=256,
                              metavar="N",
                              help="per-tenant backpressure bound "
                                   "(default 256)")
    serve_parser.add_argument("--stop-after", type=int, default=None,
                              metavar="N",
                              help="exit cleanly after N handled requests "
                                   "(smoke tests)")
    monitor_parser = sub.add_parser(
        "monitor", help="run a workload under the flight recorder + "
                        "SLO watchdog; exit 4 on critical alerts"
    )
    monitor_parser.add_argument("target", nargs="?", default="demo",
                                help="'demo' (fault-injected inference), "
                                     "'train', or an example name "
                                     "(default demo)")
    monitor_parser.add_argument("--rules", default=None, metavar="JSON",
                                help="SLO rule file; built-in defaults "
                                     "per target when omitted")
    monitor_parser.add_argument("--seed", type=int, default=0,
                                help="workload seed (default 0)")
    monitor_parser.add_argument("--interval", type=float, default=0.02,
                                metavar="SECONDS",
                                help="flight-recorder cadence on the "
                                     "workload clock (default 0.02)")
    monitor_parser.add_argument("--window", type=int, default=8,
                                metavar="N",
                                help="rolling-window width in samples "
                                     "(default 8)")
    monitor_parser.add_argument("--loss", type=float, default=0.2,
                                help="demo: per-hop packet loss rate "
                                     "(default 0.2)")
    monitor_parser.add_argument("--crashes", type=int, default=2,
                                help="demo: nodes crashed at t=0 "
                                     "(default 2)")
    monitor_parser.add_argument("--chunks", type=int, default=6,
                                help="demo: independent inference calls "
                                     "(default 6)")
    monitor_parser.add_argument("--epochs", type=int, default=6,
                                help="train: training epochs (default 6)")
    monitor_parser.add_argument("--samples", type=int, default=120,
                                help="train: toy-task samples "
                                     "(default 120)")
    monitor_parser.add_argument("--out", default=None, metavar="PATH",
                                help="write the timeline JSONL to PATH")
    monitor_parser.add_argument("--alerts", default=None, metavar="PATH",
                                help="write the fired-alert JSONL to PATH")
    topo_parser = sub.add_parser(
        "topo", help="generate a topology (clique/chain/ring/star/grid/"
                     "random/map), summarize it, optionally export JSON"
    )
    topo_parser.add_argument("kind",
                             choices=("clique", "chain", "ring", "star",
                                      "grid", "random", "map"),
                             help="topology shape or 'map' for JSON import")
    topo_parser.add_argument("--n", type=int, default=16,
                             help="node count (star: leaf count; "
                                  "default 16)")
    topo_parser.add_argument("--rows", type=int, default=4,
                             help="grid rows (default 4)")
    topo_parser.add_argument("--cols", type=int, default=4,
                             help="grid cols (default 4)")
    topo_parser.add_argument("--spacing", type=float, default=1.0,
                             help="chain/ring/grid spacing (default 1)")
    topo_parser.add_argument("--radius", type=float, default=1.0,
                             help="clique/star circle radius (default 1)")
    topo_parser.add_argument("--side", type=float, default=40.0,
                             help="random: square side length (default 40)")
    topo_parser.add_argument("--comm-range", type=float, default=None,
                             help="override the shape's default comm range")
    topo_parser.add_argument("--seed", type=int, default=0,
                             help="random placement seed (default 0)")
    topo_parser.add_argument("--path", default=None, metavar="JSON",
                             help="map: file to import (default: the "
                                  "committed sample district)")
    topo_parser.add_argument("--out", default=None, metavar="JSON",
                             help="export the topology as a map JSON file")
    stats_parser = sub.add_parser(
        "stats", help="per-node cost tables from a written trace"
    )
    stats_parser.add_argument("trace", help="JSONL trace file (from 'trace')")
    stats_parser.add_argument("--against", default=None, metavar="JSONL",
                              help="second trace; print the Fig.-10-style "
                                   "side-by-side cost comparison")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "info":
        return cmd_info()
    if args.command == "faults":
        return cmd_faults_run(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "train":
        return cmd_train(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "monitor":
        return cmd_monitor(args)
    if args.command == "topo":
        return cmd_topo(args)
    if args.command == "stats":
        return cmd_stats(args)
    return cmd_run(args.name)


if __name__ == "__main__":
    sys.exit(main())
