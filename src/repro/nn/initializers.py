"""Weight initializers.

Each initializer takes a shape and a :class:`numpy.random.Generator`
and returns a float64 array; fan-in/fan-out are derived from the shape
using the usual convention (dense: ``(in, out)``, conv: ``(out_c, in_c,
kh, kw)``).
"""

from __future__ import annotations

import numpy as np


def _fans(shape: tuple) -> tuple:
    if len(shape) == 2:  # dense (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv (out_c, in_c, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def he_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    fan_in, __ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def glorot_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) uniform initialization."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)


INITIALIZERS = {
    "he_normal": he_normal,
    "glorot_uniform": glorot_uniform,
    "zeros": zeros,
}


def get(name: str):
    """Look up an initializer by name.

    Raises:
        KeyError: for unknown names, listing the valid ones.
    """
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; valid: {sorted(INITIALIZERS)}"
        ) from None
