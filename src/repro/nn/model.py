"""Sequential model container."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer


class Sequential:
    """A linear stack of layers.

    Layers are late-built on :meth:`build` (or the first forward with a
    known input shape), which fixes parameter shapes and seeds.
    """

    def __init__(self, layers: Optional[Iterable[Layer]] = None) -> None:
        self.layers: List[Layer] = list(layers) if layers else []
        self._built = False
        self._input_shape: Optional[tuple] = None

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        if self._built:
            raise RuntimeError("cannot add layers after build()")
        self.layers.append(layer)
        return self

    def build(self, input_shape: tuple, rng: np.random.Generator) -> None:
        """Initialize every layer for per-sample ``input_shape``."""
        shape = tuple(input_shape)
        self._input_shape = shape
        for layer in self.layers:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self._built = True

    @property
    def built(self) -> bool:
        return self._built

    @property
    def input_shape(self) -> Optional[tuple]:
        return self._input_shape

    def layer_shapes(self) -> List[Tuple[tuple, tuple]]:
        """Per-layer ``(input_shape, output_shape)`` pairs."""
        if not self._built:
            raise RuntimeError("model is not built")
        shapes = []
        shape = self._input_shape
        for layer in self.layers:
            out = layer.output_shape(shape)
            shapes.append((shape, out))
            shape = out
        return shapes

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the batch through every layer."""
        if not self._built:
            raise RuntimeError("model is not built; call build(input_shape, rng)")
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate dLoss/dOutput; returns dLoss/dInput."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the final layer output)."""
        return self.forward(x, training=False).argmax(axis=-1)

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def param_slots(self):
        """Optimizer slots: ``(slot_id, params, grads)`` per layer."""
        slots = []
        for i, layer in enumerate(self.layers):
            params = layer.params()
            if params:
                slots.append((f"layer{i}", params, layer.grads()))
        return slots

    def num_params(self) -> int:
        """Total trainable scalar count."""
        return sum(
            int(np.prod(p.shape))
            for __, params, __g in self.param_slots()
            for p in params.values()
        )

    def get_weights(self) -> List[np.ndarray]:
        """Flat list of parameter arrays (copies)."""
        return [
            p.copy()
            for __, params, __g in self.param_slots()
            for __n, p in sorted(params.items())
        ]

    def set_weights(self, weights: List[np.ndarray]) -> None:
        """Load weights produced by :meth:`get_weights`."""
        flat = [
            p
            for __, params, __g in self.param_slots()
            for __n, p in sorted(params.items())
        ]
        if len(flat) != len(weights):
            raise ValueError(
                f"weight count mismatch: model has {len(flat)}, got {len(weights)}"
            )
        for dst, src in zip(flat, weights):
            if dst.shape != src.shape:
                raise ValueError(f"shape mismatch: {dst.shape} vs {src.shape}")
            dst[...] = src

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential([{inner}])"
