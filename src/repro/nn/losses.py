"""Loss functions with explicit forward/backward."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class CrossEntropyLoss:
    """Softmax + cross-entropy over integer class labels.

    ``forward`` returns mean loss over the batch; ``backward`` returns
    dLoss/dLogits (already divided by batch size).
    """

    def __init__(self) -> None:
        self._probs = None
        self._labels = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
        labels = np.asarray(labels, dtype=int)
        probs = softmax(logits)
        self._probs = probs
        self._labels = labels
        n = logits.shape[0]
        picked = probs[np.arange(n), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n

    def predict(self, logits: np.ndarray) -> np.ndarray:
        """Class predictions from logits."""
        return logits.argmax(axis=-1)


class MSELoss:
    """Mean squared error (averaged over all elements)."""

    def __init__(self) -> None:
        self._diff = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = pred - target
        self._diff = diff
        return float((diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
