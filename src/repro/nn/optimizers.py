"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class Optimizer:
    """Base optimizer: steps over (params, grads) dict pairs keyed by
    a stable slot id so per-parameter state survives across steps."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def step(self, slots: List[Tuple[str, Dict[str, np.ndarray], Dict[str, np.ndarray]]]) -> None:
        """Apply one update.

        Args:
            slots: list of ``(slot_id, params, grads)`` where params and
                grads are parallel name->array dicts.
        """
        for slot_id, params, grads in slots:
            for name, p in params.items():
                self._update(f"{slot_id}.{name}", p, grads[name])

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum == 0.0:
            param -= self.lr * grad
            return
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(param)
            self._velocity[key] = v
        v *= self.momentum
        v -= self.lr * grad
        param += v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t: Dict[str, int] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad**2
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
