"""Model weight serialization.

Saves/loads a built :class:`~repro.nn.model.Sequential`'s weights to a
single ``.npz`` file, with an architecture fingerprint so weights are
never silently loaded into a mismatched model — the failure mode that
matters when a trained MicroDeep model is redeployed onto a different
sensor network.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.model import Sequential


def _fingerprint(model: Sequential) -> str:
    """Architecture signature: layer class names + parameter shapes."""
    parts = []
    for i, layer in enumerate(model.layers):
        shapes = {
            name: list(p.shape) for name, p in sorted(layer.params().items())
        }
        parts.append([type(layer).__name__, shapes])
    return json.dumps([list(model.input_shape), parts])


def save_weights(model: Sequential, path: Union[str, Path]) -> None:
    """Write the model's weights and fingerprint to ``path`` (.npz).

    Raises:
        RuntimeError: if the model is unbuilt.
    """
    if not model.built:
        raise RuntimeError("cannot save an unbuilt model")
    arrays = {
        f"w{i}": w for i, w in enumerate(model.get_weights())
    }
    arrays["__fingerprint__"] = np.frombuffer(
        _fingerprint(model).encode("utf-8"), dtype=np.uint8
    )
    np.savez(Path(path), **arrays)


def load_weights(model: Sequential, path: Union[str, Path]) -> Sequential:
    """Load weights saved by :func:`save_weights` into ``model``.

    Raises:
        RuntimeError: if the model is unbuilt.
        ValueError: if the stored fingerprint does not match the
            model's architecture.
    """
    if not model.built:
        raise RuntimeError("build the model before loading weights")
    with np.load(Path(path)) as data:
        stored = bytes(data["__fingerprint__"]).decode("utf-8")
        expected = _fingerprint(model)
        if stored != expected:
            raise ValueError(
                "architecture mismatch: the file was saved from a "
                "different model\n"
                f"  file:  {stored}\n  model: {expected}"
            )
        n = len([k for k in data.files if k.startswith("w")])
        weights = [data[f"w{i}"] for i in range(n)]
    model.set_weights(weights)
    return model
