"""From-scratch NumPy CNN framework.

This is the substrate on which MicroDeep (:mod:`repro.core`) runs.  It
is deliberately free of autograd frameworks: every layer exposes an
explicit ``forward``/``backward`` pair, and the spatial layers also
expose their *unit-level dependency structure*
(:meth:`~repro.nn.layers.base.Layer.spatial_dependencies`), which is
what lets MicroDeep place CNN units on sensor nodes and count the
messages each placement induces.

Data layout convention: batches are ``(N, C, H, W)`` for spatial layers
and ``(N, F)`` for dense layers.
"""

from repro.nn.layers.base import Layer, ParamLayer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pool import MaxPool2D, AvgPool2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optimizers import SGD, Adam
from repro.nn.model import Sequential
from repro.nn.training import Trainer, TrainingHistory
from repro.nn.serialization import load_weights, save_weights

__all__ = [
    "Layer",
    "ParamLayer",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "Sequential",
    "Trainer",
    "TrainingHistory",
    "save_weights",
    "load_weights",
]
