"""Mini-batch training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


class Trainer:
    """Trains a :class:`Sequential` classifier with mini-batch SGD.

    Args:
        model: a built (or to-be-built) Sequential model.
        optimizer: parameter-update rule.
        loss: loss object; defaults to softmax cross-entropy.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        loss: Optional[CrossEntropyLoss] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss if loss is not None else CrossEntropyLoss()

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        patience: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train and return the per-epoch history.

        With ``patience`` set and validation data supplied, training
        stops after that many epochs without a validation-accuracy
        improvement and the best weights are restored.

        Raises:
            ValueError: if ``x`` is empty — an empty dataset would
                otherwise surface as a ``ZeroDivisionError`` deep in
                the epoch averaging.
        """
        if x.shape[0] == 0:
            raise ValueError(
                "cannot fit on an empty dataset (x has 0 samples)"
            )
        if not self.model.built:
            self.model.build(x.shape[1:], rng)
        history = TrainingHistory()
        n = x.shape[0]
        best_acc = -np.inf
        best_weights = None
        stale = 0
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = x[idx], y[idx]
                self.model.zero_grads()
                logits = self.model.forward(xb, training=True)
                batch_loss = self.loss.forward(logits, yb)
                self.model.backward(self.loss.backward())
                self.optimizer.step(self.model.param_slots())
                epoch_loss += batch_loss * len(idx)
                correct += int((logits.argmax(axis=-1) == yb).sum())
            history.train_loss.append(epoch_loss / n)
            history.train_accuracy.append(correct / n)
            if x_val is not None and y_val is not None:
                val_loss, val_acc = self.evaluate(x_val, y_val)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
                if val_acc > best_acc:
                    best_acc = val_acc
                    best_weights = self.model.get_weights()
                    stale = 0
                else:
                    stale += 1
                if patience is not None and stale >= patience:
                    break
            if verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={history.train_loss[-1]:.4f} "
                    f"acc={history.train_accuracy[-1]:.4f}"
                )
                if history.val_accuracy:
                    msg += f" val_acc={history.val_accuracy[-1]:.4f}"
                print(msg)
        if best_weights is not None:
            self.model.set_weights(best_weights)
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> tuple:
        """Return ``(mean_loss, accuracy)`` on the given data.

        Raises:
            ValueError: if ``x`` is empty — there is no mean loss or
                accuracy of zero samples.
        """
        n = x.shape[0]
        if n == 0:
            raise ValueError(
                "cannot evaluate on an empty dataset (x has 0 samples)"
            )
        total_loss = 0.0
        correct = 0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.model.forward(xb, training=False)
            total_loss += self.loss.forward(logits, yb) * len(xb)
            correct += int((logits.argmax(axis=-1) == yb).sum())
        return total_loss / n, correct / n
