"""Inverted dropout layer."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout: scales kept activations by ``1/(1-rate)`` at
    training time so inference needs no rescaling.

    The RNG is captured at :meth:`build` time so runs are reproducible.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng: np.random.Generator = None
        self._mask = None

    def build(self, input_shape: tuple, rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        self._rng = rng

    def output_shape(self, input_shape: tuple) -> tuple:
        return tuple(input_shape)

    @property
    def is_elementwise(self) -> bool:
        return True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out * self._mask
