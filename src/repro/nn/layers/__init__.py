"""Layer implementations for the NumPy CNN framework."""

from repro.nn.layers.base import Layer, ParamLayer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pool import MaxPool2D, AvgPool2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.batchnorm import BatchNorm

__all__ = [
    "Layer",
    "ParamLayer",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Dropout",
    "BatchNorm",
]
