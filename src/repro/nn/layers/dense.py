"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.layers.base import ParamLayer


class Dense(ParamLayer):
    """Affine layer ``y = x W + b`` over ``(N, F)`` batches."""

    def __init__(self, units: int, weight_init: str = "glorot_uniform") -> None:
        super().__init__()
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = units
        self.weight_init = weight_init
        self._cache = None

    def build(self, input_shape: tuple, rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects flat input, got shape {input_shape}; "
                "insert a Flatten layer first"
            )
        in_features = input_shape[0]
        init = initializers.get(self.weight_init)
        self.add_param("W", init((in_features, self.units), rng))
        self.add_param("b", np.zeros(self.units))

    def output_shape(self, input_shape: tuple) -> tuple:
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x @ self._params["W"] + self._params["b"]
        if training:
            self._cache = x
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x = self._cache
        self._grads["W"] += x.T @ grad_out
        self._grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self._params["W"].T

    def backward_nodes(
        self, grad_stack: np.ndarray, grad_param: np.ndarray
    ) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x = self._cache
        self._grads["W"] += x.T @ grad_param
        self._grads["b"] += grad_param.sum(axis=0)
        return grad_stack @ self._params["W"].T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense(units={self.units})"
