"""Batch normalization."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers.base import ParamLayer, SpatialDeps, elementwise_dependencies


class BatchNorm(ParamLayer):
    """Batch normalization over the channel/feature axis.

    Works on ``(N, F)`` (normalizing each feature) and ``(N, C, H, W)``
    (normalizing each channel over batch and space).  Running
    statistics accumulate with ``momentum`` during training and are
    used at inference.

    Spatially this is per-position (elementwise) at *inference*; the
    batch statistics coupling exists only during centralized training,
    so MicroDeep treats it as communication-free like an activation.
    """

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.eps = eps
        self._cache = None
        self.running_mean: np.ndarray = None
        self.running_var: np.ndarray = None

    def build(self, input_shape: tuple, rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        n_features = input_shape[0]
        self.add_param("gamma", np.ones(n_features))
        self.add_param("beta", np.zeros(n_features))
        self.running_mean = np.zeros(n_features)
        self.running_var = np.ones(n_features)

    def output_shape(self, input_shape: tuple) -> tuple:
        return tuple(input_shape)

    @property
    def is_spatial(self) -> bool:
        return True

    @property
    def is_elementwise(self) -> bool:
        return True

    def spatial_dependencies(self, input_hw: Tuple[int, int]) -> SpatialDeps:
        return elementwise_dependencies(input_hw)

    def _axes(self, x: np.ndarray) -> tuple:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")

    def _broadcast(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return stat[None, :]
        return stat[None, :, None, None]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = self._axes(x)
        gamma = self._broadcast(self._params["gamma"], x.ndim)
        beta = self._broadcast(self._params["beta"], x.ndim)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        mean_b = self._broadcast(mean, x.ndim)
        var_b = self._broadcast(var, x.ndim)
        x_hat = (x - mean_b) / np.sqrt(var_b + self.eps)
        if training:
            self._cache = (x_hat, var_b, axes)
        return gamma * x_hat + beta

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_hat, var_b, axes = self._cache
        gamma = self._broadcast(self._params["gamma"], grad_out.ndim)
        m = np.prod([grad_out.shape[a] for a in axes])
        self._grads["gamma"] += (grad_out * x_hat).sum(axis=axes)
        self._grads["beta"] += grad_out.sum(axis=axes)
        # Standard batch-norm backward through the batch statistics.
        dx_hat = grad_out * gamma
        term1 = m * dx_hat
        term2 = dx_hat.sum(axis=axes, keepdims=True)
        term3 = x_hat * (dx_hat * x_hat).sum(axis=axes, keepdims=True)
        return (term1 - term2 - term3) / (m * np.sqrt(var_b + self.eps))
