"""im2col / col2im utilities used by the convolution layer.

Two unfold implementations coexist:

- :func:`im2col` — the reference kernel-loop version;
- :func:`im2col_cached` — consults index maps memoized per
  ``(C, H, W, kernel, stride, pad)``: when the windows do not overlap
  (``stride >= kernel``, the pooling regime) it gathers every patch
  straight into the final layout with one cached fancy index, skipping
  the kernel loop *and* the transpose copy (measured 1.4-3.4x here);
  for overlapping windows the contiguous slice copies of the reference
  loop are the fastest layout-conversion available, so the cache only
  memoizes the window geometry.

The fold direction mirrors the same split: :func:`col2im` is the
reference accumulate-loop, and :func:`col2im_cached` reuses the
memoized gather plan as a *scatter* plan — with non-overlapping
windows every padded input position receives at most one patch value,
so one fancy-index assignment replaces the kernel loop (the pooling
backward's hot path).

All pairs produce byte-identical matrices (the parity tests assert
it); the layers call the cached ones.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

#: (C, H, W, kh, kw, stride, pad) -> (k, i, j, out_h, out_w) gather maps.
_INDEX_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_INDEX_CACHE_MAX = 128


def conv_output_hw(
    height: int, width: int, kh: int, kw: int, stride: int, pad: int
) -> tuple:
    """Spatial output size of a convolution/pool window sweep."""
    out_h = (height + 2 * pad - kh) // stride + 1
    out_w = (width + 2 * pad - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride={stride}, pad={pad}) larger than "
            f"input ({height}x{width})"
        )
    return out_h, out_w


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N*out_h*out_w, C*kh*kw)`` patches."""
    n, c, h, w = x.shape
    out_h, out_w = conv_output_hw(h, w, kh, kw, stride, pad)
    img = np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)], mode="constant")
    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for y in range(kh):
        y_max = y + stride * out_h
        for xk in range(kw):
            x_max = xk + stride * out_w
            col[:, :, y, xk, :, :] = img[:, :, y:y_max:stride, xk:x_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def im2col_indices(
    c: int, h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> Tuple[Optional[np.ndarray], int, int]:
    """Memoized unfold plan ``(gather, out_h, out_w)`` for one shape.

    ``gather`` is an ``(out_h*out_w, C*kh*kw)`` flat-index matrix into
    the padded per-sample image, laid out so
    ``img.reshape(N, -1)[:, gather]`` lands every patch directly in
    :func:`im2col`'s final row/column order -- or None when the windows
    overlap (``stride < kernel``), where the reference slice-loop
    conversion beats any gather.
    """
    key = (c, h, w, kh, kw, stride, pad)
    cached = _INDEX_CACHE.get(key)
    if cached is not None:
        _INDEX_CACHE.move_to_end(key)
        return cached
    out_h, out_w = conv_output_hw(h, w, kh, kw, stride, pad)
    if stride >= kh and stride >= kw:
        padded_h, padded_w = h + 2 * pad, w + 2 * pad
        oy, ox = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        base = (oy * stride * padded_w + ox * stride).reshape(-1, 1)
        cc, ky, kx = np.meshgrid(
            np.arange(c), np.arange(kh), np.arange(kw), indexing="ij"
        )
        offsets = (cc * (padded_h * padded_w) + ky * padded_w + kx).reshape(1, -1)
        gather = base + offsets
    else:
        gather = None
    cached = (gather, out_h, out_w)
    _INDEX_CACHE[key] = cached
    if len(_INDEX_CACHE) > _INDEX_CACHE_MAX:
        _INDEX_CACHE.popitem(last=False)
    return cached


def im2col_cached(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """:func:`im2col` through the memoized index cache.

    Non-overlapping windows take the single-gather fast path; the rest
    fall back to the reference loop.  Either way the result matches
    :func:`im2col` byte for byte.
    """
    n, c, h, w = x.shape
    gather, out_h, out_w = im2col_indices(c, h, w, kh, kw, stride, pad)
    if gather is None:
        return im2col(x, kh, kw, stride, pad)
    img = (
        x if pad == 0
        else np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)],
                    mode="constant")
    )
    cols = img.reshape(n, -1)[:, gather]
    return cols.reshape(n * out_h * out_w, c * kh * kw)


def clear_index_cache() -> None:
    """Drop the memoized gather maps (test isolation hook)."""
    _INDEX_CACHE.clear()


def col2im(
    col: np.ndarray,
    input_shape: tuple,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold patch gradients back to an ``(N, C, H, W)`` image (sums
    overlapping contributions)."""
    n, c, h, w = input_shape
    out_h, out_w = conv_output_hw(h, w, kh, kw, stride, pad)
    col6 = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for y in range(kh):
        y_max = y + stride * out_h
        for xk in range(kw):
            x_max = xk + stride * out_w
            img[:, :, y:y_max:stride, xk:x_max:stride] += col6[:, :, y, xk, :, :]
    if pad == 0:
        return img
    return img[:, :, pad : pad + h, pad : pad + w]


def col2im_cached(
    col: np.ndarray,
    input_shape: tuple,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """:func:`col2im` through the memoized index cache.

    Non-overlapping windows (``stride >= kernel``) scatter every patch
    gradient with the cached gather plan in one fancy-index assignment
    — no position receives two contributions, so assignment equals the
    reference loop's accumulation byte for byte.  Overlapping windows
    fall back to :func:`col2im`.
    """
    n, c, h, w = input_shape
    gather, out_h, out_w = im2col_indices(c, h, w, kh, kw, stride, pad)
    if gather is None:
        return col2im(col, input_shape, kh, kw, stride, pad)
    padded_h, padded_w = h + 2 * pad, w + 2 * pad
    img = np.zeros((n, c * padded_h * padded_w), dtype=col.dtype)
    img[:, gather.reshape(-1)] = col.reshape(n, -1)
    img = img.reshape(n, c, padded_h, padded_w)
    if pad == 0:
        return img
    return img[:, :, pad : pad + h, pad : pad + w]
