"""im2col / col2im utilities used by the convolution layer."""

from __future__ import annotations

import numpy as np


def conv_output_hw(
    height: int, width: int, kh: int, kw: int, stride: int, pad: int
) -> tuple:
    """Spatial output size of a convolution/pool window sweep."""
    out_h = (height + 2 * pad - kh) // stride + 1
    out_w = (width + 2 * pad - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride={stride}, pad={pad}) larger than "
            f"input ({height}x{width})"
        )
    return out_h, out_w


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N*out_h*out_w, C*kh*kw)`` patches."""
    n, c, h, w = x.shape
    out_h, out_w = conv_output_hw(h, w, kh, kw, stride, pad)
    img = np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)], mode="constant")
    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for y in range(kh):
        y_max = y + stride * out_h
        for xk in range(kw):
            x_max = xk + stride * out_w
            col[:, :, y, xk, :, :] = img[:, :, y:y_max:stride, xk:x_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(
    col: np.ndarray,
    input_shape: tuple,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold patch gradients back to an ``(N, C, H, W)`` image (sums
    overlapping contributions)."""
    n, c, h, w = input_shape
    out_h, out_w = conv_output_hw(h, w, kh, kw, stride, pad)
    col6 = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for y in range(kh):
        y_max = y + stride * out_h
        for xk in range(kw):
            x_max = xk + stride * out_w
            img[:, :, y:y_max:stride, xk:x_max:stride] += col6[:, :, y, xk, :, :]
    if pad == 0:
        return img
    return img[:, :, pad : pad + h, pad : pad + w]
