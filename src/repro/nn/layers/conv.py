"""2-D convolution layer."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import initializers
from repro.nn.layers.base import ParamLayer, SpatialDeps
from repro.nn.layers.im2col import col2im_cached, conv_output_hw, im2col_cached


class Conv2D(ParamLayer):
    """Standard 2-D convolution over ``(N, C, H, W)`` batches.

    Args:
        filters: number of output channels.
        kernel_size: square kernel side or ``(kh, kw)``.
        stride: window step.
        padding: ``"valid"`` (no padding) or ``"same"``
            (zero-pad so that with stride 1 the spatial size is kept).
        weight_init: initializer name from :mod:`repro.nn.initializers`.
    """

    def __init__(
        self,
        filters: int,
        kernel_size,
        stride: int = 1,
        padding: str = "valid",
        weight_init: str = "he_normal",
    ) -> None:
        super().__init__()
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = filters
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.kh, self.kw = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight_init = weight_init
        self._cache = None

    @property
    def pad(self) -> int:
        if self.padding == "valid":
            return 0
        return (self.kh - 1) // 2

    def build(self, input_shape: tuple, rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        in_c = input_shape[0]
        init = initializers.get(self.weight_init)
        self.add_param("W", init((self.filters, in_c, self.kh, self.kw), rng))
        self.add_param("b", np.zeros(self.filters))

    def output_shape(self, input_shape: tuple) -> tuple:
        __, h, w = input_shape
        out_h, out_w = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        return (self.filters, out_h, out_w)

    @property
    def is_spatial(self) -> bool:
        return True

    def spatial_dependencies(self, input_hw: Tuple[int, int]) -> SpatialDeps:
        """Each output position reads its (possibly clipped) receptive
        field of input positions."""
        h, w = input_hw
        pad = self.pad
        out_h, out_w = conv_output_hw(h, w, self.kh, self.kw, self.stride, pad)
        deps: SpatialDeps = {}
        for oy in range(out_h):
            for ox in range(out_w):
                reads = []
                for ky in range(self.kh):
                    for kx in range(self.kw):
                        iy = oy * self.stride + ky - pad
                        ix = ox * self.stride + kx - pad
                        if 0 <= iy < h and 0 <= ix < w:
                            reads.append((iy, ix))
                deps[(oy, ox)] = reads
        return deps

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        out_h, out_w = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        col = im2col_cached(x, self.kh, self.kw, self.stride, self.pad)
        w_flat = self._params["W"].reshape(self.filters, -1).T
        out = col @ w_flat + self._params["b"]
        out = out.reshape(n, out_h, out_w, self.filters).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, col)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, col = self._cache
        n, __, out_h, out_w = grad_out.shape
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.filters)
        self._grads["b"] += grad_flat.sum(axis=0)
        grad_w = col.T @ grad_flat
        self._grads["W"] += grad_w.T.reshape(self._params["W"].shape)
        w_flat = self._params["W"].reshape(self.filters, -1)
        grad_col = grad_flat @ w_flat
        return col2im_cached(
            grad_col, x_shape, self.kh, self.kw, self.stride, self.pad
        )

    def backward_nodes(
        self, grad_stack: np.ndarray, grad_param: np.ndarray
    ) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, col = self._cache
        __, c, h, w = x_shape
        m = grad_stack.shape[0]
        pflat = grad_param.transpose(0, 2, 3, 1).reshape(-1, self.filters)
        self._grads["b"] += pflat.sum(axis=0)
        self._grads["W"] += (col.T @ pflat).T.reshape(self._params["W"].shape)
        w_flat = self._params["W"].reshape(self.filters, -1)
        grad_flat = grad_stack.transpose(0, 2, 3, 1).reshape(-1, self.filters)
        grad_col = grad_flat @ w_flat
        return col2im_cached(
            grad_col, (m, c, h, w), self.kh, self.kw, self.stride, self.pad
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D(filters={self.filters}, kernel=({self.kh},{self.kw}), "
            f"stride={self.stride}, padding={self.padding!r})"
        )
