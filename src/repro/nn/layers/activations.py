"""Elementwise activation layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers.base import Layer, SpatialDeps, elementwise_dependencies


class _Elementwise(Layer):
    """Base for activations: shape-preserving, identity spatial deps."""

    def output_shape(self, input_shape: tuple) -> tuple:
        return tuple(input_shape)

    @property
    def is_spatial(self) -> bool:
        # An elementwise op preserves whatever grid structure exists.
        return True

    @property
    def is_elementwise(self) -> bool:
        return True

    def spatial_dependencies(self, input_hw: Tuple[int, int]) -> SpatialDeps:
        return elementwise_dependencies(input_hw)


class ReLU(_Elementwise):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out * self._mask


class Sigmoid(_Elementwise):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        self._out = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out * self._out * (1.0 - self._out)


class Tanh(_Elementwise):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        self._out = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out * (1.0 - self._out**2)
