"""Flatten layer bridging spatial and dense stages."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Reshapes ``(N, C, H, W)`` (or any rank) to ``(N, F)``."""

    def __init__(self) -> None:
        self._shape = None

    def output_shape(self, input_shape: tuple) -> tuple:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out.reshape(self._shape)
