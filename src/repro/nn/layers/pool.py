"""Max and average pooling layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers.base import Layer, SpatialDeps
from repro.nn.layers.im2col import col2im_cached, conv_output_hw, im2col_cached


class _Pool2D(Layer):
    """Shared window machinery for 2-D pooling layers."""

    def __init__(self, pool_size=2, stride: int = None) -> None:
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        self.ph, self.pw = pool_size
        self.stride = stride if stride is not None else self.ph
        self._cache = None

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        out_h, out_w = conv_output_hw(h, w, self.ph, self.pw, self.stride, 0)
        return (c, out_h, out_w)

    @property
    def is_spatial(self) -> bool:
        return True

    def spatial_dependencies(self, input_hw: Tuple[int, int]) -> SpatialDeps:
        h, w = input_hw
        out_h, out_w = conv_output_hw(h, w, self.ph, self.pw, self.stride, 0)
        deps: SpatialDeps = {}
        for oy in range(out_h):
            for ox in range(out_w):
                deps[(oy, ox)] = [
                    (oy * self.stride + ky, ox * self.stride + kx)
                    for ky in range(self.ph)
                    for kx in range(self.pw)
                ]
        return deps

    def _unfold(self, x: np.ndarray) -> tuple:
        n, c, h, w = x.shape
        out_h, out_w = conv_output_hw(h, w, self.ph, self.pw, self.stride, 0)
        col = im2col_cached(x, self.ph, self.pw, self.stride, 0)
        # rows: (n*out_h*out_w, c*ph*pw) -> (n*out_h*out_w*c, ph*pw)
        col = col.reshape(-1, c, self.ph * self.pw).reshape(-1, self.ph * self.pw)
        return col, (n, c, out_h, out_w)


class MaxPool2D(_Pool2D):
    """Max pooling; backward routes gradient to the argmax position."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        col, (n, c, out_h, out_w) = self._unfold(x)
        argmax = col.argmax(axis=1)
        out = col[np.arange(col.shape[0]), argmax]
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, argmax)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, argmax = self._cache
        n, c, out_h, out_w = grad_out.shape
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1)
        grad_col = np.zeros((grad_flat.size, self.ph * self.pw), dtype=grad_out.dtype)
        grad_col[np.arange(grad_flat.size), argmax] = grad_flat
        grad_col = grad_col.reshape(n * out_h * out_w, -1)
        return col2im_cached(grad_col, x_shape, self.ph, self.pw, self.stride, 0)

    def backward_nodes(
        self, grad_stack: np.ndarray, grad_param: np.ndarray
    ) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, argmax = self._cache
        n, c, h, w = x_shape
        m, __, out_h, out_w = grad_stack.shape
        # One argmax per (sample, position, channel); the node axis is
        # outermost in the stack, so tiling the flat cache aligns it.
        tiled = np.tile(argmax, m // n)
        grad_flat = grad_stack.transpose(0, 2, 3, 1).reshape(-1)
        grad_col = np.zeros(
            (grad_flat.size, self.ph * self.pw), dtype=grad_stack.dtype
        )
        grad_col[np.arange(grad_flat.size), tiled] = grad_flat
        grad_col = grad_col.reshape(m * out_h * out_w, -1)
        return col2im_cached(
            grad_col, (m, c, h, w), self.ph, self.pw, self.stride, 0
        )


class AvgPool2D(_Pool2D):
    """Average pooling; backward spreads gradient uniformly."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        col, (n, c, out_h, out_w) = self._unfold(x)
        out = col.mean(axis=1).reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape,)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        (x_shape,) = self._cache
        n, c, out_h, out_w = grad_out.shape
        window = self.ph * self.pw
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, 1) / window
        grad_col = np.repeat(grad_flat, window, axis=1)
        grad_col = grad_col.reshape(n * out_h * out_w, -1)
        return col2im_cached(grad_col, x_shape, self.ph, self.pw, self.stride, 0)

    def backward_nodes(
        self, grad_stack: np.ndarray, grad_param: np.ndarray
    ) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        (x_shape,) = self._cache
        __, c, h, w = x_shape
        m, __, out_h, out_w = grad_stack.shape
        window = self.ph * self.pw
        grad_flat = grad_stack.transpose(0, 2, 3, 1).reshape(-1, 1) / window
        grad_col = np.repeat(grad_flat, window, axis=1)
        grad_col = grad_col.reshape(m * out_h * out_w, -1)
        return col2im_cached(
            grad_col, (m, c, h, w), self.ph, self.pw, self.stride, 0
        )
