"""Layer base classes.

Every layer implements ``forward``/``backward``.  Spatial layers
additionally implement :meth:`Layer.spatial_dependencies`, returning,
for each output grid position, the set of input grid positions whose
values it reads.  MicroDeep consumes this to map CNN units onto sensor
nodes and to count cross-node messages (its communication-cost unit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

GridPos = Tuple[int, int]
SpatialDeps = Dict[GridPos, List[GridPos]]


class Layer:
    """Abstract layer.

    Subclasses must implement :meth:`forward`, :meth:`backward` and
    :meth:`output_shape`.  Shapes exclude the batch dimension: spatial
    layers use ``(C, H, W)``, dense layers ``(F,)``.
    """

    #: Set by :meth:`build`; shape of a single input sample.
    input_shape: Optional[tuple] = None

    def build(self, input_shape: tuple, rng: np.random.Generator) -> None:
        """Late initialization once the input shape is known."""
        self.input_shape = tuple(input_shape)

    @property
    def built(self) -> bool:
        return self.input_shape is not None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for batch ``x``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dLoss/dOutput, accumulate parameter gradients and
        return dLoss/dInput."""
        raise NotImplementedError

    def backward_nodes(
        self, grad_stack: np.ndarray, grad_param: np.ndarray
    ) -> np.ndarray:
        """Batched per-node backward for distributed local training.

        ``grad_stack`` holds one masked output gradient per hosting
        node, folded into the batch axis: ``(n_nodes * batch, *out)``.
        ``grad_param`` is the node-collapsed ``(batch, *out)`` gradient
        (the per-node masked gradients sum to it exactly — each output
        slot is owned by one node) used for the single parameter
        accumulation.  Returns ``(n_nodes * batch, *in)`` input
        gradients, row blocks byte-identical to one :meth:`backward`
        call per node.  Requires a prior ``forward(training=True)``
        with the un-stacked batch.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batched per-node backward"
        )

    def output_shape(self, input_shape: tuple) -> tuple:
        """Shape of a single output sample for the given input shape."""
        raise NotImplementedError

    def spatial_dependencies(self, input_hw: Tuple[int, int]) -> SpatialDeps:
        """Map each output grid position to the input positions it reads.

        Only meaningful for layers that preserve the notion of a 2-D
        grid (conv, pool, elementwise).  Raises for layers that destroy
        spatial structure; MicroDeep treats those as fully connected.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no spatial dependency structure"
        )

    @property
    def is_spatial(self) -> bool:
        """Whether the layer maps a 2-D grid to a 2-D grid."""
        return False

    @property
    def is_elementwise(self) -> bool:
        """Whether each output unit depends only on the same-index
        input unit (activations, dropout).  MicroDeep co-locates such
        units with their producers, making them communication-free."""
        return False

    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameters by name (empty for stateless layers)."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients matching :meth:`params` keys."""
        return {}

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for g in self.grads().values():
            g[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ParamLayer(Layer):
    """Base for layers with trainable parameters.

    Maintains parallel ``_params`` / ``_grads`` dicts; subclasses
    register arrays via :meth:`add_param`.
    """

    def __init__(self) -> None:
        self._params: Dict[str, np.ndarray] = {}
        self._grads: Dict[str, np.ndarray] = {}

    def add_param(self, name: str, value: np.ndarray) -> np.ndarray:
        """Register a trainable array and its zero gradient buffer."""
        self._params[name] = value
        self._grads[name] = np.zeros_like(value)
        return value

    def params(self) -> Dict[str, np.ndarray]:
        return self._params

    def grads(self) -> Dict[str, np.ndarray]:
        return self._grads


def elementwise_dependencies(hw: Tuple[int, int]) -> SpatialDeps:
    """Identity dependency map: each position reads only itself."""
    height, width = hw
    return {(y, x): [(y, x)] for y in range(height) for x in range(width)}
