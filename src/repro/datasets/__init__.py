"""Synthetic dataset generators.

These replace the paper's private testbed captures (DESIGN.md §5 lists
the substitutions):

- :mod:`repro.datasets.lounge` -- the 25 x 17-cell lounge temperature
  field (2,961 samples) behind the discomfort-detection experiment.
- :mod:`repro.datasets.ir_gait` -- the film-type IR sensor array gait
  streams (55 samples, 66 frames, 5 subjects) behind the
  fall-detection experiment, windowed into 10-frame 3-D arrays.
"""

from repro.datasets.lounge import LoungeDatasetConfig, generate_lounge_dataset
from repro.datasets.ir_gait import (
    IrGaitConfig,
    generate_ir_gait_episodes,
    windows_from_episodes,
)

__all__ = [
    "LoungeDatasetConfig",
    "generate_lounge_dataset",
    "IrGaitConfig",
    "generate_ir_gait_episodes",
    "windows_from_episodes",
]
