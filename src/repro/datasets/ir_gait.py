"""IR-array gait/fall sequence generator (experiment E1).

The paper's prototype is a film-type infra-red sensor array (Fig. 9)
watching a corridor at 5 frames/s.  55 gait samples were collected
from five subjects imitating falls; each sample is a stream of 66
frames, windowed with a 2-second (10-frame) window, and 6,610 3-D
arrays were fed to a CNN of one conv, one pooling and two
fully-connected layers.

The generator renders a kinematic body model onto a low-resolution IR
grid:

- a walking episode moves a two-blob body (head + torso) across the
  array at a subject-specific speed and height;
- a fall episode walks, then drops: the body's centroid descends and
  the heat blob elongates horizontally, then stays on the floor;
- per-subject gait parameters (speed, height, warmth) and per-frame
  sensor noise.

Windows inherit the episode's label as in the paper (fall episodes
imitate falling throughout the passage), and sliding windows with
per-window jitter augmentation expand 55 episodes to ~6,610 arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class IrGaitConfig:
    """Generation parameters; defaults mirror the paper's capture."""

    grid_rows: int = 8          # vertical IR pixels
    grid_cols: int = 8          # horizontal IR pixels
    n_frames: int = 66          # frames per episode
    frame_rate_hz: float = 5.0
    n_subjects: int = 5
    n_episodes: int = 55
    window: int = 10            # 2 s at 5 fps
    fall_fraction: float = 0.45
    noise: float = 0.05

    def __post_init__(self) -> None:
        if self.window > self.n_frames:
            raise ValueError("window cannot exceed n_frames")
        if not 0.0 <= self.fall_fraction <= 1.0:
            raise ValueError("fall_fraction must be in [0, 1]")


@dataclass
class Episode:
    """One recorded passage.

    Attributes:
        frames: ``(n_frames, rows, cols)`` IR intensities in [0, ~1.5].
        label: 1 = fall, 0 = normal walk.
        subject: subject index.
    """

    frames: np.ndarray
    label: int
    subject: int


def _render_body(
    rows: int,
    cols: int,
    x: float,
    head_y: float,
    torso_y: float,
    width: float,
    warmth: float,
) -> np.ndarray:
    """Two-Gaussian body print on the IR grid."""
    yy, xx = np.mgrid[0:rows, 0:cols]
    head = np.exp(-(((yy - head_y) ** 2) / 0.8 + ((xx - x) ** 2) / 0.8))
    torso = np.exp(
        -(((yy - torso_y) ** 2) / 2.0 + ((xx - x) ** 2) / (2.0 * width**2))
    )
    return warmth * (0.7 * head + torso)


def _walk_episode(cfg: IrGaitConfig, subject_params: dict,
                  rng: np.random.Generator) -> np.ndarray:
    frames = np.zeros((cfg.n_frames, cfg.grid_rows, cfg.grid_cols))
    speed = subject_params["speed"]
    head_y = subject_params["head_y"]
    x0 = float(rng.uniform(-1.0, 1.0))
    for f in range(cfg.n_frames):
        x = (x0 + speed * f) % (cfg.grid_cols + 2) - 1.0
        bob = 0.15 * np.sin(2 * np.pi * f / 6.0)  # gait bounce
        frames[f] = _render_body(
            cfg.grid_rows,
            cfg.grid_cols,
            x,
            head_y + bob,
            head_y + 2.2 + bob,
            width=0.9,
            warmth=subject_params["warmth"],
        )
    return frames


def _fall_episode(cfg: IrGaitConfig, subject_params: dict,
                  rng: np.random.Generator) -> np.ndarray:
    frames = np.zeros((cfg.n_frames, cfg.grid_rows, cfg.grid_cols))
    speed = subject_params["speed"]
    head_y = subject_params["head_y"]
    floor_y = cfg.grid_rows - 1.2
    fall_start = int(rng.integers(cfg.n_frames // 4, cfg.n_frames // 2))
    fall_duration = int(rng.integers(3, 6))  # < 1.2 s collapse
    x0 = float(rng.uniform(0.0, 2.0))
    x_at_fall = None
    for f in range(cfg.n_frames):
        if f < fall_start:
            x = x0 + speed * f
            bob = 0.15 * np.sin(2 * np.pi * f / 6.0)
            frames[f] = _render_body(
                cfg.grid_rows, cfg.grid_cols, min(x, cfg.grid_cols - 1.0),
                head_y + bob, head_y + 2.2 + bob,
                width=0.9, warmth=subject_params["warmth"],
            )
            x_at_fall = min(x, cfg.grid_cols - 1.0)
        else:
            progress = min(1.0, (f - fall_start) / fall_duration)
            # Centroid descends; the blob flattens onto the floor.
            cur_head = head_y + progress * (floor_y - head_y)
            cur_torso = head_y + 2.2 + progress * (floor_y - head_y - 2.2)
            width = 0.9 + progress * 2.2
            frames[f] = _render_body(
                cfg.grid_rows, cfg.grid_cols, x_at_fall,
                cur_head, cur_torso,
                width=width, warmth=subject_params["warmth"],
            )
    return frames


def generate_ir_gait_episodes(
    config: IrGaitConfig = None, rng: np.random.Generator = None
) -> List[Episode]:
    """Generate the 55 labeled episodes (or ``config.n_episodes``)."""
    cfg = config if config is not None else IrGaitConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    subjects = [
        {
            "speed": float(rng.uniform(0.12, 0.25)),
            "head_y": float(rng.uniform(0.8, 1.8)),
            "warmth": float(rng.uniform(0.85, 1.15)),
        }
        for __ in range(cfg.n_subjects)
    ]
    episodes = []
    n_falls = int(round(cfg.n_episodes * cfg.fall_fraction))
    for i in range(cfg.n_episodes):
        subject = i % cfg.n_subjects
        is_fall = i < n_falls
        maker = _fall_episode if is_fall else _walk_episode
        frames = maker(cfg, subjects[subject], rng)
        frames = frames + rng.normal(0.0, cfg.noise, size=frames.shape)
        episodes.append(Episode(frames=frames, label=int(is_fall), subject=subject))
    # Shuffle so folds don't align with the fall/walk block structure.
    order = rng.permutation(len(episodes))
    return [episodes[i] for i in order]


def windows_from_episodes(
    episodes: List[Episode],
    window: int = 10,
    stride: int = 1,
    rng: np.random.Generator = None,
    jitter_copies: int = 1,
    jitter_noise: float = 0.03,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slide a window over each episode to build CNN inputs.

    Each window becomes a ``(window, rows, cols)`` tensor — frames as
    channels, the paper's "3D arrays".  ``jitter_copies > 1`` adds
    noise-augmented copies (how 55 episodes become ~6,610 arrays).

    Returns:
        ``(x, y, episode_idx)`` where x has shape
        ``(n_windows, window, rows, cols)`` and episode_idx supports
        leave-episodes-out splits.
    """
    if window < 1 or stride < 1:
        raise ValueError("window and stride must be >= 1")
    if jitter_copies < 1:
        raise ValueError("jitter_copies must be >= 1")
    if jitter_copies > 1 and rng is None:
        raise ValueError("rng required for jitter augmentation")
    xs, ys, eps = [], [], []
    for ei, ep in enumerate(episodes):
        n_frames = ep.frames.shape[0]
        for start in range(0, n_frames - window + 1, stride):
            base = ep.frames[start : start + window]
            for copy in range(jitter_copies):
                arr = base
                if copy > 0:
                    arr = base + rng.normal(0.0, jitter_noise, size=base.shape)
                xs.append(arr)
                ys.append(ep.label)
                eps.append(ei)
    return (
        np.asarray(xs),
        np.asarray(ys, dtype=int),
        np.asarray(eps, dtype=int),
    )
