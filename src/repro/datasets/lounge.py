"""Lounge temperature field generator (experiment E2).

The paper measured a >1,400 m^2 lounge with 50 temperature sensors,
every 30 minutes from Aug 26 to Oct 27 2016 (2,961 samples), gridded
into 25 x 17 cells, and trained a CNN to detect *discomfort*.

This generator synthesizes a spatio-temporal field with the structure
such a space exhibits:

- a diurnal cycle plus a seasonal cool-down over the two months;
- fixed HVAC zones that pull their neighbourhood toward a set point;
- a sun-facing window edge that overheats around midday;
- occupancy hot spots that appear in work hours at random locations;
- smooth spatial correlation plus sensor noise.

The discomfort label is 1 when the fraction of cells outside the
comfort band exceeds a threshold — a spatial property a small CNN
learns well (the paper reports 97 % for the tuned CNN).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.ndimage import gaussian_filter


@dataclass(frozen=True)
class LoungeDatasetConfig:
    """Generation parameters; defaults mirror the paper's deployment."""

    rows: int = 17
    cols: int = 25
    n_samples: int = 2961
    sample_interval_min: float = 30.0
    base_temp_c: float = 26.0
    seasonal_drop_c: float = 6.0      # Aug -> Oct cool-down
    diurnal_amplitude_c: float = 3.0
    n_hvac_zones: int = 4
    hvac_setpoint_c: float = 24.0
    hvac_strength: float = 0.55
    window_heat_c: float = 4.0
    occupancy_heat_c: float = 2.5
    spatial_smoothing: float = 1.6
    noise_c: float = 0.25
    comfort_low_c: float = 22.0
    comfort_high_c: float = 27.5
    discomfort_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0 or self.n_samples <= 0:
            raise ValueError("rows, cols and n_samples must be positive")
        if self.comfort_low_c >= self.comfort_high_c:
            raise ValueError("comfort band is empty")


def _hvac_field(cfg: LoungeDatasetConfig, rng: np.random.Generator) -> np.ndarray:
    """Static HVAC influence map in [0, 1] (1 = fully conditioned)."""
    field = np.zeros((cfg.rows, cfg.cols))
    yy, xx = np.mgrid[0 : cfg.rows, 0 : cfg.cols]
    for __ in range(cfg.n_hvac_zones):
        cy = rng.uniform(2, cfg.rows - 3)
        cx = rng.uniform(2, cfg.cols - 3)
        sigma = rng.uniform(2.5, 4.5)
        field += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
    return np.clip(field, 0.0, 1.0)


def generate_lounge_dataset(
    config: LoungeDatasetConfig = None,
    rng: np.random.Generator = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the temperature tensor and discomfort labels.

    Returns:
        ``(fields, labels)`` with fields of shape
        ``(n_samples, 1, rows, cols)`` in Celsius and binary labels
        (1 = discomfort).
    """
    cfg = config if config is not None else LoungeDatasetConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    hvac = _hvac_field(cfg, rng)
    yy, xx = np.mgrid[0 : cfg.rows, 0 : cfg.cols]
    # The window wall is the x = cols-1 edge; influence decays inward.
    window_proximity = np.exp(-(cfg.cols - 1 - xx) / 3.0)

    fields = np.empty((cfg.n_samples, 1, cfg.rows, cfg.cols))
    labels = np.empty(cfg.n_samples, dtype=int)
    minutes_per_day = 24 * 60.0
    for i in range(cfg.n_samples):
        t_min = i * cfg.sample_interval_min
        day_frac = (t_min % minutes_per_day) / minutes_per_day
        season_frac = t_min / (cfg.n_samples * cfg.sample_interval_min)
        ambient = (
            cfg.base_temp_c
            - cfg.seasonal_drop_c * season_frac
            + cfg.diurnal_amplitude_c * np.sin(2 * np.pi * (day_frac - 0.3))
        )
        field = np.full((cfg.rows, cfg.cols), ambient)
        # Midday sun through the window wall.
        sun = max(0.0, np.sin(2 * np.pi * (day_frac - 0.25)))
        field += cfg.window_heat_c * sun * window_proximity
        # HVAC pulls toward the set point where its influence is high.
        field += cfg.hvac_strength * hvac * (cfg.hvac_setpoint_c - field)
        # Occupancy hot spots in work hours (9:00-19:00).
        if 0.375 < day_frac < 0.79:
            for __ in range(int(rng.integers(1, 4))):
                cy = rng.uniform(0, cfg.rows - 1)
                cx = rng.uniform(0, cfg.cols - 1)
                blob = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * 1.8**2))
                field += cfg.occupancy_heat_c * blob
        field = gaussian_filter(field, sigma=cfg.spatial_smoothing)
        # Ground truth comes from the physical field; sensor noise is
        # added on top of it (the sensors don't change the room).
        outside = (field < cfg.comfort_low_c) | (field > cfg.comfort_high_c)
        labels[i] = int(outside.mean() > cfg.discomfort_fraction)
        fields[i, 0] = field + rng.normal(0.0, cfg.noise_c, size=field.shape)
    return fields, labels
