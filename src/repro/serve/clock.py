"""The serving layer's one source of time.

Everything in :mod:`repro.serve` that needs "now" or "later" goes
through a clock object with two methods::

    clock.now() -> float
    clock.call_later(delay, callback) -> handle (with .cancel())

:class:`LoopClock` is the production implementation, backed by the
running asyncio event loop's monotonic clock and timer wheel.  The
test harness substitutes :class:`repro.serve.testing.FakeClock`, a
deterministic virtual clock advanced explicitly — which is why the
batching windows, latency histograms, and shutdown races are testable
without a single real sleep.

This module is the *only* place in ``repro.serve`` allowed to touch
the event loop's timing primitives; an AST lint in the test suite
bans ``time.time``/``time.monotonic``/``time.perf_counter`` and
``asyncio.sleep`` everywhere else in the package, so no code path can
accidentally bypass the shim and break the fake-clock harness.
"""

from __future__ import annotations

import asyncio
from typing import Callable


class LoopClock:
    """Monotonic clock + timers of the running asyncio event loop.

    The loop is resolved lazily per call (not captured at
    construction), so a :class:`~repro.serve.http.ServeApp` can be
    built before ``asyncio.run`` starts its loop.
    """

    def now(self) -> float:
        """Seconds on the loop's monotonic clock."""
        return asyncio.get_running_loop().time()

    def call_later(self, delay: float, callback: Callable[[], None]):
        """Schedule ``callback`` after ``delay`` seconds; returns the
        loop's timer handle (``.cancel()`` to revoke)."""
        return asyncio.get_running_loop().call_later(delay, callback)
