"""Deterministic in-process test harness for the serving layer.

:class:`FakeClock` is a virtual clock with the same two-method
surface as :class:`repro.serve.clock.LoopClock` (``now`` /
``call_later``) plus an explicit :meth:`FakeClock.advance`.  Driving
the dispatcher on it makes batching windows, hot-swap races, fault
fallback, and shutdown draining fully deterministic: no sockets, no
event loop, no real sleeps — a max-delay flush "happens" the instant
the test advances the clock past the deadline, and latency histograms
come out exact.

:class:`ServeHarness` bundles the pieces a dispatcher test needs:
tiny untrained (``train_epochs=0`` — still deterministic) tenants, a
fake clock, a live metrics registry, and helpers for deterministic
inputs and serial parity baselines.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.dispatch import BatchPolicy, Dispatcher
from repro.serve.tenants import Tenant, TenantConfig, TenantPool, build_tenant


class FakeTimer:
    """Handle for one scheduled callback; ``cancel()`` revokes it."""

    __slots__ = ("when", "callback", "cancelled")

    def __init__(self, when: float, callback) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class FakeClock:
    """Virtual monotonic clock with an explicit ``advance``.

    Callbacks fire in ``(deadline, schedule order)`` order while the
    clock advances; a callback scheduled *during* an advance (e.g. a
    flush arming a new window) fires within the same advance if its
    deadline falls inside it.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._seq = itertools.count()
        self._heap: List = []

    def now(self) -> float:
        return self._now

    def call_later(self, delay: float, callback) -> FakeTimer:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        timer = FakeTimer(self._now + float(delay), callback)
        heapq.heappush(self._heap, (timer.when, next(self._seq), timer))
        return timer

    def advance(self, dt: float) -> int:
        """Move time forward by ``dt`` seconds, firing every due
        callback in deadline order; returns how many fired."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        deadline = self._now + float(dt)
        fired = 0
        while self._heap and self._heap[0][0] <= deadline:
            when, __, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when
            timer.callback()
            fired += 1
        self._now = deadline
        return fired

    def run_due(self) -> int:
        """Fire callbacks due *now* without moving time."""
        return self.advance(0.0)

    def scheduled(self) -> int:
        """Live (non-cancelled) timers still in the wheel."""
        return sum(1 for __, __, t in self._heap if not t.cancelled)


class ServeHarness:
    """Dispatcher + tiny tenants on a fake clock, ready to drive.

    Args:
        tenants: scenario names to host (tenant name == scenario).
        policy: batching knobs (default: ``max_batch=4``,
            ``max_delay=0.01``).
        seed: tenant build seed.
        telemetry: explicit backend; a fresh live
            :class:`repro.obs.Telemetry` by default, so metric asserts
            need no installed session.
    """

    def __init__(
        self,
        tenants: Sequence[str] = ("fall", "hvac"),
        policy: Optional[BatchPolicy] = None,
        seed: int = 0,
        telemetry=None,
    ) -> None:
        if telemetry is None:
            from repro.obs.runtime import Telemetry

            telemetry = Telemetry()
        self.telemetry = telemetry
        self.clock = FakeClock()
        self.policy = policy or BatchPolicy(max_batch=4, max_delay=0.01)
        self.pool = TenantPool([
            self.build_tenant(name, seed=seed) for name in tenants
        ])
        self.dispatcher = Dispatcher(
            self.pool, self.policy, self.clock, telemetry=self.telemetry
        )
        self._input_rngs: Dict[str, np.random.Generator] = {}

    def build_tenant(self, scenario: str, name: Optional[str] = None,
                     seed: int = 0) -> Tenant:
        """A fast (untrained) tenant wired to the harness telemetry."""
        return build_tenant(
            TenantConfig(
                name=name or scenario, scenario=scenario, seed=seed,
                train_epochs=0,
            ),
            telemetry=self.telemetry,
        )

    def make_input(self, tenant: str) -> np.ndarray:
        """Next deterministic input for ``tenant`` (per-tenant RNG
        substream, so interleavings don't change the values)."""
        rng = self._input_rngs.get(tenant)
        if rng is None:
            rng = self._input_rngs[tenant] = np.random.default_rng(
                zlib.crc32(tenant.encode("utf-8"))
            )
        shape = self.pool.require(tenant).input_shape
        return rng.normal(size=shape)

    def submit(self, tenant: str, x: Optional[np.ndarray] = None):
        if x is None:
            x = self.make_input(tenant)
        return self.dispatcher.submit(tenant, x)

    def advance(self, dt: float) -> int:
        return self.clock.advance(dt)

    def drain(self) -> None:
        self.dispatcher.drain()

    # -- assertions helpers --------------------------------------------------
    def direct(self, tenant: str, xs: Sequence[np.ndarray]) -> np.ndarray:
        """Serial baseline logits for ``xs`` (stacked direct forward
        on the tenant's executor; bitwise comparable to served rows)."""
        return self.pool.require(tenant).direct_forward(
            np.stack(list(xs), axis=0)
        )

    def metric(self, name: str, **labels) -> float:
        return self.telemetry.metrics.value(name, **labels)

    def metric_total(self, name: str) -> float:
        return self.telemetry.metrics.total(name)

    def batch_size_mass(self) -> float:
        """Total observation mass (sum of observed batch sizes) of the
        ``serve.batch_size`` histogram across tenants — by the pinned
        invariant, equals ``serve.requests``."""
        out = 0.0
        for name, __, instrument in self.telemetry.metrics.series():
            if name == "serve.batch_size":
                out += instrument.sum
        return out
