"""Scenario tenants: pre-trained deployments the service hosts.

A :class:`Tenant` bundles one placed-and-trained MicroDeep deployment
(model, unit graph, placement, network, executor) under a name, ready
to serve recognition requests.  :data:`SCENARIOS` catalogues the
paper-derived flavors — fall monitoring (i), HVAC comfort (vi), train
congestion — each with its own field size, node grid, model, and class
labels.  :class:`TenantPool` is the hot-swappable registry the
dispatcher and HTTP layer resolve tenants from.

Serving contract (bitwise batch invariance)
-------------------------------------------

:meth:`Tenant.infer` always hands the executor batches of **exactly**
:data:`SERVE_BATCH` rows: a micro-batch shorter than that is padded
with copies of its last row (pad rows discarded from the output), and
a longer one is chunked in submit order.  BLAS picks its kernel and
blocking from the GEMM shape, so the same request's logits can differ
at the last ulp between a batch-of-2 and a batch-of-12 forward — but
at a *fixed* batch shape a row's result depends only on its own input
(verified for position and for the other rows' content).  Pinning the
shape therefore makes a request's logits **byte-identical however the
dispatcher coalesced it** — the property the serving test suite pins
(multiset-of-logits equality against the serial baseline for any
interleaving, and served-over-HTTP equal to a direct forward).

Traffic is accounted for the *real* request count, never the pad row:
the math runs with ``count_traffic=False`` and the accounting is
applied separately — one bulk :meth:`~repro.wsn.Network
.account_compiled` update in the steady state, or the event-driven
:meth:`~repro.core.DistributedExecutor.replay_traffic` when the
tenant's fault state forces the oracle — so ``/metrics`` reconciles
exactly with the number of requests served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.assignment import grid_correspondence_assignment
from repro.core.compiled import PlanNotCompilable
from repro.core.compiled.compiler import plan_blocked
from repro.core.executor import DistributedExecutor
from repro.core.training import MicroDeepTrainer
from repro.core.unitgraph import UnitGraph
from repro.faults.scenario import toy_field_task
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, SGD, Sequential
from repro.wsn.network import Network
from repro.wsn.topology import GridTopology

#: Every executor forward runs at exactly this many rows — shorter
#: micro-batches are padded with row copies, longer ones chunked — so
#: the GEMM shapes (and with them each row's bit pattern) never depend
#: on how requests were coalesced.  See the module docstring.
SERVE_BATCH = 8


@dataclass(frozen=True)
class ScenarioSpec:
    """Static description of one servable scenario flavor."""

    description: str
    field_hw: Tuple[int, int]
    node_grid: Tuple[int, int]
    labels: Tuple[str, ...]
    #: layer factory name understood by :func:`_build_model`.
    arch: str


SCENARIOS: Dict[str, ScenarioSpec] = {
    "fall": ScenarioSpec(
        description="(i) elderly fall monitoring over an IR sensor field",
        field_hw=(8, 8), node_grid=(3, 3),
        labels=("no_fall", "fall"), arch="compact",
    ),
    "hvac": ScenarioSpec(
        description="(vi) autonomous HVAC comfort recognition",
        field_hw=(10, 10), node_grid=(4, 4),
        labels=("comfortable", "adjust"), arch="pooled",
    ),
    "congestion": ScenarioSpec(
        description="train-car congestion monitoring",
        field_hw=(12, 12), node_grid=(4, 4),
        labels=("free_flow", "congested"), arch="pooled",
    ),
}


@dataclass(frozen=True)
class TenantConfig:
    """How to build one tenant (the ``POST /v1/tenants`` payload)."""

    name: str
    scenario: str
    seed: int = 0
    train_epochs: int = 2
    train_samples: int = 64

    def validate(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; available: "
                f"{', '.join(sorted(SCENARIOS))}"
            )
        if self.train_epochs < 0:
            raise ValueError(f"train_epochs must be >= 0, got "
                             f"{self.train_epochs}")
        if self.train_samples < 2:
            raise ValueError(f"train_samples must be >= 2, got "
                             f"{self.train_samples}")


def _build_model(spec: ScenarioSpec) -> Sequential:
    if spec.arch == "compact":
        return Sequential([Conv2D(2, 3), ReLU(), Flatten(), Dense(2)])
    return Sequential([
        Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(),
        Dense(8), ReLU(), Dense(len(spec.labels)),
    ])


class Tenant:
    """One servable deployment; built by :func:`build_tenant`."""

    def __init__(
        self,
        config: TenantConfig,
        spec: ScenarioSpec,
        model: Sequential,
        graph: UnitGraph,
        placement,
        topology: GridTopology,
        network: Network,
        executor: DistributedExecutor,
    ) -> None:
        self.config = config
        self.spec = spec
        self.name = config.name
        self.scenario = config.scenario
        self.model = model
        self.graph = graph
        self.placement = placement
        self.topology = topology
        self.network = network
        self.executor = executor
        #: single-inference input shape, ``(channels, h, w)``.
        self.input_shape: Tuple[int, ...] = (1,) + tuple(spec.field_hw)
        self.labels = spec.labels
        #: requests served (not padded rows); the pool's health report.
        self.served = 0

    def fault_state(self) -> Optional[str]:
        """Why this tenant currently falls back to the event-driven
        oracle (``None`` in the compiled steady state)."""
        blocked = plan_blocked(self.executor)
        return None if blocked is None else blocked[0]

    def _fixed_shape_forward(self, x: np.ndarray) -> np.ndarray:
        """Forward ``x`` in chunks of exactly :data:`SERVE_BATCH` rows
        (short chunks padded with copies of their last row), traffic
        untouched; returns one logits row per input row."""
        k = int(x.shape[0])
        rows = []
        for start in range(0, k, SERVE_BATCH):
            chunk = x[start:start + SERVE_BATCH]
            c = int(chunk.shape[0])
            if c < SERVE_BATCH:
                pad = np.repeat(chunk[-1:], SERVE_BATCH - c, axis=0)
                chunk = np.concatenate([chunk, pad], axis=0)
            rows.append(
                self.executor.forward(chunk, count_traffic=False)[:c]
            )
        return rows[0] if len(rows) == 1 else np.concatenate(rows, axis=0)

    def infer(self, x: np.ndarray) -> Tuple[np.ndarray, str]:
        """Serve one micro-batch; returns ``(logits, served_by)``.

        ``x`` is the stacked batch ``(k, channels, h, w)``.  The
        returned logits carry exactly ``k`` rows, each bitwise
        independent of how the dispatcher batched it (see the module
        docstring); ``served_by`` is ``"plan"`` or
        ``"fallback:<reason>"``.  Traffic for exactly ``k`` inferences
        is accounted on the tenant's network — never the pad rows.
        """
        k = int(x.shape[0])
        logits = self._fixed_shape_forward(x)
        try:
            plan = self.executor.compiled_plan()
        except PlanNotCompilable as exc:
            self.executor.replay_traffic(k)
            served_by = f"fallback:{exc.reason}"
        else:
            self.network.account_compiled(plan.hops, copies=k)
            served_by = "plan"
        self.served += k
        return logits, served_by

    def direct_forward(self, x: np.ndarray) -> np.ndarray:
        """The serial parity baseline: the same fixed-shape forward
        the serving path runs, with traffic untouched."""
        return self._fixed_shape_forward(x)

    def describe(self) -> Dict:
        return {
            "scenario": self.scenario,
            "seed": self.config.seed,
            "input_shape": list(self.input_shape),
            "labels": list(self.labels),
            "node_grid": list(self.spec.node_grid),
            "served": self.served,
            "fault": self.fault_state(),
        }


def build_tenant(config: TenantConfig, telemetry=None) -> Tenant:
    """Build (and optionally train) one tenant, deterministically.

    Same config -> same weights, placement, and logits; the serving
    tests rebuild a tenant from scratch and pin byte-identical logits
    against the served ones.  ``train_epochs=0`` skips training (the
    test harness's fast path — untrained weights are still
    deterministic).
    """
    config.validate()
    spec = SCENARIOS[config.scenario]
    if telemetry is None:
        from repro.obs.runtime import current

        telemetry = current()
    rng = np.random.default_rng(config.seed)
    model = _build_model(spec)
    model.build((1,) + tuple(spec.field_hw), rng)
    graph = UnitGraph(model)
    topology = GridTopology(*spec.node_grid)
    placement = grid_correspondence_assignment(graph, topology)
    if config.train_epochs > 0:
        x, y = toy_field_task(config.train_samples, spec.field_hw, rng)
        trainer = MicroDeepTrainer(
            graph, placement, SGD(lr=0.1, momentum=0.9), update_mode="local"
        )
        trainer.fit(
            x, y, epochs=config.train_epochs, batch_size=16, rng=rng
        )
    network = Network(topology, telemetry=telemetry)
    executor = DistributedExecutor(
        model, graph, placement, network, telemetry=telemetry
    )
    return Tenant(
        config, spec, model, graph, placement, topology, network, executor
    )


class UnknownTenant(LookupError):
    """No tenant under that name (HTTP 404)."""

    def __init__(self, name: str) -> None:
        self.tenant = name
        super().__init__(f"unknown tenant {name!r}")


class TenantPool:
    """Name -> :class:`Tenant` registry with live hot-swap.

    The dispatcher resolves the tenant *at flush time*, so a swap that
    lands between a request being queued and its batching window
    closing is well-defined: the queued requests are served by the new
    tenant (their input shapes are re-validated against it).
    """

    def __init__(self, tenants: Optional[List[Tenant]] = None) -> None:
        self._tenants: Dict[str, Tenant] = {}
        for tenant in tenants or []:
            self.swap(tenant)

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter([self._tenants[k] for k in sorted(self._tenants)])

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def get(self, name: str) -> Optional[Tenant]:
        return self._tenants.get(name)

    def require(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(name)
        return tenant

    def swap(self, tenant: Tenant) -> Optional[Tenant]:
        """Install ``tenant`` under its name; returns the replaced
        tenant (None on first install)."""
        previous = self._tenants.get(tenant.name)
        self._tenants[tenant.name] = tenant
        return previous

    def remove(self, name: str) -> Tenant:
        tenant = self._tenants.pop(name, None)
        if tenant is None:
            raise UnknownTenant(name)
        return tenant

    def describe(self) -> Dict[str, Dict]:
        return {name: self._tenants[name].describe()
                for name in sorted(self._tenants)}
