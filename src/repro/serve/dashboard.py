"""The self-contained ``/dashboard`` page.

One HTML document, zero external assets: inline CSS + a small polling
script that fetches ``/timeline?format=json`` and ``/healthz`` on an
interval and re-renders a health header, the active/fired alert list,
and a per-series table (value, tick delta, rolling rate, and windowed
p50/p99 for histograms) with unicode sparklines built from the
retained ring-buffer samples.  Everything renders client-side from the
same canonical timeline documents the tests assert on — the page adds
no server state beyond the GET handlers it polls.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro.serve dashboard</title>
<style>
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5rem; background: #101418; color: #d8dee4; }
  h1 { font-size: 16px; margin: 0 0 .25rem; }
  .sub { color: #8b98a5; margin-bottom: 1rem; }
  .cards { display: flex; gap: .75rem; flex-wrap: wrap; margin-bottom: 1rem; }
  .card { background: #161c22; border: 1px solid #232b33; border-radius: 6px;
          padding: .5rem .9rem; min-width: 7rem; }
  .card b { display: block; font-size: 18px; }
  .card span { color: #8b98a5; font-size: 11px; }
  table { border-collapse: collapse; width: 100%; margin-bottom: 1.25rem; }
  th, td { text-align: left; padding: .25rem .6rem;
           border-bottom: 1px solid #232b33; white-space: nowrap; }
  th { color: #8b98a5; font-weight: normal; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .spark { color: #58a6ff; letter-spacing: -1px; }
  .ok { color: #3fb950; } .warning { color: #d29922; }
  .critical { color: #f85149; } .muted { color: #8b98a5; }
  #alerts li { margin: .15rem 0; list-style: none; }
  #alerts { padding-left: 0; }
</style>
</head>
<body>
<h1>repro.serve flight recorder</h1>
<div class="sub">polling <code>/timeline?format=json</code> every
<span id="poll-ms">?</span> ms — <span id="updated" class="muted">never
updated</span></div>
<div class="cards">
  <div class="card"><b id="c-status">–</b><span>status</span></div>
  <div class="card"><b id="c-samples">–</b><span>samples</span></div>
  <div class="card"><b id="c-series">–</b><span>series</span></div>
  <div class="card"><b id="c-alerts">–</b><span>alerts fired</span></div>
  <div class="card"><b id="c-critical">–</b><span>critical</span></div>
</div>
<h1>Alerts</h1>
<ul id="alerts"><li class="muted">none</li></ul>
<h1>Series (latest tick)</h1>
<table>
  <thead><tr><th>series</th><th>kind</th><th>value</th><th>&Delta;</th>
  <th>rate</th><th>p50</th><th>p99</th><th>trend</th></tr></thead>
  <tbody id="series-body"><tr><td class="muted" colspan="8">waiting for
  first sample…</td></tr></tbody>
</table>
<script>
"use strict";
const POLL_MS = 2000;
const BARS = "\\u2581\\u2582\\u2583\\u2584\\u2585\\u2586\\u2587\\u2588";
document.getElementById("poll-ms").textContent = POLL_MS;

function fmt(v) {
  if (v === null || v === undefined) return "–";
  if (typeof v === "string") return v;           // "nan" / "inf"
  if (Math.abs(v) >= 1000 || Number.isInteger(v)) return String(v);
  return v.toPrecision(4);
}

function spark(values) {
  if (!values.length) return "";
  const lo = Math.min(...values), hi = Math.max(...values);
  const span = hi - lo || 1;
  return values.map(v =>
    BARS[Math.min(7, Math.floor((v - lo) / span * 8))]).join("");
}

function render(doc, health) {
  const samples = doc.samples || [];
  const latest = samples[samples.length - 1];
  document.getElementById("c-status").textContent =
      health ? health.status : "?";
  document.getElementById("c-samples").textContent = doc.n_samples;
  document.getElementById("c-series").textContent =
      latest ? Object.keys(latest.series).length : 0;
  document.getElementById("c-alerts").textContent =
      (doc.alerts || []).length;
  document.getElementById("c-critical").textContent =
      (doc.alerts || []).filter(a => a.severity === "critical").length;
  const alerts = document.getElementById("alerts");
  alerts.innerHTML = "";
  if (!(doc.alerts || []).length) {
    alerts.innerHTML = '<li class="muted">none</li>';
  } else {
    for (const a of doc.alerts.slice().reverse()) {
      const li = document.createElement("li");
      li.className = a.severity;
      li.textContent = "t=" + a.t + "  [" + a.severity + "]  " + a.rule +
          ": " + a.series + " " + a.op + " " + a.value +
          " (observed " + fmt(a.observed) + ")";
      alerts.appendChild(li);
    }
  }
  if (!latest) return;
  const body = document.getElementById("series-body");
  body.innerHTML = "";
  for (const key of Object.keys(latest.series).sort()) {
    const p = latest.series[key];
    const history = samples.map(s =>
        s.series[key] ? s.series[key].v : 0);
    const tr = document.createElement("tr");
    const cells = [key, p.k, fmt(p.v), fmt(p.d), fmt(p.r),
                   p.k === "histogram" ? fmt(p.p50) : "–",
                   p.k === "histogram" ? fmt(p.p99) : "–"];
    for (let i = 0; i < cells.length; i++) {
      const td = document.createElement("td");
      if (i >= 2) td.className = "num";
      td.textContent = cells[i];
      tr.appendChild(td);
    }
    const td = document.createElement("td");
    td.className = "spark";
    td.textContent = spark(history);
    tr.appendChild(td);
    body.appendChild(tr);
  }
}

async function tick() {
  try {
    const [t, h] = await Promise.all([
      fetch("/timeline?format=json").then(r => r.json()),
      fetch("/healthz").then(r => r.json()),
    ]);
    render(t, h);
    document.getElementById("updated").textContent =
        "updated " + new Date().toLocaleTimeString();
  } catch (err) {
    document.getElementById("updated").textContent = "poll failed: " + err;
  }
}
tick();
setInterval(tick, POLL_MS);
</script>
</body>
</html>
"""
