"""Long-running recognition service over compiled inference plans.

The serving layer turns the repo's scenario deployments into a
multi-tenant asyncio HTTP daemon (stdlib only): pre-trained tenants
(:mod:`repro.serve.tenants`), a per-tenant micro-batching dispatcher
(:mod:`repro.serve.dispatch`), the HTTP surface
(:mod:`repro.serve.http`), a closed-loop load generator
(:mod:`repro.serve.loadgen`), and a fully deterministic fake-clock
test harness (:mod:`repro.serve.testing`).  All timing flows through
the clock shim (:mod:`repro.serve.clock`) so batching behavior is
testable without sockets or sleeps.

Start one from Python::

    from repro.serve import BatchPolicy, ServeApp, TenantConfig

    app = ServeApp(BatchPolicy(max_batch=8, max_delay=0.002))
    app.add_tenant(TenantConfig(name="fall", scenario="fall"))
    asyncio.run(app.run(port=8080))

or from the CLI: ``repro serve --tenants fall,hvac --port 8080``.
"""

from repro.serve.clock import LoopClock
from repro.serve.dispatch import (
    BATCH_BUCKETS,
    BatchPolicy,
    Dispatcher,
    DispatcherClosed,
    PlainFuture,
    ServeResult,
    TenantOverloaded,
)
from repro.serve.dashboard import DASHBOARD_HTML
from repro.serve.http import (
    DEFAULT_LATENCY_BUDGET_S,
    MAX_BODY_BYTES,
    ServeApp,
    default_serve_rules,
)
from repro.serve.loadgen import HttpClient, LoadReport, run_load
from repro.serve.tenants import (
    SCENARIOS,
    SERVE_BATCH,
    ScenarioSpec,
    Tenant,
    TenantConfig,
    TenantPool,
    UnknownTenant,
    build_tenant,
)

__all__ = [
    "BATCH_BUCKETS",
    "BatchPolicy",
    "DASHBOARD_HTML",
    "DEFAULT_LATENCY_BUDGET_S",
    "Dispatcher",
    "DispatcherClosed",
    "HttpClient",
    "LoadReport",
    "LoopClock",
    "MAX_BODY_BYTES",
    "PlainFuture",
    "SCENARIOS",
    "SERVE_BATCH",
    "ScenarioSpec",
    "ServeApp",
    "ServeResult",
    "Tenant",
    "TenantConfig",
    "TenantOverloaded",
    "TenantPool",
    "UnknownTenant",
    "build_tenant",
    "default_serve_rules",
    "run_load",
]
