"""Closed-loop load generator + minimal HTTP client for the service.

:class:`HttpClient` is a tiny keep-alive HTTP/1.1 client on asyncio
streams — just enough to talk to :class:`~repro.serve.http.ServeApp`
(and, being stdlib-only, the e2e tests and the quickstart example use
it too).

:func:`run_load` drives a closed loop: ``concurrency`` workers, each
with its own connection, pull payloads from a shared cursor and issue
the next request the moment the previous response lands.  Per-request
latency is measured on the serving clock shim; the report carries
requests/sec plus exact p50/p99 (computed from the full latency list,
not histogram bounds).  The ``serve_throughput`` bench and the
property tests both sit on top of this.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.clock import LoopClock


class HttpClient:
    """One keep-alive connection to the service."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> "HttpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response round trip on the kept-alive
        connection; returns ``(status, headers, body)``."""
        if self._writer is None:
            await self.connect()
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Content-Type: application/json\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.decode("latin-1").split(" ", 2)[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        data = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, data

    async def get_json(self, path: str):
        status, __, data = await self.request("GET", path)
        return status, json.loads(data.decode("utf-8"))

    async def post_json(self, path: str, payload) -> Tuple[int, dict]:
        status, __, data = await self.request(
            "POST", path, json.dumps(payload).encode("utf-8")
        )
        return status, json.loads(data.decode("utf-8"))


@dataclass
class LoadReport:
    """What one :func:`run_load` run produced."""

    total: int
    elapsed_s: float
    latencies_s: List[float] = field(repr=False)
    statuses: List[int] = field(repr=False)
    #: decoded JSON response bodies, in payload order.
    responses: List[dict] = field(repr=False)

    @property
    def rps(self) -> float:
        return self.total / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Exact latency quantile (nearest-rank) in seconds."""
        if not self.latencies_s:
            return float("nan")
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50_s(self) -> float:
        return self.percentile(0.50)

    @property
    def p99_s(self) -> float:
        return self.percentile(0.99)


async def run_load(
    host: str,
    port: int,
    payloads: Sequence[dict],
    concurrency: int = 4,
    path: str = "/v1/recognize",
    clock=None,
) -> LoadReport:
    """Drive ``payloads`` through the service, closed-loop.

    Each of ``concurrency`` workers owns one keep-alive connection and
    posts the next pending payload as soon as its previous response
    arrives — so the offered concurrency (and with it the batching the
    dispatcher can find) is exactly ``min(concurrency, remaining)``.
    Responses land in ``report.responses`` at their payload's index.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    clock = clock if clock is not None else LoopClock()
    total = len(payloads)
    bodies = [json.dumps(p).encode("utf-8") for p in payloads]
    cursor = iter(range(total))
    latencies: List[float] = [0.0] * total
    statuses: List[int] = [0] * total
    responses: List[dict] = [{} for __ in range(total)]

    async def worker() -> None:
        client = HttpClient(host, port)
        await client.connect()
        try:
            for i in cursor:
                t0 = clock.now()
                status, __, data = await client.request(
                    "POST", path, bodies[i]
                )
                latencies[i] = clock.now() - t0
                statuses[i] = status
                responses[i] = json.loads(data.decode("utf-8"))
        finally:
            await client.close()

    t_start = clock.now()
    await asyncio.gather(*(worker() for __ in range(min(concurrency, total))))
    elapsed = clock.now() - t_start
    return LoadReport(
        total=total,
        elapsed_s=elapsed,
        latencies_s=latencies,
        statuses=statuses,
        responses=responses,
    )
