"""Micro-batching dispatcher: per-tenant request coalescing.

Concurrent ``/v1/recognize`` requests for the same tenant are
coalesced into one executor forward: the first request into an empty
lane arms a ``max_delay`` timer; the batch flushes early the moment it
reaches ``max_batch`` (and a ``max_delay`` of zero flushes every
request synchronously — the single-request fast path).  Lanes are
strictly per-tenant: one tenant's pending window, fault fallback, or
flush never delays another tenant's timer.

The dispatcher is deliberately loop-agnostic.  Time comes from the
clock shim (:mod:`repro.serve.clock`) and completion from a pluggable
future factory, so the same object runs under the asyncio server
(loop timers + ``loop.create_future``) and under the deterministic
test harness (:class:`repro.serve.testing.FakeClock` + plain
futures) — no sockets, no sleeps, byte-identical results.

Backpressure is a bounded lane: more than ``max_pending`` queued
requests for one tenant rejects the submit with
:class:`TenantOverloaded` (HTTP 503) instead of growing the queue
without bound.  Shutdown (:meth:`Dispatcher.drain`) flushes every
lane's in-flight requests before refusing new ones, so accepted work
is never dropped.

Telemetry (all under the installed/injected ``repro.obs`` backend):

- ``serve.requests{tenant}`` / ``serve.batches{tenant}`` counters;
- ``serve.batch_size{tenant}`` histogram — its total observation mass
  equals ``serve.requests`` (a pinned invariant of the test suite);
- ``serve.latency_s{tenant}`` histogram, measured on the serving
  clock (deterministic under the fake clock);
- ``serve.plan_runs{tenant}`` vs ``serve.plan_fallbacks{tenant,
  reason}`` — compiled-plan serving vs event-driven-oracle fallback
  accounting;
- ``serve.rejected{tenant}`` backpressure rejections;
- ``serve.pending{tenant}`` gauge — lane occupancy, published through
  a pull collector so the hot path pays nothing (sampled by the
  flight recorder at each timeline tick).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serve.tenants import TenantPool, UnknownTenant

#: ``serve.batch_size`` histogram buckets (batch sizes are small ints).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class DispatcherClosed(RuntimeError):
    """The dispatcher has drained and refuses new work (HTTP 503)."""


class TenantOverloaded(RuntimeError):
    """A tenant's lane is full; the request was rejected (HTTP 503)."""

    def __init__(self, tenant: str, pending: int) -> None:
        self.tenant = tenant
        self.pending = pending
        super().__init__(
            f"tenant {tenant!r} overloaded: {pending} requests pending"
        )


@dataclass(frozen=True)
class BatchPolicy:
    """The dispatcher's knobs.

    Args:
        max_batch: flush as soon as this many requests are pending.
        max_delay: seconds the first request of a window waits for
            company before the lane flushes anyway; ``0`` serves every
            request synchronously on arrival.
        max_pending: backpressure bound — queued (not yet flushed)
            requests per tenant beyond which submits are rejected.
    """

    max_batch: int = 8
    max_delay: float = 0.005
    max_pending: int = 256

    def validate(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )


@dataclass(frozen=True)
class ServeResult:
    """What a resolved request future carries."""

    tenant: str
    logits: np.ndarray     # one row, shape (n_classes,)
    label: str
    pred: int
    served_by: str         # "plan" or "fallback:<reason>"
    batch_size: int
    latency_s: float


class PlainFuture:
    """Minimal synchronous future for the loop-free test harness."""

    __slots__ = ("_done", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._result = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable] = []

    def done(self) -> bool:
        return self._done

    def set_result(self, result) -> None:
        if self._done:
            raise RuntimeError("future already resolved")
        self._done = True
        self._result = result
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise RuntimeError("future already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def result(self):
        if not self._done:
            raise RuntimeError("future is still pending")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise RuntimeError("future is still pending")
        return self._exception

    def add_done_callback(self, callback: Callable) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class _Request:
    __slots__ = ("x", "future", "t_submit")

    def __init__(self, x: np.ndarray, future, t_submit: float) -> None:
        self.x = x
        self.future = future
        self.t_submit = t_submit


class _Lane:
    """One tenant's pending window."""

    __slots__ = ("pending", "timer")

    def __init__(self) -> None:
        self.pending: List[_Request] = []
        self.timer = None


class Dispatcher:
    """Per-tenant micro-batching over a :class:`TenantPool`.

    Args:
        pool: the tenant registry (hot-swappable; resolved per flush).
        policy: batching knobs.
        clock: ``now()``/``call_later`` provider (see
            :mod:`repro.serve.clock`).
        telemetry: explicit ``repro.obs`` backend; defaults to the
            currently installed session.
        future_factory: creates the futures :meth:`submit` returns
            (``loop.create_future`` under the server,
            :class:`PlainFuture` by default).
    """

    def __init__(
        self,
        pool: TenantPool,
        policy: BatchPolicy,
        clock,
        telemetry=None,
        future_factory: Optional[Callable] = None,
    ) -> None:
        policy.validate()
        self.pool = pool
        self.policy = policy
        self.clock = clock
        self.closed = False
        self._lanes: Dict[str, _Lane] = {}
        self._future_factory = future_factory or PlainFuture
        if telemetry is None:
            from repro.obs.runtime import current

            telemetry = current()
        self._telemetry = telemetry
        if telemetry.enabled:
            telemetry.metrics.register_collector(self._sync_occupancy)

    def _sync_occupancy(self, metrics) -> None:
        """Pull collector: publish each lane's queued depth as the
        ``serve.pending{tenant}`` gauge (batch occupancy)."""
        for name, lane in self._lanes.items():
            metrics.gauge("serve.pending", tenant=name).set(
                len(lane.pending)
            )

    # -- intake --------------------------------------------------------------
    def pending(self, tenant: str) -> int:
        lane = self._lanes.get(tenant)
        return len(lane.pending) if lane else 0

    def submit(self, tenant_name: str, x: np.ndarray):
        """Queue one recognition request; returns its future.

        Raises synchronously on intake errors: unknown tenant
        (:class:`UnknownTenant`), wrong input shape (``ValueError``),
        full lane (:class:`TenantOverloaded`), drained dispatcher
        (:class:`DispatcherClosed`).
        """
        if self.closed:
            raise DispatcherClosed("dispatcher is drained")
        tenant = self.pool.require(tenant_name)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != tenant.input_shape:
            raise ValueError(
                f"tenant {tenant_name!r} expects input shape "
                f"{tenant.input_shape}, got {x.shape}"
            )
        lane = self._lanes.get(tenant_name)
        if lane is None:
            lane = self._lanes[tenant_name] = _Lane()
        if len(lane.pending) >= self.policy.max_pending:
            tel = self._telemetry
            if tel.enabled:
                tel.metrics.counter(
                    "serve.rejected", tenant=tenant_name
                ).inc()
            raise TenantOverloaded(tenant_name, len(lane.pending))
        future = self._future_factory()
        lane.pending.append(_Request(x, future, self.clock.now()))
        if len(lane.pending) >= self.policy.max_batch:
            self._flush(tenant_name)
        elif self.policy.max_delay == 0.0:
            # Single-request fast path: no window to wait for.
            self._flush(tenant_name)
        elif lane.timer is None:
            lane.timer = self.clock.call_later(
                self.policy.max_delay, lambda: self._flush(tenant_name)
            )
        return future

    # -- flushing ------------------------------------------------------------
    def _flush(self, tenant_name: str) -> None:
        lane = self._lanes.get(tenant_name)
        if lane is None:
            return
        if lane.timer is not None:
            lane.timer.cancel()
            lane.timer = None
        requests, lane.pending = lane.pending, []
        if not requests:
            return
        tenant = self.pool.get(tenant_name)
        if tenant is None:
            # Removed between queueing and the window closing.
            for request in requests:
                request.future.set_exception(UnknownTenant(tenant_name))
            return
        # Hot-swap may have changed the input shape mid-window; serve
        # the requests that still fit, fail the rest individually.
        batch: List[_Request] = []
        for request in requests:
            if request.x.shape == tenant.input_shape:
                batch.append(request)
            else:
                request.future.set_exception(ValueError(
                    f"tenant {tenant_name!r} was swapped to input shape "
                    f"{tenant.input_shape}; request has {request.x.shape}"
                ))
        if not batch:
            return
        k = len(batch)
        x = np.stack([request.x for request in batch], axis=0)
        tel = self._telemetry
        if tel.enabled:
            with tel.tracer.span("serve.batch", tenant=tenant_name, size=k):
                logits, served_by = tenant.infer(x)
        else:
            logits, served_by = tenant.infer(x)
        now = self.clock.now()
        if tel.enabled:
            metrics = tel.metrics
            metrics.counter("serve.requests", tenant=tenant_name).inc(k)
            metrics.counter("serve.batches", tenant=tenant_name).inc()
            metrics.histogram(
                "serve.batch_size", buckets=BATCH_BUCKETS, tenant=tenant_name
            ).observe(k)
            latency_hist = metrics.histogram(
                "serve.latency_s", tenant=tenant_name
            )
            for request in batch:
                latency_hist.observe(now - request.t_submit)
            if served_by == "plan":
                metrics.counter("serve.plan_runs", tenant=tenant_name).inc()
            else:
                metrics.counter(
                    "serve.plan_fallbacks", tenant=tenant_name,
                    reason=served_by.partition(":")[2],
                ).inc()
        for i, request in enumerate(batch):
            row = logits[i].copy()
            pred = int(row.argmax())
            request.future.set_result(ServeResult(
                tenant=tenant_name,
                logits=row,
                label=tenant.labels[pred],
                pred=pred,
                served_by=served_by,
                batch_size=k,
                latency_s=now - request.t_submit,
            ))

    def flush_all(self) -> None:
        """Flush every lane's pending window immediately."""
        for name in sorted(self._lanes):
            self._flush(name)

    def drain(self) -> None:
        """Shutdown: serve everything in flight, then refuse new work.

        Idempotent.  Every already-accepted request's future resolves
        (with its result or error) before this returns; subsequent
        :meth:`submit` calls raise :class:`DispatcherClosed`.
        """
        if self.closed:
            return
        self.closed = True
        self.flush_all()
