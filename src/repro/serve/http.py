"""The asyncio HTTP service: multi-tenant recognition over plans.

Hand-rolled HTTP/1.1 on :func:`asyncio.start_server` (stdlib only, in
the tradition of long-lived Python network daemons with built-in
monitoring): one coroutine per connection, keep-alive by default,
JSON bodies.  All inference runs on the event loop — the executors
are NumPy-bound and release nothing, so the service scales by
micro-batching (the dispatcher), not threads.

Endpoints:

``GET /healthz``
    Liveness + per-tenant summary (requests served, current fault
    state) as JSON.
``GET /metrics``
    The telemetry registry in a Prometheus-style text exposition;
    ``GET /metrics?format=json`` returns the canonical registry
    snapshot instead (what the tests and tooling parse).
``GET /traces``
    The trace events recorded so far as deterministic JSONL (one
    Chrome-trace event per line) — ``serve.batch`` spans nest the
    executor's ``exec.plan``/``exec.forward`` spans.
``GET /timeline``
    The flight recorder's retained ring-buffer samples as canonical
    JSONL; ``GET /timeline?format=json`` returns a document with the
    parsed samples, the fired alerts, and both sha256 digests (what
    the dashboard polls).  Each GET also gives the recorder a
    pull-style ``sample_if_due`` kick, so pollers keep the timeline
    fresh even between periodic ticks.
``GET /dashboard``
    A self-contained polling HTML page (no external assets) rendering
    the timeline: health cards, the alert log, and a per-series table
    with sparklines.  See :mod:`repro.serve.dashboard`.
``POST /v1/recognize``
    Body ``{"tenant": name, "input": nested-list}``; the input must
    match the tenant's ``(channels, h, w)`` shape (a bare ``(h, w)``
    list is accepted for single-channel tenants).  Responds with the
    logits (exact float64 round-trip — byte-identical to a direct
    executor forward), the predicted label, and serving metadata.
``POST /v1/tenants``
    Live hot-swap: body is a :class:`~repro.serve.tenants
    .TenantConfig` payload (``name``, ``scenario``, optional
    ``seed``/``train_epochs``/``train_samples``).  Builds the tenant
    (synchronously — training blocks the loop; keep serve-time swap
    epochs small) and installs it, replacing any tenant of that name.
    In-flight requests queued for the old tenant are served by the
    new one (see :class:`~repro.serve.tenants.TenantPool`).

Status codes: 400 malformed JSON/input, 404 unknown route or tenant,
405 wrong method, 503 overloaded or shutting down.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.serve.clock import LoopClock
from repro.serve.dispatch import (
    BatchPolicy,
    Dispatcher,
    DispatcherClosed,
    TenantOverloaded,
)
from repro.serve.tenants import (
    Tenant,
    TenantConfig,
    TenantPool,
    UnknownTenant,
    build_tenant,
)

_STATUS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies above this are rejected (a recognition input for the
#: largest scenario is ~30 kB of JSON).
MAX_BODY_BYTES = 1 << 20


class _BadRequest(Exception):
    def __init__(self, status: int, error: str, detail: str = "") -> None:
        self.status = status
        self.error = error
        self.detail = detail
        super().__init__(error)


#: Default p99 latency budget (seconds) for the stock serve rules.
DEFAULT_LATENCY_BUDGET_S = 0.5


def default_serve_rules(
    latency_budget_s: float = DEFAULT_LATENCY_BUDGET_S,
    backlog: int = 128,
):
    """The stock serve SLOs: any plan fallback (warning), any
    backpressure rejection (critical), windowed p99 latency over
    budget (critical), and lane backlog at or past ``backlog``
    (warning)."""
    from repro.obs.watch import Rule

    return [
        Rule(name="plan-fallbacks", series="serve.plan_fallbacks",
             kind="rate", op=">", value=0.0, severity="warning"),
        Rule(name="rejected", series="serve.rejected",
             kind="rate", op=">", value=0.0, severity="critical"),
        Rule(name="p99-latency", series="serve.latency_s",
             kind="quantile", quantile=0.99, op=">",
             value=latency_budget_s, windows=2, severity="critical"),
        Rule(name="backlog", series="serve.pending",
             kind="threshold", op=">=", value=float(backlog),
             severity="warning"),
    ]


class ServeApp:
    """The long-running service: tenants + dispatcher + telemetry.

    Args:
        policy: micro-batching knobs.
        telemetry: explicit ``repro.obs`` backend; by default the app
            creates its own live :class:`~repro.obs.runtime.Telemetry`
            (not installed process-wide), which ``/metrics`` and
            ``/traces`` expose.
        clock: timing provider; the loop clock by default.
        timeline_interval: flight-recorder cadence (clock seconds).
        timeline_capacity / timeline_window: recorder ring size and
            rolling-window width (samples).
        rules: watchdog :class:`~repro.obs.watch.Rule` list; the
            stock :func:`default_serve_rules` when omitted, ``()`` to
            disable alerting.
    """

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        telemetry=None,
        clock=None,
        timeline_interval: float = 1.0,
        timeline_capacity: Optional[int] = None,
        timeline_window: Optional[int] = None,
        rules=None,
    ) -> None:
        if telemetry is None:
            from repro.obs.runtime import Telemetry

            telemetry = Telemetry()
        self.telemetry = telemetry
        self.clock = clock if clock is not None else LoopClock()
        self.policy = policy or BatchPolicy()
        self.pool = TenantPool()
        self.dispatcher = Dispatcher(
            self.pool, self.policy, self.clock, telemetry=telemetry,
            future_factory=lambda: asyncio.get_running_loop().create_future(),
        )
        from repro.obs.timeline import (
            DEFAULT_CAPACITY,
            DEFAULT_WINDOW,
            flight_recorder,
        )
        from repro.obs.watch import Watchdog

        self.recorder = flight_recorder(
            telemetry, clock=self.clock.now,
            interval=timeline_interval,
            capacity=timeline_capacity or DEFAULT_CAPACITY,
            window=timeline_window or DEFAULT_WINDOW,
        )
        if rules is None:
            rules = default_serve_rules(backlog=self.policy.max_pending // 2)
        self.watchdog = Watchdog(
            rules, telemetry=telemetry if telemetry.enabled else None
        )
        if self.recorder.enabled:
            self.recorder.attach(self.watchdog)
        self.requests_handled = 0
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._conn_tasks: set = set()
        self._stop = asyncio.Event()
        self._stop_after: Optional[int] = None
        self._timeline_timer = None

    # -- tenant management ---------------------------------------------------
    def add_tenant(self, config: TenantConfig) -> Tenant:
        """Build a tenant wired to the app telemetry and install it."""
        tenant = build_tenant(config, telemetry=self.telemetry)
        replaced = self.pool.swap(tenant)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "serve.tenant_swaps", tenant=tenant.name
            ).inc()
            if replaced is not None:
                self.telemetry.tracer.instant(
                    "serve.tenant-swap", tenant=tenant.name,
                    scenario=config.scenario, seed=config.seed,
                )
        return tenant

    # -- lifecycle -----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port
        (recorded in :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.recorder.enabled and self._timeline_timer is None:
            self._timeline_timer = self.clock.call_later(
                self.recorder.interval, self._timeline_tick
            )

    def _timeline_tick(self) -> None:
        """Periodic flight-recorder sample on the serving clock;
        re-arms itself until shutdown."""
        self._timeline_timer = None
        if self._stop.is_set() or not self.recorder.enabled:
            return
        self.recorder.sample()
        self._timeline_timer = self.clock.call_later(
            self.recorder.interval, self._timeline_tick
        )

    async def shutdown(self) -> None:
        """Graceful stop: drain in-flight batches, close the listener
        and every open connection."""
        self.dispatcher.drain()
        if self._timeline_timer is not None:
            self._timeline_timer.cancel()
            self._timeline_timer = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        current = asyncio.current_task()
        stragglers = [t for t in self._conn_tasks if t is not current]
        for task in stragglers:
            task.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)
        self._stop.set()

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        stop_after: Optional[int] = None,
        ready=None,
    ) -> None:
        """Serve until :meth:`shutdown` (or ``stop_after`` handled
        requests); ``ready(app)`` is called once the port is bound."""
        self._stop_after = stop_after
        await self.start(host, port)
        if ready is not None:
            ready(self)
        try:
            await self._stop.wait()
        finally:
            if self._server is not None:
                await self.shutdown()

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._handle_request(request, writer)
                await writer.drain()
                self.requests_handled += 1
                if (self._stop_after is not None
                        and self.requests_handled >= self._stop_after):
                    self._stop.set()
                    break
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancelled us mid-read; exit quietly.
            pass
        finally:
            self._conn_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> Optional[Tuple]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, __ = line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            raise _BadRequest(400, "malformed-request-line")
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
            name, sep, value = header.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(400, "body-too-large", f"{length} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _handle_request(self, request, writer) -> bool:
        method, target, headers, body = request
        parts = urlsplit(target)
        path = parts.path
        try:
            status, payload, content_type = await self._route(
                method, path, parts.query, body
            )
        except _BadRequest as exc:
            status = exc.status
            payload = json.dumps(
                {"error": exc.error, "detail": exc.detail}
            ).encode()
            content_type = "application/json"
        except UnknownTenant as exc:
            status = 404
            payload = json.dumps(
                {"error": "unknown-tenant", "detail": str(exc)}
            ).encode()
            content_type = "application/json"
        except (TenantOverloaded, DispatcherClosed) as exc:
            status = 503
            payload = json.dumps(
                {"error": "overloaded", "detail": str(exc)}
            ).encode()
            content_type = "application/json"
        keep_alive = headers.get("connection", "").lower() != "close"
        head = (
            f"HTTP/1.1 {status} {_STATUS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        return keep_alive

    # -- routing -------------------------------------------------------------
    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        if path == "/healthz":
            self._require(method, "GET")
            return 200, self._healthz(), "application/json"
        if path == "/metrics":
            self._require(method, "GET")
            wants_json = "json" in parse_qs(query).get("format", [])
            if wants_json:
                return 200, self._metrics_json(), "application/json"
            return 200, self._metrics_text(), "text/plain; version=0.0.4"
        if path == "/traces":
            self._require(method, "GET")
            return 200, self._traces(), "application/x-ndjson"
        if path == "/timeline":
            self._require(method, "GET")
            self.recorder.sample_if_due()
            if "json" in parse_qs(query).get("format", []):
                return 200, self._timeline_json(), "application/json"
            jsonl = self.recorder.to_jsonl()
            return 200, (jsonl + "\n" if jsonl else "").encode(), \
                "application/x-ndjson"
        if path == "/dashboard":
            self._require(method, "GET")
            from repro.serve.dashboard import DASHBOARD_HTML

            return 200, DASHBOARD_HTML.encode(), "text/html; charset=utf-8"
        if path == "/v1/recognize":
            self._require(method, "POST")
            return 200, await self._recognize(body), "application/json"
        if path == "/v1/tenants":
            if method == "GET":
                return 200, json.dumps(
                    self.pool.describe(), sort_keys=True
                ).encode(), "application/json"
            self._require(method, "POST")
            return 201, self._swap_tenant(body), "application/json"
        raise _BadRequest(404, "unknown-route", path)

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _BadRequest(405, "method-not-allowed",
                              f"use {expected}")

    @staticmethod
    def _json_body(body: bytes) -> Dict:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(400, "malformed-json", str(exc))
        if not isinstance(payload, dict):
            raise _BadRequest(400, "malformed-json", "body must be an object")
        return payload

    # -- endpoint bodies -----------------------------------------------------
    def _healthz(self) -> bytes:
        active = self.watchdog.active()
        return json.dumps({
            "status": "ok" if not self.dispatcher.closed else "draining",
            "requests_handled": self.requests_handled,
            "tenants": self.pool.describe(),
            "policy": {
                "max_batch": self.policy.max_batch,
                "max_delay": self.policy.max_delay,
                "max_pending": self.policy.max_pending,
            },
            "alerts": {
                "active": [a.rule for a in active],
                "fired": len(self.watchdog.alerts),
                "critical": self.watchdog.critical_count(),
            },
        }, sort_keys=True).encode()

    def _timeline_json(self) -> bytes:
        """The dashboard document: parsed retained samples, fired
        alerts, and both determinism digests."""
        samples = [
            json.loads(sample.to_json())
            for sample in self.recorder.samples()
        ]
        alerts = [
            json.loads(alert.to_json()) for alert in self.watchdog.alerts
        ]
        return json.dumps({
            "interval": self.recorder.interval,
            "window": self.recorder.window,
            "capacity": self.recorder.capacity,
            "n_samples": self.recorder.n_samples,
            "dropped": self.recorder.dropped,
            "rules": [rule.name for rule in self.watchdog.rules],
            "samples": samples,
            "alerts": alerts,
            "digests": {
                "timeline": self.recorder.digest(),
                "alerts": self.watchdog.digest(),
            },
        }, sort_keys=True).encode()

    def _metrics_json(self) -> bytes:
        return json.dumps(
            self.telemetry.metrics.snapshot(), sort_keys=True
        ).encode()

    @staticmethod
    def _escape_label(value) -> str:
        """Escape a label value per the Prometheus text exposition
        format: backslash, double quote, and newline."""
        return (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )

    def _metrics_text(self) -> bytes:
        """Prometheus-style exposition from the registry snapshot."""
        lines = []
        for name, label_items, kind, payload in (
            self.telemetry.metrics.snapshot()
        ):
            metric = name.replace(".", "_").replace("-", "_")
            labels = ",".join(
                f'{k}="{self._escape_label(v)}"' for k, v in label_items
            )
            suffix = "{" + labels + "}" if labels else ""
            if kind == "histogram":
                acc = 0
                for bound, count in zip(
                    payload["buckets"] + [float("inf")], payload["counts"]
                ):
                    acc += count
                    shown = "+Inf" if bound == float("inf") else bound
                    le = ",".join(filter(None, [labels, f'le="{shown}"']))
                    lines.append(f"{metric}_bucket{{{le}}} {acc}")
                lines.append(f"{metric}_sum{suffix} {payload['sum']}")
                lines.append(f"{metric}_count{suffix} {payload['count']}")
            else:
                lines.append(f"{metric}{suffix} {payload}")
        return ("\n".join(lines) + "\n").encode()

    def _traces(self) -> bytes:
        from repro.obs import export_events

        events = export_events(self.telemetry)
        return ("\n".join(
            json.dumps(event, sort_keys=True) for event in events
        ) + ("\n" if events else "")).encode()

    async def _recognize(self, body: bytes) -> bytes:
        payload = self._json_body(body)
        tenant_name = payload.get("tenant")
        if not isinstance(tenant_name, str):
            raise _BadRequest(400, "missing-tenant",
                              "body needs a 'tenant' string")
        tenant = self.pool.require(tenant_name)
        if "input" not in payload:
            raise _BadRequest(400, "missing-input",
                              "body needs an 'input' array")
        try:
            x = np.asarray(payload["input"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(400, "malformed-input", str(exc))
        if x.shape == tenant.input_shape[1:] and tenant.input_shape[0] == 1:
            x = x[np.newaxis]
        if x.shape != tenant.input_shape:
            raise _BadRequest(
                400, "input-shape",
                f"expected {list(tenant.input_shape)}, got {list(x.shape)}",
            )
        result = await self.dispatcher.submit(tenant_name, x)
        return json.dumps({
            "tenant": result.tenant,
            "logits": result.logits.tolist(),
            "pred": result.pred,
            "label": result.label,
            "served_by": result.served_by,
            "batch_size": result.batch_size,
            "latency_s": result.latency_s,
        }, sort_keys=True).encode()

    def _swap_tenant(self, body: bytes) -> bytes:
        payload = self._json_body(body)
        try:
            config = TenantConfig(
                name=payload.get("name", payload.get("scenario", "")),
                scenario=payload.get("scenario", ""),
                seed=int(payload.get("seed", 0)),
                train_epochs=int(payload.get("train_epochs", 0)),
                train_samples=int(payload.get("train_samples", 64)),
            )
            config.validate()
        except (TypeError, ValueError) as exc:
            raise _BadRequest(400, "bad-tenant-config", str(exc))
        tenant = self.add_tenant(config)
        return json.dumps(
            {"name": tenant.name, **tenant.describe()}, sort_keys=True
        ).encode()
