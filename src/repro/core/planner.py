"""Design-support: automatic information-collection planning (§III.B).

The paper: *"if (i) the 3D map and obstacle information of a target
IoT device network, (ii) the required information collection cycle,
and (iii) the recovery method at the time of errors are designated, it
is desirable that we can devise a mechanism to estimate the
appropriate information collection mechanism [and] automatically
generate the necessary information collection algorithm"* — including
transmission timing, multi-channel assignment, and recovery, which are
"cumbersome for a system designer to individually specify".

:class:`CollectionPlanner` does exactly this for a deployed topology:

1. builds the connectivity graph (obstacles prune links);
2. routes every node to the sink over a BFS collection tree;
3. assigns channels by graph colouring so that interfering nodes
   (2-hop neighbours) never share a channel;
4. lays out a TDMA superframe meeting the requested collection cycle
   (k reports per second per node), with ``retry_slots`` spare slots
   per frame as the error-recovery budget;
5. verifies feasibility (airtime fits in the cycle) and reports the
   schedule as a plain data object a runtime can execute.

This plans the *collection* side (when and on which channel each node
reports).  The complementary planner pass for the *inference* side —
compiling a placement + network schedule into a flat ndarray program —
lives in :mod:`repro.core.compiled`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.wsn.routing import sink_tree
from repro.wsn.topology import Topology


@dataclass(frozen=True)
class Obstacle:
    """An axis-aligned rectangular obstacle that blocks radio links."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise ValueError("obstacle must have positive area")

    def blocks(self, p1: Tuple[float, float], p2: Tuple[float, float]) -> bool:
        """Whether the segment p1-p2 crosses this rectangle
        (Cohen-Sutherland style interval test on both axes)."""

        def code(p):
            cx = (p[0] < self.x_min) | ((p[0] > self.x_max) << 1)
            cy = (p[1] < self.y_min) << 2 | (p[1] > self.y_max) << 3
            return cx | cy

        c1, c2 = code(p1), code(p2)
        if c1 & c2:
            return False  # both outside on the same side
        if c1 == 0 or c2 == 0:
            return True  # an endpoint is inside
        # Segment clipping: sample the parametric line against x-slabs.
        (x1, y1), (x2, y2) = p1, p2
        for bound, axis in ((self.x_min, 0), (self.x_max, 0),
                            (self.y_min, 1), (self.y_max, 1)):
            if axis == 0:
                if x1 == x2:
                    continue
                t = (bound - x1) / (x2 - x1)
            else:
                if y1 == y2:
                    continue
                t = (bound - y1) / (y2 - y1)
            if not 0.0 <= t <= 1.0:
                continue
            px = x1 + t * (x2 - x1)
            py = y1 + t * (y2 - y1)
            if (self.x_min - 1e-9 <= px <= self.x_max + 1e-9
                    and self.y_min - 1e-9 <= py <= self.y_max + 1e-9):
                return True
        return False


@dataclass
class SlotAssignment:
    """One TDMA slot: who transmits, to whom, on which channel."""

    slot: int
    node: int
    parent: int
    channel: int


@dataclass
class CollectionPlan:
    """The generated information-collection algorithm.

    Attributes:
        sink: collection point.
        parents: routing tree (node -> parent, sink -> None).
        channels: node -> channel index.
        schedule: TDMA slots in transmission order (one superframe).
        frame_duration_s: length of one superframe.
        cycle_s: the requested collection cycle it satisfies.
        retry_slots: spare slots per frame reserved for recovery.
        unreachable: nodes the plan could not connect.
    """

    sink: int
    parents: Dict[int, Optional[int]]
    channels: Dict[int, int]
    schedule: List[SlotAssignment]
    frame_duration_s: float
    cycle_s: float
    retry_slots: int
    unreachable: List[int] = field(default_factory=list)

    @property
    def n_channels(self) -> int:
        return len(set(self.channels.values())) if self.channels else 0

    @property
    def feasible(self) -> bool:
        """Whether one superframe fits inside the collection cycle."""
        return self.frame_duration_s <= self.cycle_s

    def slots_of(self, node: int) -> List[SlotAssignment]:
        return [s for s in self.schedule if s.node == node]

    def depth_of(self, node: int) -> int:
        """Hops from ``node`` to the sink along the tree."""
        hops = 0
        cur = node
        while self.parents.get(cur) is not None:
            cur = self.parents[cur]
            hops += 1
            if hops > len(self.parents):
                raise RuntimeError("routing tree contains a cycle")
        return hops


class PlanningError(RuntimeError):
    """Raised when no feasible plan exists for the inputs."""


class CollectionPlanner:
    """Generates :class:`CollectionPlan` objects for a deployment.

    Args:
        topology: node placement and communication range.
        obstacles: map features that block links ((i) in the paper).
        slot_duration_s: airtime of one report transmission.
        max_channels: radio channels available for parallel slots.
    """

    def __init__(
        self,
        topology: Topology,
        obstacles: Sequence[Obstacle] = (),
        slot_duration_s: float = 0.01,
        max_channels: int = 4,
    ) -> None:
        if slot_duration_s <= 0:
            raise ValueError("slot_duration_s must be positive")
        if max_channels < 1:
            raise ValueError("need at least one channel")
        self.topology = topology
        self.obstacles = list(obstacles)
        self.slot_duration_s = slot_duration_s
        self.max_channels = max_channels

    # -- map handling -----------------------------------------------------------
    def connectivity(self) -> nx.Graph:
        """Topology graph with obstacle-blocked links removed."""
        g = self.topology.graph()
        if not self.obstacles:
            return g
        blocked = []
        for a, b in g.edges:
            pa = self.topology.node(a).position
            pb = self.topology.node(b).position
            if any(o.blocks(pa, pb) for o in self.obstacles):
                blocked.append((a, b))
        g.remove_edges_from(blocked)
        return g

    # -- channel assignment ---------------------------------------------------
    def _assign_channels(self, g: nx.Graph) -> Dict[int, int]:
        """Colour the 2-hop interference graph greedily.

        Two nodes within two hops can interfere at a common receiver,
        so they get different channels when the budget allows; if the
        chromatic need exceeds ``max_channels`` the colours wrap (the
        TDMA schedule then keeps wrapped pairs in different slots).
        """
        interference = nx.power(g, 2) if len(g) > 1 else g.copy()
        colors = nx.greedy_color(interference, strategy="largest_first")
        return {n: c % self.max_channels for n, c in colors.items()}

    # -- schedule generation -------------------------------------------------------
    def plan(
        self,
        sink: int,
        cycle_s: float,
        retry_slots: int = 2,
    ) -> CollectionPlan:
        """Generate the collection algorithm for the given cycle.

        Args:
            sink: collection node ((i) of the designer inputs).
            cycle_s: required collection cycle ((ii)); every node
                reports once per cycle.
            retry_slots: spare slots appended per frame ((iii), the
                recovery budget for retransmissions).

        Raises:
            PlanningError: if the sink is unknown or the cycle is not
                positive.
        """
        if cycle_s <= 0:
            raise PlanningError(f"cycle must be positive, got {cycle_s}")
        if sink not in self.topology.nodes:
            raise PlanningError(f"sink {sink} is not a deployed node")
        g = self.connectivity()
        if sink not in g:
            raise PlanningError(f"sink {sink} is not alive")
        reachable = nx.node_connected_component(g, sink)
        unreachable = sorted(set(g.nodes) - reachable)
        sub = g.subgraph(reachable).copy()
        parents: Dict[int, Optional[int]] = {sink: None}
        for child, parent in nx.bfs_predecessors(sub, sink):
            parents[child] = parent
        channels = self._assign_channels(sub)

        # Deepest nodes transmit first so a report reaches the sink
        # within a single superframe (convergecast ordering).  Nodes
        # on different channels whose receivers don't clash share a
        # slot.
        plan_nodes = [n for n in parents if n != sink]
        depth = {n: 0 for n in parents}
        for n in plan_nodes:
            d, cur = 0, n
            while parents[cur] is not None:
                cur = parents[cur]
                d += 1
            depth[n] = d
        order = sorted(plan_nodes, key=lambda n: (-depth[n], n))

        schedule: List[SlotAssignment] = []
        slot = 0
        used_in_slot: Dict[int, set] = {}
        for node in order:
            parent = parents[node]
            channel = channels[node]
            placed = False
            for s in range(slot + 1):
                busy = used_in_slot.setdefault(s, set())
                # A slot is reusable if neither this channel nor the
                # two endpoints are already involved in it.
                if channel not in {c for (c, __a, __b) in busy} and all(
                    node not in (a, b) and parent not in (a, b)
                    for (__c, a, b) in busy
                ):
                    # Respect convergecast order: a node must transmit
                    # no earlier than any of its children.
                    children_slots = [
                        x.slot for x in schedule if parents.get(x.node) == node
                    ]
                    if children_slots and s <= max(children_slots):
                        continue
                    busy.add((channel, node, parent))
                    schedule.append(SlotAssignment(s, node, parent, channel))
                    placed = True
                    break
            if not placed:
                slot += 1
                used_in_slot[slot] = {(channel, node, parent)}
                schedule.append(SlotAssignment(slot, node, parent, channel))
        n_slots = (max((s.slot for s in schedule), default=-1) + 1) + retry_slots
        frame = n_slots * self.slot_duration_s
        schedule.sort(key=lambda s: (s.slot, s.node))
        return CollectionPlan(
            sink=sink,
            parents=parents,
            channels={n: channels[n] for n in parents},
            schedule=schedule,
            frame_duration_s=frame,
            cycle_s=cycle_s,
            retry_slots=retry_slots,
            unreachable=unreachable,
        )

    def fastest_feasible_cycle(self, sink: int, retry_slots: int = 2) -> float:
        """Shortest collection cycle this deployment can sustain."""
        plan = self.plan(sink, cycle_s=1e9, retry_slots=retry_slots)
        return plan.frame_duration_s
