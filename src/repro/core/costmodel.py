"""Static communication-cost model.

Computes, for a model + placement + topology, the number of unit
output values every node must **receive** per inference — the paper's
communication-cost unit (Fig. 10 plots its per-node distribution).

Conventions, matching an efficient implementation:

- all channels at one grid position travel together (they share
  producers and consumers);
- a value transferred to a node is cached there for the duration of
  the layer, so a producer position is shipped to a given consumer
  node at most once per layer (receptive fields of co-located units
  overlap heavily — this is exactly the saving spatial assignment
  exploits);
- relays on multi-hop routes also receive (and re-send) the values,
  so bad placements pay for transit traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.assignment import Placement
from repro.core.unitgraph import LayerUnits, UnitGraph
from repro.wsn.routing import shortest_path_route
from repro.wsn.topology import Topology


@dataclass
class ProducerGroup:
    """Co-located values available at a layer boundary."""

    key: object       # grid position or unit index
    node: int
    n_values: int


@dataclass
class CostReport:
    """Per-node received-value counts for one inference."""

    rx_values: Dict[int, int] = field(default_factory=dict)
    per_layer_total: Dict[int, int] = field(default_factory=dict)
    unroutable: int = 0

    def add(self, node: int, values: int, layer_index: int) -> None:
        self.rx_values[node] = self.rx_values.get(node, 0) + values
        self.per_layer_total[layer_index] = (
            self.per_layer_total.get(layer_index, 0) + values
        )

    def max_rx(self) -> int:
        """The paper's 'maximal communication cost of the sensor
        nodes'."""
        return max(self.rx_values.values(), default=0)

    def total_rx(self) -> int:
        return sum(self.rx_values.values())

    def node_costs(self, node_ids: List[int]) -> List[int]:
        """Costs in node-id order (Fig. 10's bar series)."""
        return [self.rx_values.get(n, 0) for n in node_ids]


class CommunicationCostModel:
    """Computes :class:`CostReport` objects for placements.

    Args:
        graph: the model's unit graph.
        topology: sensor deployment (routing uses its connectivity).
    """

    def __init__(self, graph: UnitGraph, topology: Topology) -> None:
        self.graph = graph
        self.topology = topology
        self._route_cache: Dict[Tuple[int, int], Optional[list]] = {}

    def _route(self, src: int, dst: int) -> Optional[list]:
        key = (src, dst)
        if key not in self._route_cache:
            self._route_cache[key] = shortest_path_route(self.topology, src, dst)
        return self._route_cache[key]

    def _ship(
        self,
        report: CostReport,
        src: int,
        dst: int,
        n_values: int,
        layer_index: int,
    ) -> None:
        """Account one transfer src -> dst including relay traffic."""
        route = self._route(src, dst)
        if route is None:
            report.unroutable += 1
            return
        for hop_dst in route[1:]:
            report.add(hop_dst, n_values, layer_index)

    def _input_groups(self, placement: Placement) -> List[ProducerGroup]:
        h, w = self.graph.input_hw
        return [
            ProducerGroup(
                key=(y, x),
                node=placement.node_of_input((y, x)),
                n_values=self.graph.input_values,
            )
            for y in range(h)
            for x in range(w)
        ]

    def _layer_transfers(
        self,
        entry: LayerUnits,
        groups: List[ProducerGroup],
        placement: Placement,
        out: List[Tuple[int, int, int, int]],
    ) -> List[ProducerGroup]:
        """Append one layer's transfers to ``out``; return its output
        groups.  Transfers are ``(layer_index, src, dst, n_values)``."""
        if entry.kind == "flatten":
            return groups
        by_key = {g.key: g for g in groups}
        shipped = set()  # (producer key, consumer node)
        out_groups: List[ProducerGroup] = []
        if entry.kind == "spatial":
            for pos in entry.output_positions():
                node = placement.node_of(entry.index, pos)
                for dep in entry.deps[pos]:
                    producer = by_key[dep]
                    if producer.node != node and (dep, node) not in shipped:
                        shipped.add((dep, node))
                        out.append(
                            (entry.index, producer.node, node, producer.n_values)
                        )
                out_groups.append(
                    ProducerGroup(key=pos, node=node, n_values=entry.out_values)
                )
        elif entry.layer.is_elementwise:  # flat elementwise
            for unit in entry.output_positions():
                node = placement.node_of(entry.index, unit)
                producer = by_key[unit]
                if producer.node != node:
                    out.append(
                        (entry.index, producer.node, node, producer.n_values)
                    )
                out_groups.append(ProducerGroup(key=unit, node=node, n_values=1))
        else:  # dense: every unit reads every producer group
            consumer_nodes = {
                placement.node_of(entry.index, unit)
                for unit in entry.output_positions()
            }
            for node in sorted(consumer_nodes):
                for producer in groups:
                    if producer.node != node:
                        out.append(
                            (entry.index, producer.node, node, producer.n_values)
                        )
            out_groups = [
                ProducerGroup(
                    key=unit,
                    node=placement.node_of(entry.index, unit),
                    n_values=1,
                )
                for unit in entry.output_positions()
            ]
        return out_groups

    def transfers(
        self, placement: Placement, collect_output_at: Optional[int] = None
    ) -> List[Tuple[int, int, int, int]]:
        """All cross-node transfers of one forward pass, as
        ``(layer_index, src_node, dst_node, n_values)`` tuples.

        The distributed executor replays exactly this list over the
        network layer, which lets the test suite check measured
        against modelled traffic.
        """
        out: List[Tuple[int, int, int, int]] = []
        groups = self._input_groups(placement)
        for entry in self.graph.layers:
            groups = self._layer_transfers(entry, groups, placement, out)
        if collect_output_at is not None:
            for producer in groups:
                if producer.node != collect_output_at:
                    out.append(
                        (
                            self.graph.n_layers,
                            producer.node,
                            collect_output_at,
                            producer.n_values,
                        )
                    )
        return out

    def inference_cost(
        self, placement: Placement, collect_output_at: Optional[int] = None
    ) -> CostReport:
        """Cost of one forward pass under ``placement``.

        Args:
            collect_output_at: optionally ship the final outputs to a
                sink node (the application's decision point).
        """
        report = CostReport()
        for layer_index, src, dst, n_values in self.transfers(
            placement, collect_output_at
        ):
            self._ship(report, src, dst, n_values, layer_index)
        return report

    def training_step_cost(
        self, placement: Placement, update_mode: str = "local"
    ) -> CostReport:
        """Communication cost of one training step (per sample).

        ``"local"`` — MicroDeep's choice: the forward activations move
        (consumers need them to compute), but every gradient is
        consumed where it is produced, so backward adds **nothing**.

        ``"exact"`` — full distributed backprop: each activation
        transfer has a mirror-image gradient transfer (the consumer
        sends dLoss/dActivation back to the producer), doubling the
        traffic.  This is the overhead the paper's local update
        "sacrificing some accuracy" buys away.
        """
        if update_mode not in ("exact", "local"):
            raise ValueError(
                f"update_mode must be 'exact' or 'local', got {update_mode!r}"
            )
        report = CostReport()
        for layer_index, src, dst, n_values in self.transfers(placement):
            self._ship(report, src, dst, n_values, layer_index)
            if update_mode == "exact":
                self._ship(report, dst, src, n_values, layer_index)
        return report
