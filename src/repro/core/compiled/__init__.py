"""Compiled inference plans: the steady-state fast path.

In steady state (no faults, no lossy links, every node up) the
per-layer communication pattern of a placed CNN is fully static, so
nothing about a forward pass needs to be decided at run time: the
routes, the per-link traffic, even the failure-masking index arrays
are all functions of the placement and the topology alone.  This
package "compiles" that structure once into a flat ndarray program —
precomputed per-layer gather/scatter index arrays plus hop groups
with one batched traffic-accounting update each (the
``traffic_replay_batched`` trick generalized to the whole forward) —
which :meth:`CompiledPlan.run` then executes without touching the
event loop.

The event-driven :class:`repro.core.DistributedExecutor` path stays
as the parity oracle (the differential suite pins byte-identical
logits and exactly equal traffic counters), and the executor falls
back to it automatically the moment a fault adapter, lossy link
model, or active brownout makes the static schedule unsound.

Import discipline: nothing in this package may import
:mod:`repro.sim` — the whole point of a compiled plan is that the
hot path can never regress into the event loop.  An AST lint in the
test suite enforces it.
"""

from repro.core.compiled.plan import CompiledPlan, HopProgram, LayerMask
from repro.core.compiled.compiler import PlanNotCompilable, compile_plan

__all__ = [
    "CompiledPlan",
    "HopProgram",
    "LayerMask",
    "PlanNotCompilable",
    "compile_plan",
]
