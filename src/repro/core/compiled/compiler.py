"""Planner pass: placement + network schedule -> flat ndarray program.

:func:`compile_plan` folds the executor's aggregated transfer list
through the (static) routes into per-link and per-node integer
tallies, and flattens the per-layer owner maps into gather/scatter
index arrays.  Compilation either round-trips the event-driven
semantics exactly or raises the typed :class:`PlanNotCompilable` —
never a silently-wrong plan.

This module must never import :mod:`repro.sim` (lint-enforced).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.compiled.plan import CompiledPlan, HopProgram, LayerMask


class PlanNotCompilable(RuntimeError):
    """The placement/network cannot be compiled to a static plan.

    Attributes:
        reason: machine-readable cause — one of ``"lossy-links"``,
            ``"link-faults"``, ``"node-down"``, ``"fault-adapter"``,
            ``"unroutable"``.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        message = f"plan not compilable ({reason})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


def _check_compilable(executor) -> None:
    """Raise unless the executor is in the static steady state."""
    blocked = plan_blocked(executor)
    if blocked is not None:
        reason, detail = blocked
        raise PlanNotCompilable(reason, detail)


def plan_blocked(executor) -> Optional[Tuple[str, str]]:
    """Why a compiled plan cannot (currently) serve this executor, as
    ``(reason, detail)`` — or None when the steady state holds.  The
    executor runs this cheap check before every compiled forward, so
    a fault adapter, lossy link model, or active brownout routes the
    call back to the event-driven oracle the moment it appears."""
    if getattr(executor, "fault_adapter", None) is not None:
        return ("fault-adapter", "a fault adapter is attached")
    network = executor.network
    if network.loss_probability > 0.0:
        return (
            "lossy-links",
            f"loss_probability={network.loss_probability} draws "
            "per-message randomness",
        )
    if network.link_faults is not None:
        return ("link-faults", "a LinkFaultModel is installed")
    down = [n.node_id for n in network.topology if not n.alive]
    if down:
        return ("node-down", f"nodes down: {down}")
    return None


def _routes(topology):
    """Route resolver over one connectivity snapshot.

    The graph is built once (the event-driven path rebuilds it per
    unicast — exactly the cost compilation amortizes away); with every
    node alive it matches what
    :func:`repro.wsn.routing.shortest_path_route` would return call by
    call, so the compiled traffic equals the oracle's.
    """
    g = topology.graph()

    def route(src: int, dst: int) -> Optional[List[int]]:
        if src == dst:
            return [src]
        if src not in g or dst not in g:
            return None
        try:
            return nx.shortest_path(g, src, dst)
        except nx.NetworkXNoPath:
            return None

    return route


def _spatial_mask(index_map: Dict) -> LayerMask:
    nodes = sorted(index_map)
    if not nodes:
        empty = np.empty(0, dtype=np.intp)
        return LayerMask(spatial=True, pos_node=empty, rows=empty, cols=empty)
    return LayerMask(
        spatial=True,
        pos_node=np.concatenate([
            np.full(index_map[n][0].shape[0], n, dtype=np.intp)
            for n in nodes
        ]),
        rows=np.concatenate([index_map[n][0] for n in nodes]),
        cols=np.concatenate([index_map[n][1] for n in nodes]),
    )


def _flat_mask(index_map: Dict) -> LayerMask:
    nodes = sorted(index_map)
    if not nodes:
        empty = np.empty(0, dtype=np.intp)
        return LayerMask(spatial=False, pos_node=empty, flat=empty)
    return LayerMask(
        spatial=False,
        pos_node=np.concatenate([
            np.full(index_map[n].shape[0], n, dtype=np.intp) for n in nodes
        ]),
        flat=np.concatenate([index_map[n] for n in nodes]),
    )


def _build_masks(executor) -> List[Optional[LayerMask]]:
    """Flatten the executor's per-node owner maps into aligned
    gather/scatter arrays (element 0 = input grid, then one per
    layer, None for flatten)."""
    maps = executor._owner_indices()
    masks: List[Optional[LayerMask]] = [_spatial_mask(maps[0])]
    for entry, index_map in zip(executor.graph.layers, maps[1:]):
        if index_map is None:
            masks.append(None)
        elif entry.kind == "spatial":
            masks.append(_spatial_mask(index_map))
        else:
            masks.append(_flat_mask(index_map))
    return masks


def _build_hop_program(executor) -> HopProgram:
    """Fold the aggregated transfer list through the routes into one
    integer tally per link and per node — the whole forward's traffic
    as a handful of arrays."""
    route_of = _routes(executor.network.topology)
    link_acc: Dict[Tuple[int, int], List[int]] = {}
    tx_acc: Dict[int, List[int]] = {}
    rx_acc: Dict[int, List[int]] = {}
    sent = 0
    hops = 0
    groups = executor._aggregated_transfers()
    for (layer_index, src, dst, n_values), multiplicity in groups:
        route = route_of(src, dst)
        if route is None:
            raise PlanNotCompilable(
                "unroutable",
                f"layer {layer_index} transfer {src}->{dst} has no route",
            )
        sent += multiplicity
        values = multiplicity * n_values
        for hop_src, hop_dst in zip(route, route[1:]):
            hops += multiplicity
            link = link_acc.setdefault((hop_src, hop_dst), [0, 0])
            link[0] += multiplicity
            link[1] += values
            tx = tx_acc.setdefault(hop_src, [0, 0])
            tx[0] += multiplicity
            tx[1] += values
            rx = rx_acc.setdefault(hop_dst, [0, 0])
            rx[0] += multiplicity
            rx[1] += values

    def _cols(acc, index):
        return np.array([pair[index] for pair in acc.values()], dtype=np.int64)

    return HopProgram(
        link_src=np.array([s for s, __ in link_acc], dtype=np.intp),
        link_dst=np.array([d for __, d in link_acc], dtype=np.intp),
        link_packets=_cols(link_acc, 0),
        link_values=_cols(link_acc, 1),
        tx_nodes=np.array(list(tx_acc), dtype=np.intp),
        tx_packets=_cols(tx_acc, 0),
        tx_values=_cols(tx_acc, 1),
        rx_nodes=np.array(list(rx_acc), dtype=np.intp),
        rx_packets=_cols(rx_acc, 0),
        rx_values=_cols(rx_acc, 1),
        sent=sent,
        hops=hops,
        n_transfer_groups=len(groups),
    )


def compile_plan(executor) -> CompiledPlan:
    """Compile a :class:`repro.core.DistributedExecutor`'s placement +
    network schedule into a :class:`CompiledPlan`.

    Raises:
        PlanNotCompilable: when the executor is not in the static
            steady state (lossy links, an installed link-fault model,
            a fault adapter, a node down) or any transfer is
            unroutable.  The caller falls back to the event-driven
            path in that case — compilation is never silently wrong.
    """
    _check_compilable(executor)
    return CompiledPlan(
        network=executor.network,
        layers=executor.graph.layers,
        hops=_build_hop_program(executor),
        masks=_build_masks(executor),
    )
