"""The flat ndarray program a compiled plan executes.

A :class:`CompiledPlan` holds three precomputed pieces:

- the model's layer sequence (the arithmetic is identical to the
  centralized forward, so logits stay byte-for-byte equal to the
  event-driven oracle);
- a :class:`HopProgram` — every directed link's per-inference packet
  and value tallies, already aggregated over all transfer groups and
  route hops, which :meth:`repro.wsn.Network.account_compiled` applies
  as one batched accounting update;
- per-layer gather/scatter index arrays (:class:`LayerMask`) mapping
  owner nodes to output positions, so failure masking is a boolean
  gather plus one fancy-indexed zeroing per layer.

This module must never import :mod:`repro.sim` (lint-enforced): the
compiled hot path owes its speed to never entering the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class HopProgram:
    """One inference's traffic, aggregated per directed link and node.

    All arrays are per *single* inference; the accounting hook scales
    them by the batch size (exact integer arithmetic, so the resulting
    counters equal the event-driven replay's to the last value).

    Attributes:
        link_src / link_dst / link_packets / link_values: one entry
            per directed link carrying traffic (first-use order).
        tx_nodes / tx_packets / tx_values: per transmitting node.
        rx_nodes / rx_packets / rx_values: per receiving node.
        sent: application messages per inference (each is delivered —
            plans only compile on ideal links).
        hops: packet-hops per inference.
        n_transfer_groups: aggregated ``(layer, src, dst, n_values)``
            groups the program was folded from.
    """

    link_src: np.ndarray
    link_dst: np.ndarray
    link_packets: np.ndarray
    link_values: np.ndarray
    tx_nodes: np.ndarray
    tx_packets: np.ndarray
    tx_values: np.ndarray
    rx_nodes: np.ndarray
    rx_packets: np.ndarray
    rx_values: np.ndarray
    sent: int
    hops: int
    n_transfer_groups: int

    @property
    def n_links(self) -> int:
        return int(self.link_src.shape[0])

    def total_values(self) -> int:
        """Values received network-wide per inference (conservation
        pin: equals the sum of the per-node rx tallies and the sum of
        the per-link tallies)."""
        return int(self.link_values.sum())


@dataclass(frozen=True)
class LayerMask:
    """Owner map of one layer's output positions, flattened.

    ``pos_node[i]`` is the node hosting position ``i``; ``rows``/
    ``cols`` (spatial) or ``flat`` (dense) are the aligned index
    arrays.  Masking a dead set is ``np.isin(pos_node, dead)`` and one
    fancy-indexed assignment — no per-position Python.
    """

    spatial: bool
    pos_node: np.ndarray
    rows: Optional[np.ndarray] = None
    cols: Optional[np.ndarray] = None
    flat: Optional[np.ndarray] = None

    def dead_index(self, dead: np.ndarray):
        """Index arrays of the positions owned by ``dead`` nodes
        (None when the layer has none)."""
        sel = np.isin(self.pos_node, dead)
        if not sel.any():
            return None
        if self.spatial:
            return self.rows[sel], self.cols[sel]
        return self.flat[sel]


class CompiledPlan:
    """A placement + network schedule compiled to straight-line code.

    Built by :func:`repro.core.compiled.compile_plan`; executed by
    :meth:`run` (and :meth:`run_masked` for the node-failure scenario)
    without consulting routing, the simulator, or any per-transfer
    Python loop.  The plan is only sound under the conditions it was
    compiled for — ideal links, every node alive — which the executor
    re-checks before each use (falling back to the event-driven oracle
    otherwise).

    Args:
        network: the network whose counters the plan advances.
        layers: the unit-graph layer entries, in forward order.
        hops: the aggregated traffic program.
        masks: per-layer :class:`LayerMask` maps — element 0 is the
            input grid, element ``1 + i`` belongs to ``layers[i]``
            (None for flatten layers, which move no data).
    """

    def __init__(self, network, layers, hops: HopProgram, masks) -> None:
        self.network = network
        self.hops = hops
        self.masks = list(masks)
        self._entries = list(layers)
        #: Bound forward callables, one per layer — the whole
        #: arithmetic program, flattened.
        self._ops = [entry.layer.forward for entry in self._entries]

    @property
    def n_layers(self) -> int:
        return len(self._ops)

    def describe(self) -> Dict[str, int]:
        """Small summary for spans, logs, and the CLI."""
        return {
            "layers": self.n_layers,
            "links": self.hops.n_links,
            "transfer_groups": self.hops.n_transfer_groups,
            "values_per_inference": self.hops.total_values(),
        }

    # -- execution ----------------------------------------------------------
    def run(self, x: np.ndarray, count_traffic: bool = True) -> np.ndarray:
        """One compiled forward pass.

        Traffic for the whole batch is accounted in one bulk update
        before the math (the event-driven oracle also replays traffic
        first); the layer arithmetic is the exact sequence
        ``model.forward`` runs, so the logits are byte-identical.
        """
        if count_traffic:
            self.network.account_compiled(self.hops, copies=int(x.shape[0]))
        out = x
        for op in self._ops:
            out = op(out, training=False)
        return out

    def run_masked(
        self, x: np.ndarray, dead_nodes: Iterable[int]
    ) -> np.ndarray:
        """Compiled twin of
        :meth:`repro.core.DistributedExecutor.forward_masked`: units
        hosted on dead nodes output zero, input cells measured by dead
        sensors read zero.  Uses the precomputed gather/scatter maps —
        one boolean gather and at most one zeroing per layer."""
        dead = np.array(sorted(set(int(n) for n in dead_nodes)), dtype=np.intp)
        if dead.size == 0:
            out = x
            for op in self._ops:
                out = op(out, training=False)
            return out
        x = np.array(x, copy=True)
        input_index = self.masks[0].dead_index(dead)
        if input_index is not None:
            x[:, :, input_index[0], input_index[1]] = 0.0
        out = x
        for entry, mask, op in zip(self._entries, self.masks[1:], self._ops):
            out = op(out, training=False)
            if mask is None:
                continue
            span = mask.dead_index(dead)
            if span is None:
                continue
            if mask.spatial:
                out[:, :, span[0], span[1]] = 0.0
            else:
                out[:, span] = 0.0
        return out
