"""Distributed training: exact vs. local backpropagation.

The paper: *"The backpropagation process is carried out in a
distributed fashion ... Weights of units are updated independently by
each sensor node to avoid communication overhead, sacrificing some
accuracy."*

Two update modes:

- ``"exact"`` — full backpropagation: mathematically identical to the
  centralized CNN, but every gradient that crosses a node boundary
  would have to be transmitted (expensive on a WSN).
- ``"local"`` — the MicroDeep approximation: each node backpropagates
  only through the units it hosts.  Parameter gradients stay exact
  (the forward pass already delivered the cross-node *activations*),
  but gradient flow **to units on other nodes is dropped**, so deeper
  layers see truncated error signals.  No gradient messages are
  exchanged at all.

Two implementations of the ``"local"`` backward coexist:

- the **vectorized** path (default): the per-node masks are stacked
  into one ``(n_nodes, …)`` tensor per layer at construction time, the
  node axis is folded into the batch axis, and each masked layer runs
  **one** batched kernel (:meth:`repro.nn.layers.base.Layer.backward_nodes`)
  over the ``(n_nodes · batch, …)`` masked gradients, followed by a
  masked scatter-reduce over the node axis.  Parameter gradients are
  accumulated once from the node-collapsed gradient — exactly the sum
  of the per-node masked gradients, because every output slot is owned
  by one node.
- the **reference** path (``backward_impl="reference"`` /
  :meth:`MicroDeepTrainer._backward_reference`): the original loop
  calling one full ``layer.backward`` per hosting node per layer — the
  parity oracle the tests pin the vectorized path against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.assignment import Placement
from repro.core.unitgraph import LayerUnits, UnitGraph
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optimizers import Optimizer
from repro.nn.training import TrainingHistory


class _StackedMasks:
    """One layer's per-node masks as stacked tensors.

    ``nodes`` preserves the reference loop's per-node iteration order;
    ``out_masks`` / ``in_masks`` stack that order along a leading node
    axis shaped to broadcast against ``grad[np.newaxis]`` (spatial:
    ``(n_nodes, 1, 1, H, W)``; dense: ``(n_nodes, 1, U)``).
    """

    __slots__ = ("nodes", "out_masks", "in_masks")

    def __init__(
        self, nodes: List[int], out_masks: np.ndarray, in_masks: np.ndarray
    ) -> None:
        self.nodes = nodes
        self.out_masks = out_masks
        self.in_masks = in_masks


class MicroDeepTrainer:
    """Trains a placed CNN with distributed backpropagation.

    Args:
        graph: unit graph of the (built) model.
        placement: unit-to-node mapping.
        optimizer: update rule.
        update_mode: ``"exact"`` or ``"local"`` (see module docstring).
        loss: defaults to softmax cross-entropy.
        fault_adapter: optional fault-layer bridge (see
            :class:`repro.faults.TrainingFaultAdapter`): nodes it
            reports down skip their local backward contribution — a
            crashed node can neither compute nor apply its updates —
            and each skip is reported back.  Requires ``"local"``
            updates (exact backprop has no per-node structure to
            degrade).
        backward_impl: ``"vectorized"`` (default) or ``"reference"``
            — which ``"local"`` backward implementation :meth:`fit`
            uses (see module docstring; the reference loop is retained
            as the parity oracle and for benchmarking).
    """

    def __init__(
        self,
        graph: UnitGraph,
        placement: Placement,
        optimizer: Optimizer,
        update_mode: str = "local",
        loss: Optional[CrossEntropyLoss] = None,
        fault_adapter=None,
        backward_impl: str = "vectorized",
        telemetry=None,
    ) -> None:
        if update_mode not in ("exact", "local"):
            raise ValueError(
                f"update_mode must be 'exact' or 'local', got {update_mode!r}"
            )
        if backward_impl not in ("vectorized", "reference"):
            raise ValueError(
                "backward_impl must be 'vectorized' or 'reference', "
                f"got {backward_impl!r}"
            )
        if fault_adapter is not None and update_mode != "local":
            raise ValueError(
                "fault-aware training requires update_mode='local'"
            )
        self.graph = graph
        self.model = graph.model
        self.placement = placement
        self.optimizer = optimizer
        self.update_mode = update_mode
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self.fault_adapter = fault_adapter
        self.backward_impl = backward_impl
        # Placement is frozen for the trainer's lifetime, so both mask
        # forms are built exactly once and never invalidated.
        self._masks = self._build_masks() if update_mode == "local" else None
        self._stacked = (
            self._build_stacked() if update_mode == "local" else None
        )
        if telemetry is None:
            from repro.obs.runtime import current

            telemetry = current()
        self._telemetry = telemetry

    # -- mask construction ---------------------------------------------------
    def _input_owner_of_layer(self, entry: LayerUnits):
        """Owner of each input slot of ``entry``.

        Returns ``("spatial", {(y, x): node})`` or
        ``("flat", {j: node})``.
        """
        prev_idx = entry.index - 1
        while prev_idx >= 0 and self.graph.layers[prev_idx].kind == "flatten":
            prev_idx -= 1
        if prev_idx < 0:
            return "spatial", dict(self.placement.input_node)
        prev = self.graph.layers[prev_idx]
        owners = {
            slot: self.placement.node_of(prev.index, slot)
            for slot in prev.output_positions()
        }
        if prev.kind == "spatial" and entry.kind == "flat":
            # Crossing the flatten boundary: expand (y, x) ownership to
            # flattened indices j = c*H*W + y*W + x.
            h, w = prev.out_hw
            c = prev.out_values
            flat_owners = {}
            for (y, x), node in owners.items():
                for ch in range(c):
                    flat_owners[ch * h * w + y * w + x] = node
            return "flat", flat_owners
        kind = "spatial" if prev.kind == "spatial" else "flat"
        return kind, owners

    def _build_masks(self) -> Dict[int, Dict[int, Tuple[np.ndarray, np.ndarray]]]:
        """Per-layer, per-node (out_mask, in_mask) arrays.

        Masks broadcast over the batch (and channel, for spatial
        layers) dimensions.  Only layers that cut gradient flow get
        masks: spatial non-elementwise and dense layers.
        """
        masks: Dict[int, Dict[int, Tuple[np.ndarray, np.ndarray]]] = {}
        for entry in self.graph.layers:
            if entry.kind == "flatten" or entry.layer.is_elementwise:
                continue
            in_kind, in_owner = self._input_owner_of_layer(entry)
            per_node: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            if entry.kind == "spatial":
                h_out, w_out = entry.out_hw
                h_in, w_in = entry.in_hw
                nodes = {
                    self.placement.node_of(entry.index, pos)
                    for pos in entry.output_positions()
                }
                for node in nodes:
                    out_mask = np.zeros((1, 1, h_out, w_out))
                    for pos in entry.output_positions():
                        if self.placement.node_of(entry.index, pos) == node:
                            out_mask[0, 0, pos[0], pos[1]] = 1.0
                    in_mask = np.zeros((1, 1, h_in, w_in))
                    for pos, owner in in_owner.items():
                        if owner == node:
                            in_mask[0, 0, pos[0], pos[1]] = 1.0
                    per_node[node] = (out_mask, in_mask)
            else:  # dense
                n_units = entry.n_units
                n_in = entry.in_units
                nodes = {
                    self.placement.node_of(entry.index, u)
                    for u in range(n_units)
                }
                for node in nodes:
                    out_mask = np.zeros((1, n_units))
                    for u in range(n_units):
                        if self.placement.node_of(entry.index, u) == node:
                            out_mask[0, u] = 1.0
                    in_mask = np.zeros((1, n_in))
                    for j, owner in in_owner.items():
                        if owner == node:
                            in_mask[0, j] = 1.0
                    per_node[node] = (out_mask, in_mask)
            masks[entry.index] = per_node
        return masks

    def _build_stacked(self) -> Dict[int, _StackedMasks]:
        """Stack :attr:`_masks` per layer along a leading node axis.

        Built once in ``__init__`` (placement is frozen); replaces the
        dict-of-dicts lookups of the reference loop with one broadcast
        multiply per layer.
        """
        stacked: Dict[int, _StackedMasks] = {}
        for index, per_node in self._masks.items():
            nodes = list(per_node)
            out_masks = np.stack([per_node[n][0] for n in nodes])
            in_masks = np.stack([per_node[n][1] for n in nodes])
            stacked[index] = _StackedMasks(nodes, out_masks, in_masks)
        return stacked

    # -- backward ------------------------------------------------------------
    def _backward(self, grad: np.ndarray) -> None:
        """Backpropagate through the model in the selected mode."""
        tel = self._telemetry
        if not tel.enabled:
            self._backward_dispatch(grad)
            return
        impl = (
            "exact" if self.update_mode == "exact" else self.backward_impl
        )
        with tel.tracer.span(
            "exec.backward", batch=int(grad.shape[0]), impl=impl
        ):
            self._backward_dispatch(grad)

    def _backward_dispatch(self, grad: np.ndarray) -> None:
        if self.update_mode == "exact":
            self.model.backward(grad)
        elif self.backward_impl == "reference":
            self._backward_reference(grad)
        else:
            self._backward_vectorized(grad)

    def _backward_vectorized(self, grad: np.ndarray) -> None:
        """The batched ``"local"`` backward (see module docstring)."""
        down = (
            self.fault_adapter.down_nodes()
            if self.fault_adapter is not None
            else None
        )
        for entry in reversed(self.graph.layers):
            grad = self._layer_backward_batched(entry, grad, down)

    def _layer_backward_batched(
        self, entry: LayerUnits, grad: np.ndarray, down
    ) -> np.ndarray:
        """One layer of the vectorized local backward.

        Layers that do not cut gradient flow backpropagate the
        collapsed gradient directly; masked layers run one batched
        kernel over the node-stacked masked gradients and scatter-
        reduce the result over the node axis.  All sums over the node
        axis are exact — the masks are disjoint, so each slot adds one
        value and zeros.
        """
        layer = entry.layer
        if entry.kind == "flatten" or layer.is_elementwise:
            return layer.backward(grad)
        stack = self._stacked[entry.index]
        out_masks = stack.out_masks
        grad_param = grad
        if down:
            skipped = [node for node in stack.nodes if node in down]
            for node in skipped:
                self.fault_adapter.on_update_skipped(entry.index, node)
            if skipped:
                # Dead nodes become zeroed rows in the stacked mask;
                # the collapsed parameter gradient shrinks to the
                # union of the surviving (disjoint) out-masks.
                live = np.array(
                    [node not in down for node in stack.nodes],
                    dtype=grad.dtype,
                ).reshape((-1,) + (1,) * (out_masks.ndim - 1))
                out_masks = out_masks * live
                grad_param = grad * out_masks.sum(axis=0)
        n_nodes = len(stack.nodes)
        batch = grad.shape[0]
        stacked = (grad[np.newaxis] * out_masks).reshape(
            (n_nodes * batch,) + grad.shape[1:]
        )
        grad_in = layer.backward_nodes(stacked, grad_param)
        grad_in = grad_in.reshape((n_nodes, batch) + grad_in.shape[1:])
        return (grad_in * stack.in_masks).sum(axis=0)

    def _backward_reference(self, grad: np.ndarray) -> None:
        """The retained per-node ``"local"`` loop — parity oracle for
        the vectorized path (one full ``layer.backward`` per hosting
        node per masked layer)."""
        down = (
            self.fault_adapter.down_nodes()
            if self.fault_adapter is not None
            else None
        )
        for entry in reversed(self.graph.layers):
            layer = entry.layer
            if entry.kind == "flatten" or layer.is_elementwise:
                grad = layer.backward(grad)
                continue
            per_node = self._masks[entry.index]
            total = None
            for node, (out_mask, in_mask) in per_node.items():
                if down and node in down:
                    self.fault_adapter.on_update_skipped(entry.index, node)
                    continue
                grad_in = layer.backward(grad * out_mask)
                contribution = grad_in * in_mask
                total = contribution if total is None else total + contribution
            if total is None:
                # Every host of this layer is down: no gradient flows
                # further back, but the pass still completes.
                total = layer.backward(grad * 0.0)
            grad = total

    # -- training loop ---------------------------------------------------------
    def _train_step(self, xb: np.ndarray, yb: np.ndarray) -> Tuple[float, int]:
        """One mini-batch update; returns ``(batch_loss, n_correct)``."""
        self.model.zero_grads()
        logits = self.model.forward(xb, training=True)
        batch_loss = self.loss.forward(logits, yb)
        self._backward(self.loss.backward())
        self.optimizer.step(self.model.param_slots())
        return batch_loss, int((logits.argmax(axis=-1) == yb).sum())

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        patience: Optional[int] = None,
        recorder=None,
    ) -> TrainingHistory:
        """Mini-batch training; mirrors :class:`repro.nn.Trainer.fit`
        but with the distributed backward pass.

        ``recorder`` (an enabled :class:`repro.obs.FlightRecorder`) is
        sampled once per epoch, after the epoch metrics land — with
        the recorder's default index clock each timeline tick is one
        epoch, which is what the watchdog's ``train.loss`` drift
        rules evaluate against.

        Raises:
            ValueError: if ``x`` is empty — an empty dataset would
                otherwise surface as a ``ZeroDivisionError`` deep in
                the epoch averaging.
        """
        if x.shape[0] == 0:
            raise ValueError(
                "cannot fit on an empty dataset (x has 0 samples)"
            )
        history = TrainingHistory()
        n = x.shape[0]
        tel = self._telemetry
        best_acc = -np.inf
        best_weights = None
        stale = 0
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for step, start in enumerate(range(0, n, batch_size)):
                idx = order[start : start + batch_size]
                xb, yb = x[idx], y[idx]
                if tel.enabled:
                    with tel.tracer.span(
                        "train.step", epoch=epoch, step=step,
                        batch=int(len(idx)),
                    ):
                        batch_loss, batch_correct = self._train_step(xb, yb)
                    tel.metrics.counter("train.steps").inc()
                    tel.metrics.counter("train.examples").inc(float(len(idx)))
                    tel.metrics.gauge("train.loss").set(float(batch_loss))
                else:
                    batch_loss, batch_correct = self._train_step(xb, yb)
                epoch_loss += batch_loss * len(idx)
                correct += batch_correct
            history.train_loss.append(epoch_loss / n)
            history.train_accuracy.append(correct / n)
            if tel.enabled:
                tel.metrics.counter("train.epochs").inc()
                tel.metrics.gauge("train.epoch_loss").set(epoch_loss / n)
                tel.metrics.gauge("train.epoch_accuracy").set(correct / n)
            if x_val is not None and y_val is not None:
                val_loss, val_acc = self.evaluate(x_val, y_val)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
                if val_acc > best_acc:
                    best_acc = val_acc
                    best_weights = self.model.get_weights()
                    stale = 0
                else:
                    stale += 1
                if recorder is not None:
                    recorder.sample()
                if patience is not None and stale >= patience:
                    break
            elif recorder is not None:
                recorder.sample()
        if best_weights is not None:
            self.model.set_weights(best_weights)
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256):
        """``(mean_loss, accuracy)`` on the given data.

        Raises:
            ValueError: if ``x`` is empty — there is no mean loss or
                accuracy of zero samples.
        """
        n = x.shape[0]
        if n == 0:
            raise ValueError(
                "cannot evaluate on an empty dataset (x has 0 samples)"
            )
        total_loss = 0.0
        correct = 0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.model.forward(xb, training=False)
            total_loss += self.loss.forward(logits, yb) * len(xb)
            correct += int((logits.argmax(axis=-1) == yb).sum())
        return total_loss / n, correct / n
