"""Unit-to-node assignment strategies.

A :class:`Placement` maps every producer slot in the network — the
input grid cells plus every layer's output positions/units — to a
sensor node.  The strategies reproduce the paper's comparison:

- :func:`grid_correspondence_assignment` — the paper's heuristic:
  scale each layer's output grid onto the sensor grid so CNN links
  coincide with WSN links, and spread flat-layer units to equalize the
  number of units per node (Fig. 8 / Fig. 10(b)).
- :func:`centralized_assignment` — the "standard CNN" comparator:
  sensing stays at the sensors, every computation unit lives on one
  sink, so the sink's received traffic is the whole input (the peak
  the paper reports MicroDeep cutting to 13 % / by 40 %).
- :func:`round_robin_assignment`, :func:`random_assignment` —
  locality-free baselines for ablations.

Elementwise layers (activations, dropout) are always co-located with
their producing units — they are communication-free by construction —
regardless of strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.unitgraph import GridPos, LayerUnits, UnitGraph
from repro.wsn.topology import GridTopology

LayerSlot = Tuple[int, object]  # (layer index, grid position or unit index)


@dataclass
class Placement:
    """A complete unit-to-node mapping.

    Attributes:
        input_node: input grid cell -> node id (data origin).
        unit_node: (layer index, slot) -> node id.
    """

    input_node: Dict[GridPos, int]
    unit_node: Dict[LayerSlot, int] = field(default_factory=dict)

    def node_of_input(self, pos: GridPos) -> int:
        return self.input_node[pos]

    def node_of(self, layer_index: int, slot) -> int:
        return self.unit_node[(layer_index, slot)]

    def units_per_node(self) -> Dict[int, int]:
        """How many computation units each node hosts."""
        counts: Dict[int, int] = {}
        for node in self.unit_node.values():
            counts[node] = counts.get(node, 0) + 1
        return counts

    def max_units_per_node(self) -> int:
        counts = self.units_per_node()
        return max(counts.values(), default=0)


def _scale_to_grid(pos: GridPos, src_hw: GridPos, topology: GridTopology) -> int:
    """Nearest sensor node for a position of an ``src_hw`` grid."""
    y, x = pos
    h, w = src_hw
    row = 0 if h <= 1 else round(y * (topology.rows - 1) / (h - 1))
    col = 0 if w <= 1 else round(x * (topology.cols - 1) / (w - 1))
    return topology.node_at(int(row), int(col)).node_id


def _input_mapping(graph: UnitGraph, topology: GridTopology) -> Dict[GridPos, int]:
    """Each input cell is owned by the sensor that measures it (the
    nearest node on the scaled grid)."""
    h, w = graph.input_hw
    return {
        (y, x): _scale_to_grid((y, x), (h, w), topology)
        for y in range(h)
        for x in range(w)
    }


def _producer_node(
    placement: Placement,
    graph: UnitGraph,
    layer_index: int,
    slot,
) -> int:
    """Owner of a slot of the layer *feeding* ``layer_index``."""
    prev = layer_index - 1
    while prev >= 0 and graph.layers[prev].kind == "flatten":
        prev -= 1
    if prev < 0:
        return placement.input_node[slot]
    return placement.unit_node[(prev, slot)]


def _build(
    graph: UnitGraph,
    topology: GridTopology,
    place_spatial: Callable[[LayerUnits, GridPos], int],
    place_flat: Callable[[LayerUnits, int], int],
) -> Placement:
    """Shared walker: applies the strategy rules, co-locating
    elementwise layers with their producers."""
    placement = Placement(input_node=_input_mapping(graph, topology))
    for entry in graph.layers:
        if entry.kind == "flatten":
            continue
        elementwise = entry.layer.is_elementwise
        for slot in entry.output_positions():
            if elementwise:
                node = _producer_node(placement, graph, entry.index, slot)
            elif entry.kind == "spatial":
                node = place_spatial(entry, slot)
            else:
                node = place_flat(entry, slot)
            placement.unit_node[(entry.index, slot)] = node
    return placement


def grid_correspondence_assignment(
    graph: UnitGraph, topology: GridTopology
) -> Placement:
    """The paper's heuristic assignment (Fig. 8).

    Spatial units go to the node whose grid coordinates correspond to
    the unit's (scaled) position, so convolution inputs are owned by
    the same or neighbouring nodes.  Flat-layer units are dealt to the
    nodes with the fewest units so the per-node unit count stays
    equalized ("equalizing the number of units assigned to each
    sensor node").
    """
    counts = {node.node_id: 0 for node in topology}

    def place_spatial(entry: LayerUnits, pos: GridPos) -> int:
        node = _scale_to_grid(pos, entry.out_hw, topology)
        counts[node] += 1
        return node

    def place_flat(entry: LayerUnits, unit: int) -> int:
        node = min(sorted(counts), key=lambda n: counts[n])
        counts[node] += 1
        return node

    return _build(graph, topology, place_spatial, place_flat)


def centralized_assignment(
    graph: UnitGraph, topology: GridTopology, sink: Optional[int] = None
) -> Placement:
    """All computation on one sink node — the standard-CNN comparator.

    The default sink is the grid's central node.
    """
    if sink is None:
        sink = topology.node_at(topology.rows // 2, topology.cols // 2).node_id
    elif sink not in topology.nodes:
        raise KeyError(f"sink {sink} is not a node in the topology")
    return _build(
        graph,
        topology,
        place_spatial=lambda entry, pos: sink,
        place_flat=lambda entry, unit: sink,
    )


def round_robin_assignment(graph: UnitGraph, topology: GridTopology) -> Placement:
    """Deal every unit over nodes in id order, ignoring locality."""
    node_ids = sorted(topology.nodes)
    state = {"i": 0}

    def deal(entry, slot) -> int:
        node = node_ids[state["i"] % len(node_ids)]
        state["i"] += 1
        return node

    return _build(graph, topology, deal, deal)


def random_assignment(
    graph: UnitGraph, topology: GridTopology, rng: np.random.Generator
) -> Placement:
    """Uniformly random placement (the worst-locality baseline)."""
    node_ids = sorted(topology.nodes)

    def deal(entry, slot) -> int:
        return int(rng.choice(node_ids))

    return _build(graph, topology, deal, deal)
