"""MicroDeep: distributed CNNs on wireless sensor networks.

The paper's central mechanism (ref. [7], §IV.C): CNN units are
assigned to sensor nodes laid out on XY-coordinates; forward (and
backward) propagation is carried out by message passing between the
nodes, and weights are updated locally to avoid communication.

- :mod:`repro.core.unitgraph` -- extracts the per-layer unit structure
  (grids, channel counts, dependencies) from a :class:`repro.nn.Sequential`.
- :mod:`repro.core.assignment` -- unit-to-node placement strategies:
  the paper's grid-correspondence heuristic, the centralized
  "standard CNN" comparator, and round-robin/random baselines.
- :mod:`repro.core.costmodel` -- static per-node communication cost
  (received values per inference, Fig. 10's y-axis).
- :mod:`repro.core.executor` -- distributed forward execution over a
  :class:`repro.wsn.Network` with measured traffic and node-failure
  masking.
- :mod:`repro.core.compiled` -- steady-state fast path: placement +
  network schedule compiled to a flat ndarray program with one batched
  traffic-accounting update (event-driven path kept as parity oracle).
- :mod:`repro.core.training` -- exact vs. local (communication-free)
  distributed backpropagation.
"""

from repro.core.unitgraph import LayerUnits, UnitGraph
from repro.core.assignment import (
    Placement,
    centralized_assignment,
    grid_correspondence_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.core.costmodel import CommunicationCostModel, CostReport
from repro.core.compiled import (
    CompiledPlan,
    HopProgram,
    LayerMask,
    PlanNotCompilable,
    compile_plan,
)
from repro.core.executor import DistributedExecutor
from repro.core.training import MicroDeepTrainer
from repro.core.planner import (
    CollectionPlan,
    CollectionPlanner,
    Obstacle,
    PlanningError,
    SlotAssignment,
)

__all__ = [
    "CollectionPlanner",
    "CollectionPlan",
    "Obstacle",
    "PlanningError",
    "SlotAssignment",
    "UnitGraph",
    "LayerUnits",
    "Placement",
    "grid_correspondence_assignment",
    "centralized_assignment",
    "round_robin_assignment",
    "random_assignment",
    "CommunicationCostModel",
    "CostReport",
    "CompiledPlan",
    "HopProgram",
    "LayerMask",
    "PlanNotCompilable",
    "compile_plan",
    "DistributedExecutor",
    "MicroDeepTrainer",
]
