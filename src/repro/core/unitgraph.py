"""Unit-graph extraction from a built Sequential model.

MicroDeep treats the CNN as a graph of *units*.  For spatial layers
(conv, pool, elementwise) the natural granularity is one unit per
output grid position — the layer's channels at a position are
co-located, because a node that computes one filter's output at (y, x)
already holds every input needed for all filters there.  For flat
layers (dense) each output neuron is a unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.flatten import Flatten
from repro.nn.model import Sequential

GridPos = Tuple[int, int]


@dataclass
class LayerUnits:
    """Unit structure of one layer.

    Attributes:
        index: layer position in the model.
        kind: ``"spatial"``, ``"flat"``, or ``"flatten"`` (the
            bridge layer, which moves no data by itself).
        in_hw / out_hw: grids for spatial layers (None for flat).
        in_values / out_values: scalars held per input/output position
            (spatial: channel count) or per unit (flat: 1).
        n_units: flat-layer output units (None for spatial).
        in_units: flat-layer input width (None for spatial).
        deps: spatial dependency map (output pos -> input positions);
            None for flat layers, which depend on everything.
    """

    index: int
    layer: Layer
    kind: str
    in_hw: Optional[GridPos]
    out_hw: Optional[GridPos]
    in_values: int
    out_values: int
    n_units: Optional[int] = None
    in_units: Optional[int] = None
    deps: Optional[Dict[GridPos, List[GridPos]]] = None

    def output_positions(self) -> List:
        """All producer slots of this layer (grid positions or unit
        indices)."""
        if self.kind == "flat":
            return list(range(self.n_units))
        h, w = self.out_hw
        return [(y, x) for y in range(h) for x in range(w)]


class UnitGraph:
    """Per-layer unit structure of a built model.

    Args:
        model: a built :class:`Sequential` whose input is spatial
            ``(C, H, W)``.

    Raises:
        ValueError: if the model is unbuilt or its input is not a 2-D
            grid.
    """

    def __init__(self, model: Sequential) -> None:
        if not model.built:
            raise ValueError("model must be built before extracting units")
        if len(model.input_shape) != 3:
            raise ValueError(
                f"MicroDeep expects (C, H, W) input, got {model.input_shape}"
            )
        self.model = model
        self.input_shape = model.input_shape
        self.input_hw: GridPos = (model.input_shape[1], model.input_shape[2])
        self.input_values = model.input_shape[0]
        self.layers: List[LayerUnits] = []
        self._extract()

    def _extract(self) -> None:
        shape = self.input_shape
        for idx, layer in enumerate(self.model.layers):
            out_shape = layer.output_shape(shape)
            if isinstance(layer, Flatten):
                entry = LayerUnits(
                    index=idx,
                    layer=layer,
                    kind="flatten",
                    in_hw=(shape[1], shape[2]) if len(shape) == 3 else None,
                    out_hw=None,
                    in_values=shape[0] if len(shape) == 3 else 1,
                    out_values=1,
                    in_units=int(np.prod(shape)),
                )
            elif layer.is_spatial and len(shape) == 3:
                in_hw = (shape[1], shape[2])
                out_hw = (out_shape[1], out_shape[2])
                entry = LayerUnits(
                    index=idx,
                    layer=layer,
                    kind="spatial",
                    in_hw=in_hw,
                    out_hw=out_hw,
                    in_values=shape[0],
                    out_values=out_shape[0],
                    deps=layer.spatial_dependencies(in_hw),
                )
            elif len(shape) == 1:
                entry = LayerUnits(
                    index=idx,
                    layer=layer,
                    kind="flat",
                    in_hw=None,
                    out_hw=None,
                    in_values=1,
                    out_values=1,
                    n_units=out_shape[0],
                    in_units=shape[0],
                )
            else:
                raise ValueError(
                    f"layer {idx} ({type(layer).__name__}) does not fit the "
                    "spatial -> flatten -> flat structure MicroDeep expects"
                )
            self.layers.append(entry)
            shape = out_shape

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def spatial_layers(self) -> List[LayerUnits]:
        return [l for l in self.layers if l.kind == "spatial"]

    def flat_layers(self) -> List[LayerUnits]:
        return [l for l in self.layers if l.kind == "flat"]

    def total_units(self) -> int:
        """Total assignable units across all layers."""
        total = 0
        for entry in self.layers:
            if entry.kind == "spatial":
                h, w = entry.out_hw
                total += h * w
            elif entry.kind == "flat":
                total += entry.n_units
        return total
