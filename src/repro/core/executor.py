"""Distributed forward execution.

The executor runs the CNN's real arithmetic (distribution does not
change the math) while replaying the placement's cross-node transfers
over a :class:`repro.wsn.Network`, so per-node traffic is *measured*,
not just modelled.  It also supports node-failure masking: units
hosted on dead nodes produce zeros, the behaviour the resilience
experiment (E8) quantifies.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Set

import numpy as np

from repro.core.assignment import Placement
from repro.core.costmodel import CommunicationCostModel
from repro.core.unitgraph import UnitGraph
from repro.nn.model import Sequential
from repro.wsn.network import Message, Network


class DistributedExecutor:
    """Executes a placed CNN over a sensor network.

    Args:
        model: built Sequential model.
        graph: its unit graph.
        placement: unit-to-node mapping.
        network: the WSN network layer carrying the messages.
    """

    def __init__(
        self,
        model: Sequential,
        graph: UnitGraph,
        placement: Placement,
        network: Network,
    ) -> None:
        if graph.model is not model:
            raise ValueError("graph was not extracted from this model")
        self.model = model
        self.graph = graph
        self.placement = placement
        self.network = network
        self._cost_model = CommunicationCostModel(graph, network.topology)
        self._transfer_list = None

    def _transfers(self):
        if self._transfer_list is None:
            self._transfer_list = self._cost_model.transfers(self.placement)
        return self._transfer_list

    def forward(
        self, x: np.ndarray, count_traffic: bool = True
    ) -> np.ndarray:
        """Distributed forward pass.

        When ``count_traffic`` is set, every cross-node transfer of one
        inference is sent through the network layer **once per batch
        element** (each inference pays its own traffic).

        Returns:
            The model logits (identical to the centralized forward).
        """
        if count_traffic:
            batch = x.shape[0]
            for layer_index, src, dst, n_values in self._transfers():
                for __ in range(batch):
                    self.network.unicast(
                        Message(src=src, dst=dst, n_values=n_values,
                                kind=f"layer{layer_index}")
                    )
        return self.model.forward(x, training=False)

    def predict(self, x: np.ndarray, count_traffic: bool = False) -> np.ndarray:
        """Class predictions from the distributed forward pass."""
        return self.forward(x, count_traffic=count_traffic).argmax(axis=-1)

    def measured_cost_report(self):
        """Static cost for comparison with the measured network stats."""
        return self._cost_model.inference_cost(self.placement)

    # -- fault injection ----------------------------------------------------
    def forward_hooked(
        self,
        x: np.ndarray,
        input_hook: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        layer_hook: Optional[Callable] = None,
    ) -> np.ndarray:
        """Layer-by-layer forward pass with substitution hooks.

        This is the executor-side choke point the fault layer plugs
        into: ``input_hook(x)`` may rewrite the (copied) input field,
        and ``layer_hook(entry, out)`` runs after every unit-graph
        layer and may rewrite (or replace) its activations — e.g. to
        zero dead units or substitute stale values.  Flatten layers,
        which move no data, are not hooked.
        """
        x = np.array(x, copy=True)
        if input_hook is not None:
            x = input_hook(x)
        out = x
        for entry in self.graph.layers:
            out = entry.layer.forward(out, training=False)
            if layer_hook is not None and entry.kind != "flatten":
                replacement = layer_hook(entry, out)
                if replacement is not None:
                    out = replacement
        return out

    def forward_masked(
        self, x: np.ndarray, dead_nodes: Iterable[int]
    ) -> np.ndarray:
        """Forward pass with the given nodes failed.

        Input cells measured by dead sensors read zero, and every unit
        hosted on a dead node outputs zero — its value never reaches
        the downstream consumers.  This is the paper's §V scenario:
        "a part of tiny IoT devices may be broken".
        """
        dead: Set[int] = set(dead_nodes)
        if not dead:
            return self.model.forward(x, training=False)

        def input_hook(arr: np.ndarray) -> np.ndarray:
            for (iy, ix), node in self.placement.input_node.items():
                if node in dead:
                    arr[:, :, iy, ix] = 0.0
            return arr

        def layer_hook(entry, out: np.ndarray):
            if entry.kind == "spatial":
                for pos in entry.output_positions():
                    if self.placement.node_of(entry.index, pos) in dead:
                        out[:, :, pos[0], pos[1]] = 0.0
            elif entry.kind == "flat":
                for unit in entry.output_positions():
                    if self.placement.node_of(entry.index, unit) in dead:
                        out[:, unit] = 0.0
            return out

        return self.forward_hooked(x, input_hook=input_hook,
                                   layer_hook=layer_hook)

    def accuracy_under_faults(
        self,
        x: np.ndarray,
        y: np.ndarray,
        dead_nodes: Iterable[int],
    ) -> float:
        """Classification accuracy with the given nodes failed."""
        preds = self.forward_masked(x, dead_nodes).argmax(axis=-1)
        return float((preds == np.asarray(y)).mean())
