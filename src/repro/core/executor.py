"""Distributed forward execution.

The executor runs the CNN's real arithmetic (distribution does not
change the math) while replaying the placement's cross-node transfers
over a :class:`repro.wsn.Network`, so per-node traffic is *measured*,
not just modelled.  It also supports node-failure masking: units
hosted on dead nodes produce zeros, the behaviour the resilience
experiment (E8) quantifies.

Hot paths are vectorized (see README "Performance"):

- in steady state (ideal links, every node up, no fault adapter) the
  whole forward is served by a **compiled plan**
  (:mod:`repro.core.compiled`): precomputed routes folded into one
  batched traffic-accounting update, plus the unchanged layer
  arithmetic — no per-transfer Python, no route lookups, no event
  loop.  The ``plan=`` switch controls it (``"auto"`` by default);
  the event-driven path below stays as the parity oracle and is
  re-selected automatically the moment a fault adapter, lossy link
  model, or active brownout appears;
- the event-driven traffic replay aggregates the transfer list per
  ``(layer, src, dst, n_values)`` and sends each group through
  :meth:`repro.wsn.Network.unicast_bulk` once, instead of one Python
  ``unicast`` per transfer per batch element;
- failure masking zeroes each layer with one fancy-indexed assignment
  built from precomputed per-node index maps, instead of a Python loop
  over positions.

The pre-optimization reference paths (``forward(per_element=True)``,
:meth:`forward_masked_reference`) stay callable so the parity tests can
prove the fast paths behavior-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.assignment import Placement
from repro.core.compiled import CompiledPlan, PlanNotCompilable, compile_plan
from repro.core.compiled.compiler import plan_blocked
from repro.core.costmodel import CommunicationCostModel
from repro.core.unitgraph import UnitGraph
from repro.nn.model import Sequential
from repro.wsn.network import Message, Network

#: node -> (row indices, col indices) for spatial layers, or
#: node -> unit indices for flat layers.
SpatialIndex = Dict[int, Tuple[np.ndarray, np.ndarray]]
FlatIndex = Dict[int, np.ndarray]


class DistributedExecutor:
    """Executes a placed CNN over a sensor network.

    Args:
        model: built Sequential model.
        graph: its unit graph.
        placement: unit-to-node mapping.
        network: the WSN network layer carrying the messages.
    """

    def __init__(
        self,
        model: Sequential,
        graph: UnitGraph,
        placement: Placement,
        network: Network,
        telemetry=None,
        fault_adapter=None,
    ) -> None:
        if graph.model is not model:
            raise ValueError("graph was not extracted from this model")
        self.model = model
        self.graph = graph
        self.placement = placement
        self.network = network
        #: When a fault adapter is attached, compiled plans are unsound
        #: (the adapter rewrites activations) and :meth:`forward` always
        #: takes the event-driven path.
        self.fault_adapter = fault_adapter
        self._cost_model = CommunicationCostModel(graph, network.topology)
        self._transfer_list = None
        self._aggregated_list = None
        self._owner_index = None
        self._dead_index_cache: Dict[frozenset, list] = {}
        self._compiled_plan: Optional[CompiledPlan] = None
        self._plan_uncompilable: Optional[str] = None
        if telemetry is None:
            from repro.obs.runtime import current

            telemetry = current()
        self._telemetry = telemetry

    def _transfers(self):
        if self._transfer_list is None:
            self._transfer_list = self._cost_model.transfers(self.placement)
        return self._transfer_list

    def _aggregated_transfers(self):
        """Transfer list grouped by ``(layer, src, dst, n_values)``.

        Returns ``[(key, multiplicity), ...]`` in first-occurrence
        order, which keeps the replayed layer sequence non-decreasing
        exactly like the flat list.
        """
        if self._aggregated_list is None:
            counts: Dict[Tuple[int, int, int, int], int] = {}
            order: List[Tuple[int, int, int, int]] = []
            for key in self._transfers():
                if key in counts:
                    counts[key] += 1
                else:
                    counts[key] = 1
                    order.append(key)
            self._aggregated_list = [(key, counts[key]) for key in order]
        return self._aggregated_list

    def forward(
        self,
        x: np.ndarray,
        count_traffic: bool = True,
        per_element: bool = False,
        plan="auto",
    ) -> np.ndarray:
        """Distributed forward pass.

        When ``count_traffic`` is set, every cross-node transfer of one
        inference is accounted through the network layer **once per
        batch element** (each inference pays its own traffic).

        ``plan`` selects the execution strategy:

        - ``"auto"`` (default): compile the placement + schedule into a
          :class:`repro.core.compiled.CompiledPlan` on first use and
          serve the forward from it — unless a fault adapter, lossy
          link model, installed :class:`~repro.wsn.network.LinkFaultModel`,
          or down node (brownout/crash) makes the static schedule
          unsound, in which case the call falls back to the
          event-driven path below (and retries compilation once the
          condition clears).
        - a :class:`CompiledPlan` instance: use that plan (it must have
          been compiled against this executor's network), with the same
          soundness re-check and fallback.
        - ``None``: always take the event-driven path — the parity
          oracle the differential suite pins the compiled path against.

        The event-driven path aggregates identical transfers and
        replays each group with one bulk send; ``per_element=True``
        (implies the event path) selects the original
        one-``unicast``-per-transfer-per-element compatibility loop
        (same traffic stats, Python-interpreter bound).

        Returns:
            The model logits (identical to the centralized forward).
        """
        if plan is not None and not per_element:
            blocked = plan_blocked(self)
            if blocked is None:
                if isinstance(plan, CompiledPlan):
                    if plan.network is not self.network:
                        raise ValueError(
                            "plan was compiled against a different network"
                        )
                    compiled = plan
                else:
                    compiled = self._ensure_plan()
                if compiled is not None:
                    return self._forward_compiled(compiled, x, count_traffic)
                self._note_fallback(self._plan_uncompilable or "uncompilable")
            else:
                self._note_fallback(blocked[0])
        if count_traffic:
            self.replay_traffic(x.shape[0], per_element=per_element)
        tel = self._telemetry
        if not tel.enabled:
            return self.model.forward(x, training=False)
        return self._forward_traced(x, tel)

    # -- compiled fast path --------------------------------------------------
    def compiled_plan(self) -> CompiledPlan:
        """The executor's compiled plan, building it if needed.

        Raises:
            PlanNotCompilable: when the current state cannot be served
                by a static plan (``forward(plan="auto")`` swallows
                this and falls back; this accessor surfaces it).
        """
        blocked = plan_blocked(self)
        if blocked is not None:
            raise PlanNotCompilable(blocked[0], blocked[1])
        compiled = self._ensure_plan()
        if compiled is None:
            raise PlanNotCompilable(self._plan_uncompilable or "uncompilable")
        return compiled

    def _ensure_plan(self) -> Optional[CompiledPlan]:
        """Memoized compilation.  A static failure (e.g. an unroutable
        transfer under ideal, all-alive conditions) cannot heal, so it
        is cached and compilation is not retried."""
        if self._compiled_plan is not None:
            return self._compiled_plan
        if self._plan_uncompilable is not None:
            return None
        try:
            self._compiled_plan = compile_plan(self)
        except PlanNotCompilable as exc:
            self._plan_uncompilable = exc.reason
            return None
        return self._compiled_plan

    def _forward_compiled(
        self, compiled: CompiledPlan, x: np.ndarray, count_traffic: bool
    ) -> np.ndarray:
        tel = self._telemetry
        if not tel.enabled:
            return compiled.run(x, count_traffic=count_traffic)
        hops = compiled.hops
        with tel.tracer.span(
            "exec.plan",
            batch=int(x.shape[0]),
            links=hops.n_links,
            transfer_groups=hops.n_transfer_groups,
        ):
            tel.metrics.counter("exec.plan_runs").inc()
            return compiled.run(x, count_traffic=count_traffic)

    def _note_fallback(self, reason: str) -> None:
        """Record that a planned forward was served by the event-driven
        oracle instead.  The ``exec.plan-fallback`` instant fires only
        when a working plan existed before (steady state lost), so
        traces distinguish "never compiled" from "degraded"."""
        tel = self._telemetry
        if not tel.enabled:
            return
        tel.metrics.counter("exec.plan_fallbacks", reason=reason).inc()
        if self._compiled_plan is not None:
            tel.tracer.instant("exec.plan-fallback", reason=reason)

    def _forward_traced(self, x: np.ndarray, tel) -> np.ndarray:
        """The traced twin of ``model.forward``: same layer sequence
        (so logits are byte-identical), with one ``exec.layer`` span
        per unit-graph layer nested in an ``exec.forward`` span."""
        with tel.tracer.span("exec.forward", batch=int(x.shape[0])):
            out = x
            for entry in self.graph.layers:
                with tel.tracer.span(
                    "exec.layer", layer=entry.index, kind=entry.kind
                ):
                    out = entry.layer.forward(out, training=False)
            return out

    def replay_traffic(self, batch: int, per_element: bool = False) -> None:
        """Account ``batch`` inferences' cross-node transfers on the
        network layer (the traffic half of :meth:`forward`, exposed so
        the perf harness can benchmark the replay in isolation)."""
        tel = self._telemetry
        if tel.enabled:
            with tel.tracer.span("exec.replay", batch=batch):
                self._replay_traffic_inner(batch, per_element)
        else:
            self._replay_traffic_inner(batch, per_element)

    def _replay_traffic_inner(self, batch: int, per_element: bool) -> None:
        if per_element:
            for layer_index, src, dst, n_values in self._transfers():
                for __ in range(batch):
                    self.network.unicast(
                        Message(src=src, dst=dst, n_values=n_values,
                                kind=f"layer{layer_index}")
                    )
        else:
            for key, multiplicity in self._aggregated_transfers():
                layer_index, src, dst, n_values = key
                self.network.unicast_bulk(
                    Message(src=src, dst=dst, n_values=n_values,
                            kind=f"layer{layer_index}"),
                    copies=batch * multiplicity,
                )

    def predict(self, x: np.ndarray, count_traffic: bool = False) -> np.ndarray:
        """Class predictions from the distributed forward pass."""
        return self.forward(x, count_traffic=count_traffic).argmax(axis=-1)

    def measured_cost_report(self):
        """Static cost for comparison with the measured network stats."""
        return self._cost_model.inference_cost(self.placement)

    # -- fault injection ----------------------------------------------------
    def forward_hooked(
        self,
        x: np.ndarray,
        input_hook: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        layer_hook: Optional[Callable] = None,
    ) -> np.ndarray:
        """Layer-by-layer forward pass with substitution hooks.

        This is the executor-side choke point the fault layer plugs
        into: ``input_hook(x)`` may rewrite the input field (the
        executor hands it a private copy), and ``layer_hook(entry,
        out)`` runs after every unit-graph layer and may rewrite (or
        replace) its activations — e.g. to zero dead units or
        substitute stale values.  Flatten layers, which move no data,
        are not hooked.  Without an ``input_hook`` the input is not
        copied: every layer allocates its own output, so the caller's
        array is never written to.
        """
        if input_hook is not None:
            x = input_hook(np.array(x, copy=True))
        out = x
        for entry in self.graph.layers:
            out = entry.layer.forward(out, training=False)
            if layer_hook is not None and entry.kind != "flatten":
                replacement = layer_hook(entry, out)
                if replacement is not None:
                    out = replacement
        return out

    def _owner_indices(self):
        """Precomputed node -> output-index arrays, one map per layer.

        Element 0 is the input grid's map; element ``1 + i`` belongs to
        ``graph.layers[i]`` (None for flatten layers).  Spatial maps
        hold ``(rows, cols)`` index-array pairs, flat maps hold unit
        index arrays — ready for one fancy-indexed zeroing per layer.
        """
        if self._owner_index is None:
            maps: List[Optional[dict]] = []
            input_pos: Dict[int, List] = {}
            for pos, node in self.placement.input_node.items():
                input_pos.setdefault(node, []).append(pos)
            maps.append({
                node: (
                    np.array([p[0] for p in sorted(pos)], dtype=np.intp),
                    np.array([p[1] for p in sorted(pos)], dtype=np.intp),
                )
                for node, pos in input_pos.items()
            })
            for entry in self.graph.layers:
                if entry.kind == "flatten":
                    maps.append(None)
                    continue
                owned: Dict[int, List] = {}
                for pos in entry.output_positions():
                    node = self.placement.node_of(entry.index, pos)
                    owned.setdefault(node, []).append(pos)
                if entry.kind == "spatial":
                    maps.append({
                        node: (
                            np.array([p[0] for p in pos], dtype=np.intp),
                            np.array([p[1] for p in pos], dtype=np.intp),
                        )
                        for node, pos in owned.items()
                    })
                else:
                    maps.append({
                        node: np.array(pos, dtype=np.intp)
                        for node, pos in owned.items()
                    })
            self._owner_index = maps
        return self._owner_index

    @staticmethod
    def _dead_spatial_index(
        index_map: SpatialIndex, dead: Set[int]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        picks = [index_map[node] for node in sorted(dead) if node in index_map]
        if not picks:
            return None
        return (
            np.concatenate([p[0] for p in picks]),
            np.concatenate([p[1] for p in picks]),
        )

    def forward_masked(
        self, x: np.ndarray, dead_nodes: Iterable[int]
    ) -> np.ndarray:
        """Forward pass with the given nodes failed.

        Input cells measured by dead sensors read zero, and every unit
        hosted on a dead node outputs zero — its value never reaches
        the downstream consumers.  This is the paper's §V scenario:
        "a part of tiny IoT devices may be broken".

        Masking is vectorized: the dead positions of each layer are
        gathered from precomputed per-node index maps and zeroed with
        one assignment (:meth:`forward_masked_reference` is the
        per-position original, kept for the parity tests).
        """
        dead: Set[int] = set(dead_nodes)
        if not dead:
            return self.model.forward(x, training=False)
        tel = self._telemetry
        if tel.enabled:
            tel.tracer.instant(
                "exec.dead_set", nodes=sorted(dead), batch=int(x.shape[0])
            )
        input_index, layer_spans = self._dead_indices(frozenset(dead))
        x = np.array(x, copy=True)
        if input_index is not None:
            x[:, :, input_index[0], input_index[1]] = 0.0
        out = x
        for entry, span in zip(self.graph.layers, layer_spans):
            out = entry.layer.forward(out, training=False)
            if span is None:
                continue
            if entry.kind == "spatial":
                out[:, :, span[0], span[1]] = 0.0
            else:
                out[:, span] = 0.0
        return out

    def _dead_indices(self, dead: frozenset):
        """Concatenated dead-position indices, memoized per dead set
        (a failure scenario is typically evaluated over many batches,
        so the concatenation is paid once)."""
        cached = self._dead_index_cache.get(dead)
        if cached is not None:
            return cached
        maps = self._owner_indices()
        input_index = self._dead_spatial_index(maps[0], dead)
        layer_spans = []
        for entry, index_map in zip(self.graph.layers, maps[1:]):
            if index_map is None:
                layer_spans.append(None)
            elif entry.kind == "spatial":
                layer_spans.append(self._dead_spatial_index(index_map, dead))
            else:
                picks = [index_map[n] for n in sorted(dead) if n in index_map]
                layer_spans.append(
                    np.concatenate(picks) if picks else None
                )
        if len(self._dead_index_cache) >= 64:
            self._dead_index_cache.clear()
        cached = (input_index, layer_spans)
        self._dead_index_cache[dead] = cached
        return cached

    def forward_masked_reference(
        self, x: np.ndarray, dead_nodes: Iterable[int]
    ) -> np.ndarray:
        """Pre-optimization :meth:`forward_masked`: hook-based, one
        Python iteration per unit position.  Kept callable so the test
        suite can prove the vectorized path byte-identical."""
        dead: Set[int] = set(dead_nodes)
        if not dead:
            return self.model.forward(x, training=False)

        def input_hook(arr: np.ndarray) -> np.ndarray:
            for (iy, ix), node in self.placement.input_node.items():
                if node in dead:
                    arr[:, :, iy, ix] = 0.0
            return arr

        def layer_hook(entry, out: np.ndarray):
            if entry.kind == "spatial":
                for pos in entry.output_positions():
                    if self.placement.node_of(entry.index, pos) in dead:
                        out[:, :, pos[0], pos[1]] = 0.0
            elif entry.kind == "flat":
                for unit in entry.output_positions():
                    if self.placement.node_of(entry.index, unit) in dead:
                        out[:, unit] = 0.0
            return out

        return self.forward_hooked(x, input_hook=input_hook,
                                   layer_hook=layer_hook)

    def accuracy_under_faults(
        self,
        x: np.ndarray,
        y: np.ndarray,
        dead_nodes: Iterable[int],
    ) -> float:
        """Classification accuracy with the given nodes failed."""
        preds = self.forward_masked(x, dead_nodes).argmax(axis=-1)
        return float((preds == np.asarray(y)).mean())
