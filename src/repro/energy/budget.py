"""Radio energy models and the paper's backscatter-vs-active claim.

Section I of the paper: conventional wireless spends tens to hundreds
of mW on the power amplifier, BLE is on the order of mW, and ambient
backscatter cuts this to ~10 uW — about 1/10,000.  These profiles make
that claim checkable (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class RadioProfile:
    """Power and rate characteristics of one radio technology."""

    name: str
    tx_power_w: float       # power drawn while transmitting
    rx_power_w: float       # power drawn while receiving/listening
    sleep_power_w: float    # deep-sleep floor
    bitrate_bps: float      # effective payload bitrate


#: Representative commercial profiles (orders of magnitude from the
#: paper and the backscatter literature it cites).
RADIO_PROFILES: Dict[str, RadioProfile] = {
    "wifi": RadioProfile("wifi", tx_power_w=300e-3, rx_power_w=100e-3,
                         sleep_power_w=10e-6, bitrate_bps=20e6),
    "ble": RadioProfile("ble", tx_power_w=10e-3, rx_power_w=10e-3,
                        sleep_power_w=1e-6, bitrate_bps=1e6),
    "zigbee": RadioProfile("zigbee", tx_power_w=60e-3, rx_power_w=60e-3,
                           sleep_power_w=2e-6, bitrate_bps=250e3),
    "lora": RadioProfile("lora", tx_power_w=120e-3, rx_power_w=12e-3,
                         sleep_power_w=1.5e-6, bitrate_bps=5.5e3),
    "backscatter": RadioProfile("backscatter", tx_power_w=10e-6,
                                rx_power_w=10e-6, sleep_power_w=0.1e-6,
                                bitrate_bps=1e6),
}


class RadioEnergyModel:
    """Energy accounting for a radio profile."""

    def __init__(self, profile: RadioProfile) -> None:
        self.profile = profile

    @classmethod
    def named(cls, name: str) -> "RadioEnergyModel":
        """Construct from a :data:`RADIO_PROFILES` key."""
        try:
            return cls(RADIO_PROFILES[name])
        except KeyError:
            raise KeyError(
                f"unknown radio {name!r}; valid: {sorted(RADIO_PROFILES)}"
            ) from None

    def tx_energy_j(self, payload_bits: int) -> float:
        """Energy to transmit a payload at the profile bitrate."""
        if payload_bits < 0:
            raise ValueError(f"payload_bits must be non-negative, got {payload_bits}")
        airtime = payload_bits / self.profile.bitrate_bps
        return self.profile.tx_power_w * airtime

    def rx_energy_j(self, payload_bits: int) -> float:
        """Energy to receive a payload at the profile bitrate."""
        airtime = payload_bits / self.profile.bitrate_bps
        return self.profile.rx_power_w * airtime

    def duty_cycle_power_w(
        self, tx_fraction: float, rx_fraction: float
    ) -> float:
        """Average power for a duty cycle split between TX, RX, sleep."""
        if tx_fraction < 0 or rx_fraction < 0 or tx_fraction + rx_fraction > 1:
            raise ValueError("fractions must be non-negative and sum to <= 1")
        sleep = 1.0 - tx_fraction - rx_fraction
        p = self.profile
        return (
            tx_fraction * p.tx_power_w
            + rx_fraction * p.rx_power_w
            + sleep * p.sleep_power_w
        )

    def sustainable_duty_cycle(self, harvested_power_w: float) -> float:
        """Largest TX duty cycle (0..1) a harvest budget can sustain,
        with the remainder spent asleep."""
        p = self.profile
        if harvested_power_w <= p.sleep_power_w:
            return 0.0
        cycle = (harvested_power_w - p.sleep_power_w) / (
            p.tx_power_w - p.sleep_power_w
        )
        return min(1.0, cycle)


def backscatter_vs_active_ratio(active: str = "wifi") -> float:
    """TX-power ratio active-radio / backscatter (the paper's ~10,000x)."""
    return (
        RADIO_PROFILES[active].tx_power_w
        / RADIO_PROFILES["backscatter"].tx_power_w
    )
