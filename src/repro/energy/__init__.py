"""Energy harvesting and radio power budgets.

Models the zero-energy device substrate of the paper: harvesters
(RF, solar, thermal, vibration), a capacitor energy store,
harvesting-trace generation, radio energy models (conventional Wi-Fi /
BLE / ZigBee versus ambient backscatter at ~10 uW, the paper's
1/10,000 claim), and an intermittent-computing power manager that
decides when a harvested device can sense/compute/transmit.
"""

from repro.energy.harvesters import (
    Harvester,
    PiecewiseTraceHarvester,
    RFHarvester,
    SolarHarvester,
    ThermalHarvester,
    VibrationHarvester,
)
from repro.energy.capacitor import Capacitor
from repro.energy.traces import HarvestingTrace, diurnal_solar_trace, rf_field_trace
from repro.energy.budget import (
    RADIO_PROFILES,
    RadioEnergyModel,
    backscatter_vs_active_ratio,
)
from repro.energy.manager import IntermittentPowerManager, TaskSpec
from repro.energy.transducers import (
    BimetallicSwitch,
    HydrogelResonator,
    MechanicalChopper,
    SpringAccelerometer,
    Transducer,
    ZeroEnergySensorReadout,
    chopper_rate_to_flow,
)

__all__ = [
    "Transducer",
    "BimetallicSwitch",
    "HydrogelResonator",
    "SpringAccelerometer",
    "MechanicalChopper",
    "ZeroEnergySensorReadout",
    "chopper_rate_to_flow",
    "Harvester",
    "PiecewiseTraceHarvester",
    "RFHarvester",
    "SolarHarvester",
    "ThermalHarvester",
    "VibrationHarvester",
    "Capacitor",
    "HarvestingTrace",
    "diurnal_solar_trace",
    "rf_field_trace",
    "RADIO_PROFILES",
    "RadioEnergyModel",
    "backscatter_vs_active_ratio",
    "IntermittentPowerManager",
    "TaskSpec",
]
