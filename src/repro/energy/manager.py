"""Intermittent-computing power manager.

Drives a capacitor-backed zero-energy device through a harvesting
trace: the device wakes when the capacitor passes the turn-on
threshold, then runs tasks (sense / compute / transmit) while energy
allows, and dies at brown-out until re-charged.  This is the substrate
for resilience experiment E8 and the zero-energy feasibility numbers
in E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.energy.capacitor import Capacitor
from repro.energy.traces import HarvestingTrace


@dataclass(frozen=True)
class TaskSpec:
    """An atomic task the device runs each wake cycle."""

    name: str
    energy_j: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.energy_j < 0 or self.duration_s <= 0:
            raise ValueError(
                f"task {self.name!r} needs non-negative energy and positive duration"
            )


@dataclass
class RunReport:
    """Outcome of driving a device through a trace."""

    completed: Dict[str, int] = field(default_factory=dict)
    aborted: Dict[str, int] = field(default_factory=dict)
    on_time_s: float = 0.0
    off_time_s: float = 0.0
    brown_outs: int = 0

    @property
    def availability(self) -> float:
        total = self.on_time_s + self.off_time_s
        return self.on_time_s / total if total else 0.0

    def completions(self, name: str) -> int:
        return self.completed.get(name, 0)


class IntermittentPowerManager:
    """Executes a cyclic task list on a harvested device.

    Each simulation step integrates harvest into the capacitor, then —
    if the device is on — attempts the next task in round-robin order.
    A task whose energy cannot be drawn atomically is aborted (counted)
    and the device turns off until the turn-on threshold is re-reached,
    modelling a power-failure-and-checkpoint cycle.
    """

    def __init__(
        self,
        capacitor: Capacitor,
        tasks: Sequence[TaskSpec],
        name: str = "device",
        telemetry=None,
    ) -> None:
        if not tasks:
            raise ValueError("need at least one task")
        self.capacitor = capacitor
        self.tasks = list(tasks)
        self.name = str(name)
        if telemetry is None:
            from repro.obs.runtime import current

            telemetry = current()
        self._telemetry = telemetry

    def run(self, trace: HarvestingTrace) -> RunReport:
        """Drive the device through the harvesting trace."""
        report = RunReport()
        on = self.capacitor.can_turn_on
        task_idx = 0
        times = trace.times
        powers = trace.powers
        for i in range(len(times) - 1):
            dt = times[i + 1] - times[i]
            self.capacitor.harvest(powers[i] * dt)
            if not on:
                if self.capacitor.can_turn_on:
                    on = True
                else:
                    report.off_time_s += dt
                    continue
            # Device is on: attempt tasks that fit in this step.
            budget = dt
            while budget > 0 and on:
                task = self.tasks[task_idx % len(self.tasks)]
                if task.duration_s > budget:
                    break
                if self.capacitor.draw(task.energy_j):
                    report.completed[task.name] = (
                        report.completed.get(task.name, 0) + 1
                    )
                    task_idx += 1
                    budget -= task.duration_s
                else:
                    report.aborted[task.name] = report.aborted.get(task.name, 0) + 1
                    report.brown_outs += 1
                    on = False
                    if self._telemetry.enabled:
                        self._telemetry.tracer.instant(
                            "energy.brownout", device=self.name, task=task.name
                        )
            report.on_time_s += dt if on else (dt - budget)
            if not on:
                report.off_time_s += budget
        if self._telemetry.enabled:
            self._report_metrics(report, trace)
        return report

    def _report_metrics(self, report: RunReport, trace: HarvestingTrace) -> None:
        """Publish one run's energy accounting (off the step loop, so
        the untraced path pays nothing)."""
        times = np.asarray(trace.times, dtype=float)
        powers = np.asarray(trace.powers, dtype=float)
        harvested = float(np.sum(powers[:-1] * np.diff(times)))
        by_name = {task.name: task for task in self.tasks}
        drawn = sum(
            by_name[name].energy_j * count
            for name, count in report.completed.items()
            if name in by_name
        )
        metrics = self._telemetry.metrics
        metrics.counter("energy.harvested_j", device=self.name).inc(harvested)
        metrics.counter("energy.drawn_j", device=self.name).inc(drawn)
        metrics.counter("energy.brownouts", device=self.name).inc(
            report.brown_outs
        )
        for task_name, count in report.completed.items():
            metrics.counter(
                "energy.tasks_completed", device=self.name, task=task_name
            ).inc(count)
        metrics.gauge("energy.stored_j", device=self.name).set(
            self.capacitor.energy_j
        )
