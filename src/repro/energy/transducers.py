"""Zero-energy sensing transducers (§III.A Fig. 2(b), §III.C).

The paper's battery-less sensing idea: a physical quantity changes the
tag's antenna impedance directly — no ADC, no MCU — and the change is
read out by observing the backscattered signal.

- *"we may be able to translate change of temperature into the change
  of antenna impedance by using a bimetallic switch which changes its
  state (ON/OFF) according to the ambient temperature"* —
  :class:`BimetallicSwitch`.
- *"Stimuli-responsive hydrogels exhibiting physical changes in
  response to environmental conditions ... a structure that changes
  the shape and size according to the temperature change and generates
  a different radio wave fluctuation"* — :class:`HydrogelResonator`.
- *"zero-energy IoT devices that detect vibration and acceleration
  using springs"* — :class:`SpringAccelerometer`.
- Printed-Wi-Fi-style mechanical flow meters (gears chopping the
  antenna connection) — :class:`MechanicalChopper`.

Every transducer maps a physical input to a *reflection state* in
[0, 1] (the fraction of carrier power reflected); the backscatter
receiver sees the state through
:meth:`ZeroEnergySensorReadout.observe`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


class Transducer:
    """Maps a physical quantity to an antenna reflection state."""

    def reflection_state(self, value: float) -> float:
        """Reflection coefficient proxy in [0, 1] for the input."""
        raise NotImplementedError


@dataclass
class BimetallicSwitch(Transducer):
    """Temperature threshold switch with hysteresis.

    The strip snaps ON above ``threshold_c`` and releases only below
    ``threshold_c - hysteresis_c``; the switch shorts the antenna, so
    ON reflects strongly.
    """

    threshold_c: float = 30.0
    hysteresis_c: float = 2.0

    def __post_init__(self) -> None:
        if self.hysteresis_c < 0:
            raise ValueError("hysteresis cannot be negative")
        self._on = False

    def reflection_state(self, temperature_c: float) -> float:
        if temperature_c >= self.threshold_c:
            self._on = True
        elif temperature_c < self.threshold_c - self.hysteresis_c:
            self._on = False
        return 1.0 if self._on else 0.0


@dataclass
class HydrogelResonator(Transducer):
    """Temperature-responsive hydrogel detuning an antenna.

    The gel swells continuously with temperature over its transition
    band, shifting the antenna resonance and hence the reflected
    power: a smooth (sigmoidal) analog readout rather than a switch.
    """

    transition_c: float = 32.0
    band_c: float = 6.0

    def __post_init__(self) -> None:
        if self.band_c <= 0:
            raise ValueError("transition band must be positive")

    def reflection_state(self, temperature_c: float) -> float:
        z = (temperature_c - self.transition_c) / (self.band_c / 4.0)
        return 1.0 / (1.0 + math.exp(-z))


@dataclass
class SpringAccelerometer(Transducer):
    """Spring-mass contact sensor for vibration/acceleration.

    The proof mass closes the contact while acceleration exceeds the
    spring preload; the readout duty cycle over time encodes vibration
    amplitude.
    """

    threshold_g: float = 0.5

    def __post_init__(self) -> None:
        if self.threshold_g <= 0:
            raise ValueError("threshold must be positive")

    def reflection_state(self, acceleration_g: float) -> float:
        return 1.0 if abs(acceleration_g) >= self.threshold_g else 0.0


@dataclass
class MechanicalChopper(Transducer):
    """Printed-Wi-Fi style gear: flow spins a gear whose teeth chop
    the antenna connection, so the *rate* of reflection toggles
    encodes the flow.  ``reflection_state`` takes the accumulated gear
    angle (radians)."""

    teeth: int = 8

    def __post_init__(self) -> None:
        if self.teeth < 1:
            raise ValueError("need at least one tooth")

    def reflection_state(self, angle_rad: float) -> float:
        phase = (angle_rad * self.teeth / (2 * math.pi)) % 1.0
        return 1.0 if phase < 0.5 else 0.0


class ZeroEnergySensorReadout:
    """Reads a transducer through the backscatter channel.

    The receiver sees ``rssi = floor + state * swing + noise``; the
    decision threshold sits mid-swing.  This is the full signal path
    of Fig. 2(b): physics -> impedance -> reflected power -> RSSI.

    Args:
        transducer: the physical front-end.
        rssi_floor_dbm: received level in the 0-state.
        swing_db: 1-state lift above the floor.
        noise_db: receiver noise sigma.
    """

    def __init__(
        self,
        transducer: Transducer,
        rssi_floor_dbm: float = -75.0,
        swing_db: float = 8.0,
        noise_db: float = 1.0,
    ) -> None:
        if swing_db <= 0:
            raise ValueError("swing must be positive")
        self.transducer = transducer
        self.rssi_floor_dbm = rssi_floor_dbm
        self.swing_db = swing_db
        self.noise_db = noise_db

    def observe(self, value: float, rng: np.random.Generator) -> float:
        """One RSSI observation for the physical input ``value``."""
        state = self.transducer.reflection_state(value)
        return (
            self.rssi_floor_dbm
            + state * self.swing_db
            + float(rng.normal(0.0, self.noise_db))
        )

    def decode_state(self, rssi_dbm: float) -> int:
        """Binary state decision from one observation."""
        return int(rssi_dbm >= self.rssi_floor_dbm + self.swing_db / 2.0)

    def sense_series(
        self,
        values,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Decoded states for a series of physical inputs."""
        return np.array(
            [self.decode_state(self.observe(v, rng)) for v in values], dtype=int
        )


def chopper_rate_to_flow(
    states: np.ndarray, dt: float, teeth: int = 8
) -> float:
    """Printed-Wi-Fi decoding: toggle rate -> gear speed (rev/s).

    Args:
        states: decoded 0/1 series from a :class:`MechanicalChopper`.
        dt: sampling interval.
        teeth: gear teeth (toggles per revolution = 2 x teeth).
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if len(states) < 2:
        raise ValueError("need at least two samples")
    toggles = int(np.abs(np.diff(states)).sum())
    duration = (len(states) - 1) * dt
    return toggles / (2.0 * teeth) / duration
