"""Capacitor energy-store model."""

from __future__ import annotations


class Capacitor:
    """Energy store with capacity and turn-on/brown-out thresholds.

    State is energy in joules; voltage-domain effects are folded into
    the thresholds, which is the standard abstraction in
    intermittent-computing simulators.

    Args:
        capacity_j: maximum stored energy.
        turn_on_j: the device can start working at/above this level.
        brown_out_j: the device dies below this level.
    """

    def __init__(
        self,
        capacity_j: float,
        turn_on_j: float = 0.0,
        brown_out_j: float = 0.0,
        initial_j: float = 0.0,
    ) -> None:
        if capacity_j <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_j}")
        if not 0.0 <= brown_out_j <= turn_on_j <= capacity_j:
            raise ValueError(
                "thresholds must satisfy 0 <= brown_out <= turn_on <= capacity"
            )
        if not 0.0 <= initial_j <= capacity_j:
            raise ValueError(f"initial energy {initial_j} outside [0, {capacity_j}]")
        self.capacity_j = capacity_j
        self.turn_on_j = turn_on_j
        self.brown_out_j = brown_out_j
        self._energy = initial_j
        self.total_harvested_j = 0.0
        self.total_consumed_j = 0.0
        self.total_wasted_j = 0.0  # harvest that arrived while full

    @property
    def energy_j(self) -> float:
        return self._energy

    @property
    def full(self) -> bool:
        return self._energy >= self.capacity_j

    @property
    def can_turn_on(self) -> bool:
        return self._energy >= self.turn_on_j

    @property
    def browned_out(self) -> bool:
        return self._energy < self.brown_out_j

    def harvest(self, energy_j: float) -> float:
        """Add harvested energy; returns the amount actually stored
        (overflow is wasted and accounted)."""
        if energy_j < 0:
            raise ValueError(f"harvested energy must be non-negative, got {energy_j}")
        room = self.capacity_j - self._energy
        stored = min(energy_j, room)
        self._energy += stored
        self.total_harvested_j += stored
        self.total_wasted_j += energy_j - stored
        return stored

    def draw(self, energy_j: float) -> bool:
        """Try to consume energy atomically.

        Returns True and debits if the full amount is available;
        otherwise returns False and leaves the store unchanged.
        """
        if energy_j < 0:
            raise ValueError(f"drawn energy must be non-negative, got {energy_j}")
        if energy_j > self._energy:
            return False
        self._energy -= energy_j
        self.total_consumed_j += energy_j
        return True
