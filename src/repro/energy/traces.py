"""Harvesting trace generation.

The paper's devices run from harvested energy in the wild; since we
have no captured field traces, these generators produce the synthetic
equivalents used throughout the experiments (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class HarvestingTrace:
    """A sampled harvested-power time series.

    Attributes:
        times: sample instants, seconds, strictly increasing.
        powers: harvested power in watts at each instant.
    """

    times: np.ndarray
    powers: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.powers = np.asarray(self.powers, dtype=float)
        if self.times.shape != self.powers.shape or self.times.ndim != 1:
            raise ValueError("times and powers must be equal-length 1-D arrays")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(self.powers < 0):
            raise ValueError("powers must be non-negative")

    @property
    def duration_s(self) -> float:
        return float(self.times[-1] - self.times[0])

    @property
    def mean_power_w(self) -> float:
        return float(np.trapezoid(self.powers, self.times) / self.duration_s)

    def total_energy_j(self) -> float:
        """Trapezoidal integral of power over the trace."""
        return float(np.trapezoid(self.powers, self.times))


def diurnal_solar_trace(
    days: float,
    dt_s: float,
    peak_power_w: float,
    rng: np.random.Generator,
    cloud_fraction: float = 0.2,
) -> HarvestingTrace:
    """Indoor-light/solar trace with a day-night cycle and cloud dips.

    Power follows a clipped sinusoid peaking at midday, zero at night,
    with multiplicative cloud noise.
    """
    if days <= 0 or dt_s <= 0:
        raise ValueError("days and dt_s must be positive")
    n = int(days * 86_400 / dt_s)
    times = np.arange(n) * dt_s
    phase = 2 * np.pi * (times / 86_400 - 0.25)  # peak at noon
    base = np.clip(np.sin(phase), 0.0, None) * peak_power_w
    clouds = 1.0 - cloud_fraction * rng.random(n)
    return HarvestingTrace(times=times, powers=base * clouds)


def rf_field_trace(
    duration_s: float,
    dt_s: float,
    mean_power_w: float,
    rng: np.random.Generator,
    burst_probability: float = 0.3,
    burst_gain: float = 5.0,
) -> HarvestingTrace:
    """Ambient-RF harvesting trace: a low floor with traffic bursts.

    Models harvesting from Wi-Fi/TV signals whose availability depends
    on other people's traffic — bursty, never fully off.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration_s and dt_s must be positive")
    n = int(duration_s / dt_s)
    floor = mean_power_w * 0.3
    bursts = (rng.random(n) < burst_probability).astype(float)
    powers = floor + bursts * mean_power_w * burst_gain * rng.random(n)
    return HarvestingTrace(times=np.arange(n) * dt_s + dt_s, powers=powers)
