"""Harvester power models.

Each harvester reports instantaneous harvested power (watts) as a
function of time; the capacitor integrates it.  Constants follow the
orders of magnitude cited in the paper (sensing uW..tens of uW, RF
harvesting tens of uW near a reader, small indoor solar ~100 uW/cm2
bright).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np


class Harvester:
    """Base harvester: subclasses implement :meth:`power_at`."""

    def power_at(self, t: float) -> float:
        """Instantaneous harvested power in watts at time ``t`` (s)."""
        raise NotImplementedError

    def energy_between(self, t0: float, t1: float, dt: float = 0.1) -> float:
        """Trapezoidal energy (J) harvested over ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"t1 < t0 ({t1} < {t0})")
        if t1 == t0:
            return 0.0
        steps = max(2, int(math.ceil((t1 - t0) / dt)) + 1)
        ts = np.linspace(t0, t1, steps)
        powers = np.array([self.power_at(t) for t in ts])
        return float(np.trapezoid(powers, ts))


class RFHarvester(Harvester):
    """Far-field RF harvesting (Friis with rectifier efficiency).

    P_harv = eta * P_tx * G / (4 pi d / lambda)^2, floored at 0 beyond
    the rectifier sensitivity.
    """

    def __init__(
        self,
        tx_power_w: float = 1.0,
        distance_m: float = 3.0,
        frequency_hz: float = 2.4e9,
        gain: float = 4.0,
        efficiency: float = 0.3,
        sensitivity_w: float = 1e-7,
    ) -> None:
        if distance_m <= 0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        self.tx_power_w = tx_power_w
        self.distance_m = distance_m
        self.frequency_hz = frequency_hz
        self.gain = gain
        self.efficiency = efficiency
        self.sensitivity_w = sensitivity_w

    def power_at(self, t: float) -> float:
        wavelength = 299_792_458.0 / self.frequency_hz
        path = (wavelength / (4 * math.pi * self.distance_m)) ** 2
        received = self.tx_power_w * self.gain * path
        if received < self.sensitivity_w:
            return 0.0
        return self.efficiency * received


class SolarHarvester(Harvester):
    """Indoor photovoltaic harvesting driven by an illuminance profile.

    Args:
        area_cm2: cell area.
        illuminance: callable t -> lux.
        efficiency_w_per_cm2_per_klux: conversion constant (indoor
            amorphous silicon is on the order of 3-10 uW/cm2/klux).
    """

    def __init__(
        self,
        area_cm2: float = 4.0,
        illuminance: Callable[[float], float] = lambda t: 500.0,
        efficiency_w_per_cm2_per_klux: float = 5e-6,
    ) -> None:
        self.area_cm2 = area_cm2
        self.illuminance = illuminance
        self.efficiency = efficiency_w_per_cm2_per_klux

    def power_at(self, t: float) -> float:
        lux = max(0.0, self.illuminance(t))
        return self.area_cm2 * (lux / 1000.0) * self.efficiency


class ThermalHarvester(Harvester):
    """Thermoelectric harvesting from a temperature gradient."""

    def __init__(
        self,
        delta_t: Callable[[float], float] = lambda t: 2.0,
        w_per_kelvin2: float = 1e-6,
    ) -> None:
        self.delta_t = delta_t
        self.w_per_kelvin2 = w_per_kelvin2

    def power_at(self, t: float) -> float:
        dt = self.delta_t(t)
        return self.w_per_kelvin2 * dt * dt


class VibrationHarvester(Harvester):
    """Resonant piezo harvesting: peak power near resonance, Lorentzian
    roll-off away from it."""

    def __init__(
        self,
        peak_power_w: float = 100e-6,
        resonance_hz: float = 50.0,
        bandwidth_hz: float = 5.0,
        vibration_hz: Callable[[float], float] = lambda t: 50.0,
    ) -> None:
        self.peak_power_w = peak_power_w
        self.resonance_hz = resonance_hz
        self.bandwidth_hz = bandwidth_hz
        self.vibration_hz = vibration_hz

    def power_at(self, t: float) -> float:
        f = self.vibration_hz(t)
        detune = (f - self.resonance_hz) / self.bandwidth_hz
        return self.peak_power_w / (1.0 + detune * detune)


class PiecewiseTraceHarvester(Harvester):
    """Harvester backed by a sampled power trace (step interpolation)."""

    def __init__(self, times: Sequence[float], powers: Sequence[float]) -> None:
        times = np.asarray(times, dtype=float)
        powers = np.asarray(powers, dtype=float)
        if times.ndim != 1 or times.shape != powers.shape:
            raise ValueError("times and powers must be equal-length 1-D arrays")
        if len(times) == 0:
            raise ValueError("trace must contain at least one sample")
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        if np.any(powers < 0):
            raise ValueError("powers must be non-negative")
        self.times = times
        self.powers = powers

    def power_at(self, t: float) -> float:
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        idx = min(max(idx, 0), len(self.powers) - 1)
        return float(self.powers[idx])
