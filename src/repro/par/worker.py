"""Spawn-safe worker entry points for the sweep engine.

Everything a child process executes lives here as top-level functions
with picklable arguments: :func:`init_worker` runs once per worker via
the pool initializer (resolving the task and parking the shared
payload in a module-level slot), and :func:`run_chunk` executes one
chunk of point payloads.  The module has **no import-time side
effects** — a spawn child importing it pays only for the imports — and
the serial (``jobs=1``) path calls the very same :func:`run_point`, so
parallel and serial runs share one code path.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Tuple

#: Per-process worker state, set by :func:`init_worker`.
_STATE = {"task": None, "shared": None, "telemetry": True}


def init_worker(
    task_ref: str, shared: Optional[object], telemetry: bool = True
) -> None:
    """Pool initializer: resolve the task once and keep the shared
    payload; chunks then carry only their point payloads."""
    from repro.par.sweep import resolve_task

    _STATE["task"] = resolve_task(task_ref)
    _STATE["shared"] = shared
    _STATE["telemetry"] = bool(telemetry)


def run_point(task, payload: Tuple, shared, telemetry: bool = True):
    """Execute one point under its own telemetry session.

    ``payload`` is ``(index, seed, config, seed_sequence)``; the RNG
    handed to the task is built from the point's spawned
    :class:`~numpy.random.SeedSequence`, so draws are identical
    whichever process runs the point.
    """
    import numpy as np

    from repro.obs import session
    from repro.obs.trace import canonical_value
    from repro.par.sweep import PointResult, SweepPoint

    index, seed, config, seed_seq = payload
    point = SweepPoint(index=index, seed=seed, config=config)
    rng = np.random.default_rng(seed_seq)
    start = time.perf_counter()
    if telemetry:
        with session() as tel:
            value = task(point, rng, shared)
        metrics = tel.metrics.snapshot()
        trace_digest = tel.tracer.digest()
        trace_events = len(tel.tracer)
    else:
        value = task(point, rng, shared)
        metrics = []
        trace_digest = ""
        trace_events = 0
    return PointResult(
        index=index,
        seed=seed,
        config=config,
        value=canonical_value(value),
        metrics=canonical_value(metrics),
        trace_digest=trace_digest,
        trace_events=trace_events,
        wall_s=time.perf_counter() - start,
        worker=f"pid-{os.getpid()}",
    )


def run_chunk(chunk: List[Tuple]) -> List:
    """Worker-side chunk executor (the ``imap_unordered`` unit)."""
    task = _STATE["task"]
    if task is None:  # pragma: no cover - pool wiring error
        raise RuntimeError("worker used before init_worker ran")
    return [
        run_point(task, payload, _STATE["shared"],
                  telemetry=_STATE["telemetry"])
        for payload in chunk
    ]
