"""Registered sweep tasks for the ``repro sweep`` CLI.

A task is a top-level function ``task(point, rng, shared)`` returning
a picklable, JSON-stable value.  Registering it under a short name
makes it addressable from the command line::

    repro sweep chaos --seeds 0-4 --grid loss_rate=0.0,0.2,0.4 --jobs 4

CLI tasks are **self-contained**: they receive no ``shared`` payload
from the parent, so anything expensive (the trained demo scenario) is
built inside the worker and memoized per process — with chunked
scheduling each worker pays the build once and then streams points.
"""

from __future__ import annotations

from typing import Callable, Dict

#: name -> task function; the CLI's task namespace.
REGISTRY: Dict[str, Callable] = {}


def sweep_task(name: str) -> Callable[[Callable], Callable]:
    """Register a top-level function as a named CLI sweep task."""

    def register(fn: Callable) -> Callable:
        REGISTRY[str(name)] = fn
        return fn

    return register


def available_tasks() -> Dict[str, str]:
    """name -> first docstring line, for ``repro sweep --list``."""
    return {
        name: (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        for name, fn in sorted(REGISTRY.items())
    }


#: Process-local cache of trained demo scenarios, keyed by their
#: build parameters; lives for the worker's lifetime so one worker
#: trains once however many points it steals.
_SCENARIO_CACHE: Dict[tuple, object] = {}


def _demo(seed: int, n_samples: int, epochs: int):
    from repro.faults import demo_scenario

    key = (seed, n_samples, epochs)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = demo_scenario(
            seed=seed, n_samples=n_samples, epochs=epochs
        )
    return _SCENARIO_CACHE[key]


@sweep_task("chaos")
def chaos_task(point, rng, shared):
    """One fault-injected inference run on the trained demo scenario.

    Config knobs (all optional): ``loss_rate``, ``corrupt_rate``,
    ``duplicate_rate``, ``n_crashes``, ``n_brownouts``, ``horizon``,
    ``max_retries``, plus scenario build parameters ``scenario_seed``,
    ``n_samples``, ``epochs``.  The point's ``seed`` drives the fault
    plan.
    """
    from repro.faults import FaultPlan, RetryPolicy, inject

    cfg = point.config
    scenario, (x, y) = _demo(
        int(cfg.get("scenario_seed", 0)),
        int(cfg.get("n_samples", 80)),
        int(cfg.get("epochs", 4)),
    )
    seed = int(point.seed if point.seed is not None else 0)
    plan = FaultPlan.random(
        seed=seed,
        node_ids=sorted(scenario.topology.nodes),
        horizon=float(cfg.get("horizon", 0.5)),
        loss_rate=float(cfg.get("loss_rate", 0.2)),
        corrupt_rate=float(cfg.get("corrupt_rate", 0.0)),
        duplicate_rate=float(cfg.get("duplicate_rate", 0.0)),
        n_crashes=int(cfg.get("n_crashes", 1)),
        n_brownouts=int(cfg.get("n_brownouts", 1)),
    )
    run = inject(
        scenario, plan,
        policy=RetryPolicy(max_retries=int(cfg.get("max_retries", 2))),
    )
    accuracy = run.accuracy(x, y, chunks=4)
    summary = run.trace.summary()
    return {
        "accuracy": accuracy,
        "fault_trace_digest": run.trace.digest(),
        "fault_records": len(run.trace),
        "drops": summary.get("link.drop", 0),
        "retries_recovered": summary.get("retry.recovered", 0),
        "transfers_exhausted": summary.get("degrade.transfer-failed", 0),
        "inferences": run.executor.inferences,
        "time_monotonic": run.trace.is_time_monotonic(),
    }


@sweep_task("example")
def example_task(point, rng, shared):
    """Run one registered example end to end, stdout captured.

    Config: ``name`` — a key of :data:`repro.cli.EXAMPLES` (defaults
    to ``quickstart``).  The value fingerprints the output, so a sweep
    doubles as a determinism check across the example catalogue.
    """
    import hashlib
    import io
    from contextlib import redirect_stdout

    from repro.cli import _load_example

    name = str(point.config.get("name", "quickstart"))
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module, code = _load_example(name)
        if module is None:
            raise ValueError(f"unknown example {name!r}")
        module.main()
    out = buffer.getvalue()
    return {
        "example": name,
        "stdout_sha256": hashlib.sha256(out.encode("utf-8")).hexdigest(),
        "stdout_lines": out.count("\n"),
    }


@sweep_task("rng")
def rng_task(point, rng, shared):
    """Diagnostic: one substream draw per point (engine smoke test)."""
    return {
        "draw": float(rng.random()),
        "seed": point.seed,
        "config": dict(point.config),
    }


def _echo_shared_task(point, rng, shared):
    """Test helper: echo the shared payload back from the worker."""
    return shared
