"""Deterministic process-parallel sweep engine.

A *sweep* is a list of :class:`SweepPoint`\\s — (seed, config) pairs —
run through one spawn-safe task function.  The engine's contract is
the one the chaos suite and the benchmark curves pin:

**the merged result of a parallel run is byte-identical to the serial
run** (``jobs=1``), whatever the worker count, chunking, or completion
order.  Three mechanisms deliver that:

- *deterministic RNG substreams*: every point gets the child
  :class:`numpy.random.SeedSequence` spawned at its index from one
  root sequence, so its random draws do not depend on which process
  (or in which order) it runs — the data-parallel discipline of
  parameter-server training (Li et al., OSDI 2014) applied to
  simulation sweeps;
- *per-point telemetry sessions*: each point runs under its own
  :func:`repro.obs.session`, and the worker ships back a canonical
  metrics snapshot plus the trace digest; the parent merges them in
  ascending point index, never in completion order;
- *a canonical result-merge step*: :meth:`SweepReport.to_dict`
  excludes every wall-clock field by default, so the report (and its
  :meth:`~SweepReport.digest`) depends only on the points' values.

Scheduling is chunked work-stealing: the payload list is cut into
small chunks fed through ``Pool.imap_unordered``, so idle workers pull
the next chunk from the shared queue instead of being handed a fixed
shard up front.

Tasks must be **spawn-safe**: a top-level function (resolvable as
``"module:qualname"``) with picklable arguments and no reliance on
module-scope side effects.  Large read-only inputs (a trained
scenario, a test set) travel once per worker via ``shared`` — they are
pickled into the pool initializer, not into every chunk.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union


@dataclass(frozen=True)
class SweepPoint:
    """One sweep coordinate: an index, a seed, and a config dict.

    ``index`` is the point's canonical position (merge order);
    ``seed`` is the user-facing seed recorded in reports (tasks may
    also use it directly, e.g. for a :class:`FaultPlan`); ``config``
    must be picklable and JSON-stable.
    """

    index: int
    seed: Optional[int]
    config: Dict[str, object] = field(default_factory=dict)


@dataclass
class PointResult:
    """One completed point, as shipped back from a worker.

    ``wall_s`` and ``worker`` are diagnostics only — they are excluded
    from the canonical serialization so parallel and serial runs
    compare byte-identical.
    """

    index: int
    seed: Optional[int]
    config: Dict[str, object]
    value: object
    metrics: List
    trace_digest: str
    trace_events: int
    wall_s: float
    worker: str

    def to_dict(self, include_wall: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "index": self.index,
            "seed": self.seed,
            "config": self.config,
            "value": self.value,
            "metrics": self.metrics,
            "trace_digest": self.trace_digest,
            "trace_events": self.trace_events,
        }
        if include_wall:
            out["wall_s"] = self.wall_s
            out["worker"] = self.worker
        return out


SWEEP_SCHEMA_VERSION = 1
SWEEP_SUITE_NAME = "repro-sweep"


@dataclass
class SweepReport:
    """All point results plus the canonical merge.

    ``results`` is always sorted by point index — the merge order —
    regardless of the order workers completed them in.
    """

    task: str
    root_seed: int
    results: List[PointResult]
    jobs: int
    elapsed_s: float

    def values(self) -> List[object]:
        return [r.value for r in self.results]

    def merged_metrics(self):
        """A fresh :class:`repro.obs.MetricsRegistry` folding every
        point's snapshot in index order."""
        from repro.obs import merge_snapshots

        return merge_snapshots(r.metrics for r in self.results)

    def merged_trace_digest(self) -> str:
        """Combined digest of the per-point traces, in index order."""
        from repro.obs import merge_digests

        return merge_digests(r.trace_digest for r in self.results)

    def to_dict(self, include_wall: bool = False) -> Dict[str, object]:
        """The report as a JSON-stable dict.

        The default form is **canonical**: no wall times, no worker
        ids, no job count — two runs of the same sweep serialize
        byte-identically whatever the parallelism.  With
        ``include_wall=True`` the timing diagnostics ride along under
        a single ``"wall"`` key (and per-point ``wall_s``/``worker``
        fields), so consumers can strip them uniformly.
        """
        from repro.obs.trace import canonical_value

        merged_metrics = self.merged_metrics().snapshot()
        doc: Dict[str, object] = {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "suite": SWEEP_SUITE_NAME,
            "task": self.task,
            "root_seed": self.root_seed,
            "n_points": len(self.results),
            "points": [
                canonical_value(r.to_dict(include_wall=include_wall))
                for r in self.results
            ],
            "merged": {
                "trace_digest": self.merged_trace_digest(),
                "metrics": canonical_value(merged_metrics),
            },
        }
        if include_wall:
            doc["wall"] = {
                "jobs": self.jobs,
                "elapsed_s": self.elapsed_s,
            }
        return doc

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 of the canonical serialization — the determinism
        pin tests compare across ``jobs`` settings."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()


def strip_wall_fields(doc: Dict) -> Dict:
    """A deep copy of a ``to_dict(include_wall=True)`` report with
    every wall-time field removed — what "identical modulo wall time"
    means, in one place."""
    out = json.loads(json.dumps(doc))
    out.pop("wall", None)
    for point in out.get("points", []):
        point.pop("wall_s", None)
        point.pop("worker", None)
    return out


def make_points(
    seeds: Optional[Sequence[Optional[int]]] = None,
    grid: Optional[Dict[str, Sequence[object]]] = None,
    base_config: Optional[Dict[str, object]] = None,
) -> List[SweepPoint]:
    """The cartesian product of a seed list and a config grid.

    Seeds vary slowest, then grid keys in their given order; indices
    are assigned in that enumeration order.  ``base_config`` entries
    are merged under every grid combination.
    """
    from itertools import product

    seed_list = list(seeds) if seeds else [None]
    grid = grid or {}
    keys = list(grid)
    value_lists = [list(grid[k]) for k in keys]
    points: List[SweepPoint] = []
    for seed in seed_list:
        for combo in product(*value_lists):
            config = dict(base_config or {})
            config.update(zip(keys, combo))
            points.append(
                SweepPoint(index=len(points), seed=seed, config=config)
            )
    return points


def task_ref(task: Union[str, Callable]) -> str:
    """Normalize a task to its spawn-safe reference.

    Accepts a registry name (``"chaos"``), a ``"module:qualname"``
    string, or a top-level callable.  Raises :class:`ValueError` when
    the task cannot be resolved back from its reference — nested
    functions, lambdas, and unimportable modules fail *here*, before
    any pool is spawned, so a sweep that works at ``jobs=1`` cannot
    start failing at ``jobs=4``.
    """
    if callable(task):
        qualname = getattr(task, "__qualname__", "")
        module = getattr(task, "__module__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ValueError(
                f"task {qualname or task!r} is not a top-level function; "
                "spawn-based workers need an importable "
                "'module:qualname' entry point"
            )
        ref = f"{module}:{qualname}"
        if resolve_task(ref) is not task:
            raise ValueError(
                f"task reference {ref!r} does not resolve back to the "
                "given callable"
            )
        return ref
    ref = str(task)
    resolve_task(ref)  # raises on unknown names / bad modules
    return ref


def resolve_task(ref: str) -> Callable:
    """A task callable from its reference (registry name first, then
    ``module:qualname``)."""
    if ":" not in ref:
        from repro.par.tasks import REGISTRY

        if ref not in REGISTRY:
            raise ValueError(
                f"unknown sweep task {ref!r}; registered: "
                f"{sorted(REGISTRY)}"
            )
        return REGISTRY[ref]
    module_name, __, qualname = ref.partition(":")
    module = importlib.import_module(module_name)
    obj = module
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"task reference {ref!r} is not callable")
    return obj


def _chunked(items: List, chunk_size: int) -> List[List]:
    return [
        items[i : i + chunk_size] for i in range(0, len(items), chunk_size)
    ]


def default_chunk_size(n_points: int, jobs: int) -> int:
    """Small chunks (about four waves per worker) so the shared queue
    behaves as work stealing: a worker that drew cheap points comes
    back for more instead of idling."""
    return max(1, math.ceil(n_points / (jobs * 4)))


def run_sweep(
    task: Union[str, Callable],
    points: Sequence[SweepPoint],
    jobs: int = 1,
    root_seed: int = 0,
    shared: Optional[object] = None,
    chunk_size: Optional[int] = None,
    mp_context: str = "spawn",
    telemetry: bool = True,
) -> SweepReport:
    """Run ``task`` over ``points`` with ``jobs`` worker processes.

    ``jobs=1`` runs every point in-process through the *same*
    per-point code path the workers use — it is the reference the
    parallel merge is asserted byte-identical to, not a separate
    implementation.  ``shared`` is delivered to each worker once (via
    the pool initializer); ``telemetry=False`` skips the per-point
    observability session for timing-sensitive tasks (the ``bench
    --jobs`` fan-out) at the cost of empty metrics snapshots.
    """
    import numpy as np

    from repro.par import worker

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    points = list(points)
    indices = [p.index for p in points]
    if len(set(indices)) != len(indices):
        raise ValueError(f"sweep point indices must be unique: {indices}")
    ref = task_ref(task)
    children = np.random.SeedSequence(root_seed).spawn(max(len(points), 1))
    payloads = [
        (p.index, p.seed, dict(p.config), children[i])
        for i, p in enumerate(points)
    ]
    start = time.perf_counter()
    if jobs == 1 or len(points) <= 1:
        fn = resolve_task(ref)
        results = [
            worker.run_point(fn, payload, shared, telemetry=telemetry)
            for payload in payloads
        ]
    else:
        if multiprocessing.current_process().daemon:
            raise ValueError(
                "nested parallel sweeps are not supported: this process "
                "is already a daemonic pool worker (use jobs=1 here)"
            )
        if chunk_size is None:
            chunk_size = default_chunk_size(len(points), jobs)
        chunks = _chunked(payloads, chunk_size)
        ctx = multiprocessing.get_context(mp_context)
        with ctx.Pool(
            processes=min(jobs, len(chunks)),
            initializer=worker.init_worker,
            initargs=(ref, shared, telemetry),
        ) as pool:
            results = []
            for chunk_results in pool.imap_unordered(
                worker.run_chunk, chunks, chunksize=1
            ):
                results.extend(chunk_results)
    results.sort(key=lambda r: r.index)
    return SweepReport(
        task=ref,
        root_seed=int(root_seed),
        results=results,
        jobs=int(jobs),
        elapsed_s=time.perf_counter() - start,
    )
