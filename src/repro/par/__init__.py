"""Deterministic process-parallel sweeps (``repro.par``).

The package behind ``repro sweep`` and ``repro bench --jobs``:

- :mod:`repro.par.sweep` — the engine: :func:`run_sweep` fans
  :class:`SweepPoint`\\s over a spawn-based process pool with chunked
  work-stealing scheduling, per-point RNG substreams
  (``SeedSequence.spawn``), per-point telemetry sessions, and a
  canonical merge asserted byte-identical to the serial run;
- :mod:`repro.par.worker` — the spawn-safe worker entry points;
- :mod:`repro.par.tasks` — the named task registry the CLI exposes.

This is the **only** package allowed to create process pools or import
:mod:`multiprocessing` at module scope (an AST lint enforces it), so
every parallel execution path in the repo shares the same determinism
contract.
"""

from repro.par.sweep import (
    SWEEP_SCHEMA_VERSION,
    SWEEP_SUITE_NAME,
    PointResult,
    SweepPoint,
    SweepReport,
    default_chunk_size,
    make_points,
    resolve_task,
    run_sweep,
    strip_wall_fields,
    task_ref,
)
from repro.par.tasks import REGISTRY, available_tasks, sweep_task

__all__ = [
    "PointResult",
    "REGISTRY",
    "SWEEP_SCHEMA_VERSION",
    "SWEEP_SUITE_NAME",
    "SweepPoint",
    "SweepReport",
    "available_tasks",
    "default_chunk_size",
    "make_points",
    "resolve_task",
    "run_sweep",
    "strip_wall_fields",
    "sweep_task",
    "task_ref",
]
