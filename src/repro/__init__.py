"""Reproduction of *Context Recognition of Humans and Objects by
Distributed Zero-Energy IoT Devices* (Higashino et al., ICDCS 2019).

The package is organised as a stack of substrates topped by the paper's
central mechanism and its applications:

- :mod:`repro.sim` -- discrete-event simulation kernel.
- :mod:`repro.nn` -- from-scratch NumPy CNN framework.
- :mod:`repro.ml` -- classical machine-learning substrate and metrics.
- :mod:`repro.energy` -- energy harvesting and radio energy budgets.
- :mod:`repro.wsn` -- wireless-sensor-network simulator.
- :mod:`repro.backscatter` -- ambient backscatter PHY and the
  backscatter-aware WLAN MAC protocol.
- :mod:`repro.sensing` -- CSI and RSSI wireless-sensing simulators.
- :mod:`repro.core` -- MicroDeep: distributed CNN execution on a WSN.
- :mod:`repro.faults` -- deterministic fault injection: node crashes,
  brownouts, link loss/corruption/duplication, resilient execution.
- :mod:`repro.contexts` -- context-recognition applications.
- :mod:`repro.datasets` -- synthetic dataset generators replacing the
  paper's private testbed data.
- :mod:`repro.obs` -- unified telemetry: sim-clock tracing, metrics
  registry, and per-node cost reports (lazy; nothing imports it at
  module scope).
- :mod:`repro.par` -- deterministic process-parallel sweep engine
  (seed substreams, chunked work stealing, canonical result merge);
  the only package allowed to create process pools.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "nn",
    "ml",
    "energy",
    "wsn",
    "backscatter",
    "sensing",
    "core",
    "faults",
    "contexts",
    "datasets",
    "obs",
    "par",
]
