"""Process-style helpers built on the event engine."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timer:
    """A restartable one-shot timer.

    Useful for MAC-layer timeouts: :meth:`start` arms it, :meth:`stop`
    disarms, restarting while armed reschedules.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` from now."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicProcess:
    """Runs a callback every ``period`` units of virtual time.

    The first invocation happens at ``start_offset`` after :meth:`start`.
    The callback may call :meth:`stop` to terminate the process.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        start_offset: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._start_offset = start_offset
        self._event: Optional[Event] = None
        self._stopped = True
        self.invocations = 0

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        """Begin periodic execution."""
        self._stopped = False
        self._event = self._sim.schedule(self._start_offset, self._tick)

    def stop(self) -> None:
        """Halt the process; safe to call from within the callback."""
        self._stopped = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self.invocations += 1
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule(self._period, self._tick)
