"""The discrete-event simulation engine."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised on scheduling violations such as scheduling into the past."""


class Simulator:
    """Discrete-event simulator with monotonic virtual time.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, handler, "payload")
        sim.run(until=10.0)

    The engine guarantees that callbacks observe a non-decreasing
    :attr:`now` and that same-time events run in (priority, insertion)
    order.
    """

    def __init__(self, start_time: float = 0.0, telemetry=None) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._processed = 0
        if telemetry is None:
            from repro.obs.runtime import current

            telemetry = current()
        self._telemetry = telemetry
        if telemetry.enabled:
            # Spans recorded anywhere while this simulator exists are
            # stamped with its virtual clock (last simulator wins).
            telemetry.tracer.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def running(self) -> bool:
        """True while :meth:`run` is executing events."""
        return self._running

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule *callback(\\*args)* to run ``delay`` after :attr:`now`.

        Args:
            delay: non-negative offset from the current time.
            callback: function invoked when the event fires.
            priority: tie-break for same-time events; lower runs first.
            name: optional label for debugging.

        Returns:
            The :class:`Event` handle, usable with :meth:`cancel`.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            callback=callback,
            args=args,
            priority=priority,
            name=name,
        )
        return self._queue.push(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule an event at absolute virtual time ``time``."""
        return self.schedule(
            time - self._now, callback, *args, priority=priority, name=name
        )

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event; a no-op if it already fired."""
        self._queue.cancel(event)

    def _fire_traced(self, event: Event) -> None:
        """Dispatch one event inside a ``sim.event`` span (same span
        shape from :meth:`run`, :meth:`run_batch`, and :meth:`step`,
        so traces are identical across drain strategies)."""
        with self._telemetry.tracer.span(
            "sim.event",
            name=event.name or getattr(event.callback, "__name__", "event"),
        ):
            event.fire()

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        self._now = event.time
        self._processed += 1
        if self._telemetry.enabled:
            self._fire_traced(event)
        else:
            event.fire()
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Events scheduled exactly at ``until`` still run; events strictly
        later are left in the queue and the clock advances to ``until``.

        A handler that raises leaves the engine resumable: the failing
        event is consumed, the clock and queue stay consistent, and a
        subsequent :meth:`run` continues with the remaining events.

        Returns:
            The virtual time when the run stopped.

        Raises:
            SimulationError: when called re-entrantly from a handler
                (which would corrupt the run state).
        """
        if self._running:
            raise SimulationError(
                "run() called re-entrantly from an event handler"
            )
        executed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_batch(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Drain events like :meth:`run`, without per-event re-peeking.

        :meth:`run` walks the heap twice per event (``peek_time`` then
        ``step``); this fast path pops each event exactly once and
        requeues the single overshoot event when it lies beyond
        ``until``, preserving the original sequence number so ordering
        is untouched.  Semantics are identical to :meth:`run` — same
        final :attr:`now`, same :attr:`processed`, same event order —
        a property the ``-m perf`` suite pins.

        Returns:
            The virtual time when the run stopped.

        Raises:
            SimulationError: when called re-entrantly from a handler.
        """
        if self._running:
            raise SimulationError(
                "run_batch() called re-entrantly from an event handler"
            )
        executed = 0
        queue = self._queue
        traced = self._telemetry.enabled
        self._running = True
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                event = queue.pop()
                if until is not None and event.time > until:
                    queue.requeue(event)
                    self._now = until
                    break
                self._now = event.time
                self._processed += 1
                executed += 1
                if traced:
                    self._fire_traced(event)
                else:
                    event.fire()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self, start_time: float = 0.0) -> None:
        """Clear all events and rewind the clock."""
        self._queue.clear()
        self._now = float(start_time)
        self._processed = 0
