"""Discrete-event simulation kernel.

A minimal but complete event-driven simulator shared by the WSN and
backscatter-MAC simulations: a binary-heap event queue with stable
ordering, a :class:`Simulator` engine with monotonic virtual time, and
process-style helpers (timers, periodic processes).
"""

from repro.sim.events import Event, EventQueue
from repro.sim.engine import Simulator, SimulationError
from repro.sim.process import PeriodicProcess, Timer

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "PeriodicProcess",
    "Timer",
]
