"""Event and event-queue primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, sequence)`` so that ties at the
    same virtual time are broken first by explicit priority (lower runs
    first) and then by insertion order, which keeps runs deterministic.
    """

    time: float
    callback: Callable[..., None]
    args: tuple = ()
    priority: int = 0
    sequence: int = field(default=0, compare=False)
    cancelled: bool = field(default=False, compare=False)
    name: Optional[str] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback with the stored arguments."""
        self.callback(*self.args)

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.sequence)


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    Cancelled events stay in the heap and are discarded lazily on pop,
    which makes :meth:`cancel` O(1).
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (so callers can keep a handle)."""
        event.sequence = next(self._counter)
        heapq.heappush(self._heap, (event.sort_key, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel an event previously pushed onto this queue."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def requeue(self, event: Event) -> None:
        """Push back a just-popped live event, keeping its original
        sequence number so the (time, priority, insertion) order is
        unchanged — the drain fast path uses this to return an event
        it popped past the run horizon."""
        heapq.heappush(self._heap, (event.sort_key, event))
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap:
            __, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float:
        """Return the time of the earliest live event without removing it.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap and self._heap[0][1].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][1].time

    def clear(self) -> None:
        """Drop every event, live or cancelled."""
        self._heap.clear()
        self._live = 0
