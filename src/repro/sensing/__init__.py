"""Wireless-sensing substrates: CSI and RSSI simulators.

These replace the paper's physical testbeds (see DESIGN.md §5):

- :mod:`repro.sensing.csi` -- a MIMO-OFDM channel with human-body
  scattering, IEEE 802.11ac compressed-beamforming (Givens-angle)
  feedback, and the 624-dimensional feature extraction of the
  CSI-learning system [8].
- :mod:`repro.sensing.rssi` -- Bluetooth RSSI among phones in train
  cars [65] and synchronized inter-node / surrounding RSSI in rooms
  [66], both with crowd-dependent attenuation.
"""

from repro.sensing.csi.channel import AntennaPattern, Behavior, CsiChannelModel
from repro.sensing.csi.feedback import compress_vmatrix, quantize_angles
from repro.sensing.csi.features import FEATURE_DIMENSION, csi_feature_vector
from repro.sensing.csi.scenario import (
    CsiLocalizationScenario,
    ScenarioPattern,
    default_patterns,
)
from repro.sensing.csi.gesture import CsiGestureScenario, Gesture, gesture_trajectory
from repro.sensing.csi.pem import (
    CrowdCsiScenario,
    GreyVerhulstEstimator,
    percentage_nonzero_elements,
)
from repro.sensing.rssi.train import TrainScenario, TrainObservation, CongestionLevel
from repro.sensing.rssi.room import RoomOccupancyScenario, RoomObservation

__all__ = [
    "CsiChannelModel",
    "Behavior",
    "AntennaPattern",
    "compress_vmatrix",
    "quantize_angles",
    "csi_feature_vector",
    "FEATURE_DIMENSION",
    "CsiLocalizationScenario",
    "ScenarioPattern",
    "default_patterns",
    "CsiGestureScenario",
    "Gesture",
    "gesture_trajectory",
    "CrowdCsiScenario",
    "GreyVerhulstEstimator",
    "percentage_nonzero_elements",
    "TrainScenario",
    "TrainObservation",
    "CongestionLevel",
    "RoomOccupancyScenario",
    "RoomObservation",
]
