"""CSI sensing: channel model, 802.11ac feedback, features, scenario."""

from repro.sensing.csi.channel import AntennaPattern, Behavior, CsiChannelModel
from repro.sensing.csi.feedback import compress_vmatrix, quantize_angles
from repro.sensing.csi.features import FEATURE_DIMENSION, csi_feature_vector
from repro.sensing.csi.scenario import (
    CsiLocalizationScenario,
    ScenarioPattern,
    default_patterns,
)

__all__ = [
    "CsiChannelModel",
    "Behavior",
    "AntennaPattern",
    "compress_vmatrix",
    "quantize_angles",
    "csi_feature_vector",
    "FEATURE_DIMENSION",
    "CsiLocalizationScenario",
    "ScenarioPattern",
    "default_patterns",
]
