"""CSI gesture recognition scenario (§II.B survey: WiAG [32],
SignFi [33], keystroke recognition [34]).

A hand/arm gesture moves a small scatterer along a characteristic
trajectory through the AP-client field; the induced CSI fluctuation
*sequence* identifies the gesture.  The generator renders gesture
trajectories (swipe, push, circle, wave) as scatterer paths and
captures a frame sequence per execution; features are per-frame
compressed angles summarized over the trajectory.
"""

from __future__ import annotations

import enum
import math
from typing import List, Tuple

import numpy as np

from repro.sensing.csi.channel import AntennaPattern, Behavior, CsiChannelModel
from repro.sensing.csi.features import csi_feature_vector


class Gesture(enum.IntEnum):
    """The gesture vocabulary."""

    SWIPE_RIGHT = 0
    SWIPE_LEFT = 1
    PUSH = 2
    CIRCLE = 3
    WAVE = 4


def gesture_trajectory(
    gesture: Gesture,
    n_frames: int,
    center: Tuple[float, float],
    scale: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Scatterer path ``(n_frames, 2)`` for one gesture execution.

    Per-execution jitter varies speed and extent, as real users do.
    """
    if n_frames < 4:
        raise ValueError("need at least 4 frames")
    t = np.linspace(0.0, 1.0, n_frames)
    amp = scale * float(rng.uniform(0.8, 1.2))
    cx, cy = center
    if gesture is Gesture.SWIPE_RIGHT:
        xs = cx - amp / 2 + amp * t
        ys = np.full_like(t, cy)
    elif gesture is Gesture.SWIPE_LEFT:
        xs = cx + amp / 2 - amp * t
        ys = np.full_like(t, cy)
    elif gesture is Gesture.PUSH:
        # Toward the AP-client line and back.
        xs = np.full_like(t, cx)
        ys = cy - amp * np.sin(np.pi * t)
    elif gesture is Gesture.CIRCLE:
        xs = cx + amp / 2 * np.cos(2 * np.pi * t)
        ys = cy + amp / 2 * np.sin(2 * np.pi * t)
    else:  # WAVE: side-to-side oscillation
        xs = cx + amp / 2 * np.sin(4 * np.pi * t)
        ys = np.full_like(t, cy)
    jitter = rng.normal(0.0, 0.01, size=(n_frames, 2))
    return np.stack([xs, ys], axis=1) + jitter


class CsiGestureScenario:
    """Generates labeled gesture datasets from CSI frame sequences.

    Args:
        channel: room channel model.
        center: where the user performs gestures.
        scale: gesture extent in metres.
        n_frames: frames captured per execution.
    """

    def __init__(
        self,
        channel: CsiChannelModel = None,
        center: Tuple[float, float] = (3.0, 2.0),
        scale: float = 0.6,
        n_frames: int = 40,
    ) -> None:
        self.channel = channel if channel is not None else CsiChannelModel()
        self.center = center
        self.scale = scale
        self.n_frames = n_frames

    def capture_execution(
        self, gesture: Gesture, rng: np.random.Generator
    ) -> np.ndarray:
        """Feature sequence ``(n_frames, 624)`` for one execution."""
        path = gesture_trajectory(
            gesture, self.n_frames, self.center, self.scale, rng
        )
        frames = []
        for pos in path:
            h = self.channel.generate(
                tuple(pos), Behavior.STANDING, AntennaPattern.DIVERGENT, rng,
                noise_std=0.02,
            )
            frames.append(csi_feature_vector(h))
        return np.stack(frames)

    @staticmethod
    def sequence_features(frames: np.ndarray) -> np.ndarray:
        """Trajectory summary of a frame sequence.

        Circular (cos/sin) per-angle means over the first, middle, and
        last thirds — the temporal *shape* of the gesture, which
        separates mirrored swipes — plus the frame-to-frame motion
        energy profile, whose rhythm separates pushes (one hump),
        circles (flat), and waves (oscillating).
        """
        if len(frames) < 4:
            raise ValueError("need at least 4 frames")
        cos, sin = np.cos(frames), np.sin(frames)
        n = len(frames)
        thirds = [slice(0, n // 3), slice(n // 3, 2 * n // 3),
                  slice(2 * n // 3, n)]
        parts = []
        for s in thirds:
            parts.append(cos[s].mean(axis=0))
            parts.append(sin[s].mean(axis=0))
        energy = np.sqrt(
            (np.diff(cos, axis=0) ** 2 + np.diff(sin, axis=0) ** 2).sum(axis=1)
        )
        parts.append(energy)
        return np.concatenate(parts)

    def generate_dataset(
        self, executions_per_gesture: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(features, labels)`` over the whole vocabulary."""
        if executions_per_gesture < 1:
            raise ValueError("executions_per_gesture must be >= 1")
        xs, ys = [], []
        for gesture in Gesture:
            for __ in range(executions_per_gesture):
                frames = self.capture_execution(gesture, rng)
                xs.append(self.sequence_features(frames))
                ys.append(int(gesture))
        return np.asarray(xs), np.asarray(ys, dtype=int)
