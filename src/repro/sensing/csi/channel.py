"""MIMO-OFDM channel with human-body scattering.

The device-free localization system of paper ref. [8] infers a user's
position from the IEEE 802.11ac beamforming feedback between an AP and
a client.  This model produces per-subcarrier channel matrices with:

- a static line-of-sight + a few fixed multipath components (the
  room), and
- one human scatterer whose reflected path's delay/phase/attenuation
  depends on the person's position relative to the AP-client pair.

Walking adds per-frame random motion of the scatterer (the paper finds
walking users *easier* to classify because the motion statistics are
position-dependent); antenna-orientation divergence makes the spatial
signatures richer.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

SPEED_OF_LIGHT = 299_792_458.0


class Behavior(enum.Enum):
    """User behavior during the capture (paper's six patterns vary it)."""

    STANDING = "standing"
    WALKING = "walking"


class AntennaPattern(enum.Enum):
    """AP antenna orientation (paper: divergence helps accuracy)."""

    ALIGNED = "aligned"        # all elements same orientation
    DIVERGENT = "divergent"    # orientations spread apart


@dataclass(frozen=True)
class _Path:
    """One propagation path."""

    length_m: float
    gain: float
    angle_rad: float = 0.6


class CsiChannelModel:
    """Generates per-subcarrier MIMO channel matrices.

    Args:
        ap_position / client_position: metres, 2-D.
        n_tx: AP antennas (beamformee dimension of the feedback).
        n_rx: client antennas / streams.
        n_subcarriers: OFDM data subcarriers in the feedback.
        frequency_hz: carrier frequency.
        bandwidth_hz: channel bandwidth (sets subcarrier spacing).
        static_paths: additional room reflections as (length, gain).
    """

    def __init__(
        self,
        ap_position: Tuple[float, float] = (0.0, 0.0),
        client_position: Tuple[float, float] = (6.0, 0.0),
        n_tx: int = 4,
        n_rx: int = 3,
        n_subcarriers: int = 52,
        frequency_hz: float = 5.18e9,
        bandwidth_hz: float = 40e6,
        static_paths: Sequence[Tuple[float, float]] = ((9.0, 0.35), (13.0, 0.2)),
    ) -> None:
        if n_tx < n_rx:
            raise ValueError("n_tx must be >= n_rx for the feedback V matrix")
        self.ap = np.asarray(ap_position, dtype=float)
        self.client = np.asarray(client_position, dtype=float)
        self.n_tx = n_tx
        self.n_rx = n_rx
        self.n_subcarriers = n_subcarriers
        self.frequency_hz = frequency_hz
        self.bandwidth_hz = bandwidth_hz
        self.static_paths = [_Path(l, g) for l, g in static_paths]

    def _subcarrier_frequencies(self) -> np.ndarray:
        half = self.bandwidth_hz / 2.0
        offsets = np.linspace(-half, half, self.n_subcarriers)
        return self.frequency_hz + offsets

    def _antenna_phase_offsets(
        self, pattern: AntennaPattern, angle_rad: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-element phase progression for a path arriving at
        ``angle_rad``; divergence perturbs element orientations."""
        lam = SPEED_OF_LIGHT / self.frequency_hz
        spacing = lam / 2.0
        k = 2 * math.pi / lam
        tx_idx = np.arange(self.n_tx)
        rx_idx = np.arange(self.n_rx)
        tx_phase = k * spacing * tx_idx * math.sin(angle_rad)
        rx_phase = k * spacing * rx_idx * math.sin(angle_rad)
        if pattern is AntennaPattern.DIVERGENT:
            # Each element points differently: add a deterministic
            # per-element gain/phase skew that enriches the signature.
            tx_phase = tx_phase + 0.7 * tx_idx**1.5
            rx_phase = rx_phase + 0.4 * rx_idx**1.5
        return tx_phase, rx_phase

    def _path_matrix(
        self,
        length_m: float,
        gain: float,
        angle_rad: float,
        freqs: np.ndarray,
        pattern: AntennaPattern,
    ) -> np.ndarray:
        """(n_sub, n_tx, n_rx) contribution of one path."""
        delay = length_m / SPEED_OF_LIGHT
        phase_f = np.exp(-2j * math.pi * freqs * delay)  # (n_sub,)
        tx_phase, rx_phase = self._antenna_phase_offsets(pattern, angle_rad)
        steering = np.exp(1j * tx_phase)[:, None] * np.exp(1j * rx_phase)[None, :]
        return gain * phase_f[:, None, None] * steering[None, :, :]

    def _human_path(self, person: np.ndarray) -> Tuple[float, float, float]:
        """(path length, gain, arrival angle) of the AP->person->client
        reflection."""
        d_ap = float(np.linalg.norm(person - self.ap))
        d_cl = float(np.linalg.norm(person - self.client))
        length = d_ap + d_cl
        # Radar-like bistatic attenuation, with a body reflectivity.
        gain = 2.0 / max(d_ap * d_cl, 0.25)
        angle = math.atan2(person[1] - self.ap[1], person[0] - self.ap[0])
        return length, gain, angle

    def random_clutter(
        self, rng: np.random.Generator, n_paths: int = 3
    ) -> list:
        """Random static environment clutter (furniture, doors, people
        elsewhere) drawn once per capture session.

        Clutter is what makes single static snapshots ambiguous in real
        rooms: a standing person's reflection is confounded with it,
        while a walking person's *temporal variation* is not.
        """
        return [
            _Path(
                length_m=float(rng.uniform(7.0, 20.0)),
                gain=float(rng.uniform(0.05, 0.45)),
                angle_rad=float(rng.uniform(-np.pi / 2, np.pi / 2)),
            )
            for __ in range(n_paths)
        ]

    def generate(
        self,
        person_position: Tuple[float, float],
        behavior: Behavior,
        pattern: AntennaPattern,
        rng: np.random.Generator,
        noise_std: float = 0.02,
        clutter: list = None,
    ) -> np.ndarray:
        """One CSI capture: complex array ``(n_sub, n_tx, n_rx)``.

        Walking jitters the scatterer position by a position-dependent
        gait ellipse; standing only adds breathing-scale jitter.
        ``clutter`` adds extra static paths (see :meth:`random_clutter`).
        """
        person = np.asarray(person_position, dtype=float)
        if behavior is Behavior.WALKING:
            person = person + rng.normal(0.0, 0.35, size=2)
        else:
            # Breathing/sway only: millimetres, i.e. a small fraction
            # of the ~6 cm wavelength so the phase stays coherent.
            person = person + rng.normal(0.0, 0.002, size=2)
        freqs = self._subcarrier_frequencies()
        los_len = float(np.linalg.norm(self.client - self.ap))
        los_angle = math.atan2(
            self.client[1] - self.ap[1], self.client[0] - self.ap[0]
        )
        h = self._path_matrix(los_len, 1.0, los_angle, freqs, pattern)
        for p in self.static_paths:
            h = h + self._path_matrix(p.length_m, p.gain, p.angle_rad, freqs, pattern)
        for p in clutter or []:
            h = h + self._path_matrix(p.length_m, p.gain, p.angle_rad, freqs, pattern)
        length, gain, angle = self._human_path(person)
        h = h + self._path_matrix(length, gain, angle, freqs, pattern)
        noise = noise_std * (
            rng.normal(size=h.shape) + 1j * rng.normal(size=h.shape)
        )
        return h + noise
