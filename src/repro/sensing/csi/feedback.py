"""IEEE 802.11ac compressed-beamforming feedback.

The beamformee computes the right singular matrix V of each
subcarrier's channel and returns it compressed as Givens-rotation
angles (phi, psi), quantized to a few bits.  This is the exact
information the CSI-learning system of paper ref. [8] taps: its
"compressed angles information" inside the feedback frame.

For an ``(n_tx, n_c)`` V matrix the angle counts are::

    n_phi = n_psi = sum_{i=0}^{n_c-1} (n_tx - 1 - i)

so a (4, 3) matrix yields 6 + 6 = 12 angles; with 52 subcarriers the
frame carries 624 angles — the paper's 624 features.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def num_angles(n_tx: int, n_c: int) -> Tuple[int, int]:
    """(n_phi, n_psi) for an (n_tx, n_c) V matrix."""
    if n_c > n_tx:
        raise ValueError(f"n_c ({n_c}) cannot exceed n_tx ({n_tx})")
    count = sum(n_tx - 1 - i for i in range(min(n_c, n_tx - 1)))
    return count, count


def steering_v(h: np.ndarray, n_c: int) -> np.ndarray:
    """First ``n_c`` right singular vectors of channel ``h``
    (``(n_tx, n_rx)``), as the beamformee computes them."""
    if h.ndim != 2:
        raise ValueError(f"expected a 2-D channel matrix, got shape {h.shape}")
    __, __, vh = np.linalg.svd(h, full_matrices=True)
    v = vh.conj().T  # (n_tx, n_tx)
    return v[:, :n_c]


def compress_vmatrix(v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Decompose V into Givens angles per the 802.11 procedure.

    Returns ``(phis, psis)``: phi in [0, 2pi), psi in [0, pi/2].
    The decomposition first rotates each column so the last row is
    real, then alternates column-phase removal (phi) and Givens
    rotations (psi) that zero the sub-diagonal.
    """
    v = np.array(v, dtype=complex, copy=True)
    n_r, n_c = v.shape
    if n_c > n_r:
        raise ValueError(f"V must be tall, got shape {v.shape}")
    # D-tilde: make the last row non-negative real.
    v = v * np.exp(-1j * np.angle(v[n_r - 1, :]))[None, :]
    phis = []
    psis = []
    for i in range(min(n_c, n_r - 1)):
        # Phase of column i, rows i..n_r-2 (the last row is already real).
        col_phases = np.angle(v[i : n_r - 1, i])
        phis.extend((col_phases % (2 * np.pi)).tolist())
        d = np.ones(n_r, dtype=complex)
        d[i : n_r - 1] = np.exp(1j * col_phases)
        v = np.conj(d)[:, None] * v
        for l in range(i + 1, n_r):
            psi = float(np.arctan2(v[l, i].real, v[i, i].real))
            psi = abs(psi)  # numerically tiny negatives
            psis.append(psi)
            g = np.eye(n_r)
            c, s = np.cos(psi), np.sin(psi)
            g[i, i] = c
            g[i, l] = s
            g[l, i] = -s
            g[l, l] = c
            v = g @ v
    return np.asarray(phis), np.asarray(psis)


def quantize_angles(
    phis: np.ndarray, psis: np.ndarray, phi_bits: int = 6, psi_bits: int = 4
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize angles to the 802.11ac codebook grid.

    phi_k = pi/2^(b-1) * (k + 1/2) over [0, 2pi);
    psi_k = pi/2^(b+1) * (k + 1/2) over [0, pi/2].
    """
    if phi_bits < 1 or psi_bits < 1:
        raise ValueError("bit widths must be >= 1")
    phi_step = np.pi / 2 ** (phi_bits - 1)
    psi_step = np.pi / 2 ** (psi_bits + 1)
    phi_idx = np.clip(
        np.round(np.asarray(phis) / phi_step - 0.5), 0, 2**phi_bits - 1
    )
    psi_idx = np.clip(
        np.round(np.asarray(psis) / psi_step - 0.5), 0, 2**psi_bits - 1
    )
    return phi_step * (phi_idx + 0.5), psi_step * (psi_idx + 0.5)
