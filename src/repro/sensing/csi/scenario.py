"""Device-free CSI localization scenario (experiment E3).

Reproduces the setting of paper ref. [8]: a user stands/walks at one
of **seven positions** in a room while an AP-client pair exchanges
802.11ac feedback; the learning system classifies the position from
the 624 compressed-angle features.  The paper evaluates **six
patterns** combining user behavior and AP antenna orientation and
reports ~96 % for the best (walking + divergent antennas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sensing.csi.channel import AntennaPattern, Behavior, CsiChannelModel
from repro.sensing.csi.features import csi_feature_vector

#: Seven user positions (metres) spread through a ~6 x 5 m room.
DEFAULT_POSITIONS: Tuple[Tuple[float, float], ...] = (
    (1.0, 1.0),
    (3.0, 1.0),
    (5.0, 1.0),
    (2.0, 2.5),
    (4.0, 2.5),
    (1.5, 4.0),
    (4.5, 4.0),
)


@dataclass(frozen=True)
class ScenarioPattern:
    """One behavior x antenna-orientation combination."""

    name: str
    behavior: Behavior
    antenna: AntennaPattern


def default_patterns() -> List[ScenarioPattern]:
    """The six behavior/orientation patterns of the paper's evaluation."""
    return [
        ScenarioPattern("walk-divergent", Behavior.WALKING, AntennaPattern.DIVERGENT),
        ScenarioPattern("walk-aligned", Behavior.WALKING, AntennaPattern.ALIGNED),
        ScenarioPattern("stand-divergent", Behavior.STANDING, AntennaPattern.DIVERGENT),
        ScenarioPattern("stand-aligned", Behavior.STANDING, AntennaPattern.ALIGNED),
        ScenarioPattern(
            "walk-divergent-noisy", Behavior.WALKING, AntennaPattern.DIVERGENT
        ),
        ScenarioPattern(
            "stand-aligned-noisy", Behavior.STANDING, AntennaPattern.ALIGNED
        ),
    ]


#: Patterns whose name ends in '-noisy' use this capture noise level.
NOISY_STD = 0.08
CLEAN_STD = 0.02


class CsiLocalizationScenario:
    """Generates labeled 624-feature datasets for position classification.

    Args:
        positions: candidate user positions (class labels are indices).
        channel: the room's channel model.
    """

    def __init__(
        self,
        positions: Sequence[Tuple[float, float]] = DEFAULT_POSITIONS,
        channel: CsiChannelModel = None,
    ) -> None:
        if len(positions) < 2:
            raise ValueError("need at least two candidate positions")
        self.positions = list(positions)
        self.channel = channel if channel is not None else CsiChannelModel()

    @property
    def n_positions(self) -> int:
        return len(self.positions)

    def generate_dataset(
        self,
        pattern: ScenarioPattern,
        samples_per_position: int,
        rng: np.random.Generator,
        window: int = 10,
        clutter_paths: int = 0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Labeled dataset of window-aggregated feedback features.

        Each sample is a short capture session of ``window`` feedback
        frames.  Because the compressed angles are circular
        quantities, aggregation is done in the (cos, sin) domain: the
        sample's features are the per-angle mean and standard
        deviation of cos and sin over the window (``4 x 624`` values
        for ``window > 1``; the raw 624 angles for ``window == 1``).
        The temporal fluctuation statistics are what make walking
        users localizable — the gait-induced variance pattern over
        antennas and subcarriers is position-dependent.

        ``clutter_paths > 0`` draws random static clutter *per
        sample*, modelling cross-session environment changes; this is
        deliberately harder than the paper's single-session evaluation
        and is used as an ablation.

        Returns:
            ``(features, labels)`` with labels = position indices.
        """
        if samples_per_position < 1:
            raise ValueError("samples_per_position must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        noise = NOISY_STD if pattern.name.endswith("-noisy") else CLEAN_STD
        xs, ys = [], []
        for label, pos in enumerate(self.positions):
            for __ in range(samples_per_position):
                clutter = (
                    self.channel.random_clutter(rng, clutter_paths)
                    if clutter_paths
                    else None
                )
                frames = np.stack([
                    csi_feature_vector(
                        self.channel.generate(
                            pos,
                            pattern.behavior,
                            pattern.antenna,
                            rng,
                            noise_std=noise,
                            clutter=clutter,
                        )
                    )
                    for __f in range(window)
                ])
                if window == 1:
                    xs.append(frames[0])
                else:
                    cos, sin = np.cos(frames), np.sin(frames)
                    xs.append(
                        np.concatenate([
                            cos.mean(axis=0),
                            sin.mean(axis=0),
                            cos.std(axis=0),
                            sin.std(axis=0),
                        ])
                    )
                ys.append(label)
        return np.asarray(xs), np.asarray(ys, dtype=int)
