"""Feature extraction from a CSI feedback capture.

The paper's CSI-learning system extracts **624 features** per
feedback frame.  With the (4, 3) V matrices of our channel model each
subcarrier contributes 6 phi + 6 psi angles; over 52 subcarriers that
is exactly 52 x 12 = 624.
"""

from __future__ import annotations

import numpy as np

from repro.sensing.csi.feedback import compress_vmatrix, quantize_angles, steering_v

#: The paper's feature dimensionality.
FEATURE_DIMENSION = 624


def csi_feature_vector(
    h: np.ndarray,
    n_streams: int = 3,
    quantize: bool = True,
    phi_bits: int = 6,
    psi_bits: int = 4,
) -> np.ndarray:
    """Compressed-angle feature vector for one capture.

    Args:
        h: complex CSI ``(n_subcarriers, n_tx, n_rx)``.
        n_streams: columns of V fed back per subcarrier.
        quantize: apply the 802.11ac codebook grid (set False for
            ablations on quantization loss).

    Returns:
        1-D float array of ``n_subcarriers * (n_phi + n_psi)`` angles
        (624 for the default 52 x (4, 3) configuration).
    """
    if h.ndim != 3:
        raise ValueError(f"expected (n_sub, n_tx, n_rx) CSI, got shape {h.shape}")
    features = []
    for sub in range(h.shape[0]):
        # The beamformee sees the client->AP direction: transpose so
        # rows are the beamformer's antennas.
        v = steering_v(h[sub].T, n_streams)
        phis, psis = compress_vmatrix(v)
        if quantize:
            phis, psis = quantize_angles(phis, psis, phi_bits, psi_bits)
        features.append(np.concatenate([phis, psis]))
    return np.concatenate(features)
