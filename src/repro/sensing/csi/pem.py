"""Electronic Frog Eye: crowd counting by CSI (survey ref. [29]).

The paper's §II.B: *"the feature quantity called Percentage of nonzero
Elements (PEM) is defined, the magnitude of the fluctuation in the
propagation path of radio waves is quantified, and the number of
people in the room is estimated based on the Gray model."*

Implementation of both halves:

- :func:`percentage_nonzero_elements` — from a window of CSI frames,
  build the dilated variation matrix and report the fraction of
  entries whose variation exceeds a noise threshold.  More moving
  people disturb more subcarrier/antenna paths, so PEM grows
  monotonically with the crowd.
- :class:`GreyVerhulstEstimator` — the Grey-model regression of PEM
  onto crowd counts (a saturating Verhulst-style curve fitted in a
  least-squares sense), used to invert PEM back to a head count.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sensing.csi.channel import AntennaPattern, Behavior, CsiChannelModel


def percentage_nonzero_elements(
    frames: np.ndarray, noise_threshold: float = 0.05
) -> float:
    """PEM of a CSI window.

    Args:
        frames: complex CSI ``(n_frames, n_sub, n_tx, n_rx)``.
        noise_threshold: per-element variation level attributed to
            noise (relative to the mean amplitude).

    Returns:
        Fraction of (subcarrier, tx, rx) elements whose temporal
        standard deviation exceeds the threshold.
    """
    if frames.ndim != 4 or frames.shape[0] < 2:
        raise ValueError(
            "expected (n_frames >= 2, n_sub, n_tx, n_rx) CSI, got "
            f"shape {frames.shape}"
        )
    amplitude = np.abs(frames)
    variation = amplitude.std(axis=0)
    scale = max(float(amplitude.mean()), 1e-12)
    return float((variation > noise_threshold * scale).mean())


class CrowdCsiScenario:
    """Generates CSI windows for rooms with moving crowds.

    Each person is an independent walking scatterer; a window of
    frames captures their combined fluctuation.
    """

    def __init__(
        self,
        channel: Optional[CsiChannelModel] = None,
        window: int = 12,
        area: Tuple[float, float] = (6.0, 5.0),
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.channel = channel if channel is not None else CsiChannelModel()
        self.window = window
        self.area = area

    def capture(self, n_people: int, rng: np.random.Generator) -> np.ndarray:
        """One CSI window with ``n_people`` walking in the room.

        The channel is the room's static part plus one walking-scatterer
        contribution per person (superposition of their reflected
        paths), plus receiver noise.
        """
        if n_people < 0:
            raise ValueError("n_people cannot be negative")
        anchors = [
            (float(rng.uniform(0.5, self.area[0] - 0.5)),
             float(rng.uniform(0.5, self.area[1] - 0.5)))
            for __ in range(n_people)
        ]
        # The static room: a 'person' far outside contributes ~nothing.
        far = (1e4, 1e4)
        static = self.channel.generate(
            far, Behavior.STANDING, AntennaPattern.ALIGNED,
            np.random.default_rng(0), noise_std=0.0,
        )
        frames = []
        for __f in range(self.window):
            h = static.copy()
            for anchor in anchors:
                with_person = self.channel.generate(
                    anchor, Behavior.WALKING, AntennaPattern.ALIGNED, rng,
                    noise_std=0.0,
                )
                h = h + (with_person - static)
            h = h + 0.02 * (
                rng.normal(size=h.shape) + 1j * rng.normal(size=h.shape)
            )
            frames.append(h)
        return np.stack(frames)


class GreyVerhulstEstimator:
    """Grey/Verhulst-style saturating fit of PEM vs. crowd count.

    Fits ``pem = a * count / (b + count)`` by least squares on the
    linearized form, then inverts it for estimation.  The saturation
    reflects the physics: once most propagation paths are disturbed,
    additional people barely move the PEM.
    """

    def __init__(self) -> None:
        self.a_: Optional[float] = None
        self.b_: Optional[float] = None
        self._pem0: float = 0.0

    def fit(
        self, pems: Sequence[float], counts: Sequence[int]
    ) -> "GreyVerhulstEstimator":
        pems = np.asarray(pems, dtype=float)
        counts = np.asarray(counts, dtype=float)
        if len(pems) != len(counts) or len(pems) < 3:
            raise ValueError("need >= 3 matched (pem, count) samples")
        self._pem0 = float(pems[counts == 0].mean()) if (counts == 0).any() else 0.0
        mask = counts > 0
        x = counts[mask]
        y = np.clip(pems[mask] - self._pem0, 1e-6, None)
        # Linearize: 1/y = b/a * (1/x) + 1/a.
        design = np.stack([1.0 / x, np.ones_like(x)]).T
        coef, *__ = np.linalg.lstsq(design, 1.0 / y, rcond=None)
        slope, intercept = coef
        if intercept <= 0:
            intercept = 1e-6
        self.a_ = 1.0 / intercept
        self.b_ = slope * self.a_
        return self

    def predict_pem(self, count: float) -> float:
        """Forward model: expected PEM for a head count."""
        if self.a_ is None:
            raise RuntimeError("estimator has not been fitted")
        if count <= 0:
            return self._pem0
        return min(1.0, self._pem0 + self.a_ * count / (self.b_ + count))

    def estimate_count(self, pem: float, max_count: int = 50) -> int:
        """Invert PEM to the nearest integer head count."""
        if self.a_ is None:
            raise RuntimeError("estimator has not been fitted")
        candidates = np.arange(0, max_count + 1)
        errors = [abs(self.predict_pem(c) - pem) for c in candidates]
        return int(candidates[int(np.argmin(errors))])
