"""RSSI sensing: train-car congestion and room occupancy simulators."""

from repro.sensing.rssi.train import CongestionLevel, TrainObservation, TrainScenario
from repro.sensing.rssi.room import RoomObservation, RoomOccupancyScenario

__all__ = [
    "TrainScenario",
    "TrainObservation",
    "CongestionLevel",
    "RoomOccupancyScenario",
    "RoomObservation",
]
