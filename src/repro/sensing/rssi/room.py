"""Room-occupancy RSSI scenario (paper ref. [66], experiment E5).

An already-deployed IEEE 802.15.4 WSN measures, in Choco-synchronized
rounds, the **inter-node RSSI** (people crossing a link attenuate it)
and the **surrounding RSSI** (each person carries ~1-2 radio devices
that raise the ambient level).  The crowd-counting algorithm in
:mod:`repro.contexts.crowd` estimates the number of people from the
former and the number of devices from the latter, exactly the split
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.wsn.choco import ChocoCollector, ChocoRound
from repro.wsn.radio import FadingModel, LogDistancePathLoss, RadioModel
from repro.wsn.topology import GridTopology


@dataclass
class RoomObservation:
    """One synchronized round plus its ground truth."""

    round: ChocoRound
    n_people: int
    n_devices: int

    def feature_vector(self) -> np.ndarray:
        """[mean inter-node RSSI, std inter-node, mean surrounding,
        fraction of strongly attenuated links]."""
        inter = np.array(list(self.round.inter_node_rssi.values()))
        surrounding = np.array(list(self.round.surrounding_rssi.values()))
        if inter.size == 0:
            raise ValueError("observation has no inter-node links")
        weak = float((inter < np.median(inter) - 5.0).mean())
        return np.array(
            [inter.mean(), inter.std(), surrounding.mean(), weak]
        )


class RoomOccupancyScenario:
    """Generates occupancy-labeled Choco rounds for a room.

    Args:
        rows/cols/spacing: node grid deployed in the room.
        max_people: largest head count generated.
        blocking_probability: chance a given person shadows a given
            link in a round.
        per_person_attenuation_db: attenuation added per blocking
            person.
        devices_per_person: mean radio devices carried per person.
        device_power_db: surrounding-RSSI rise per active device.
    """

    def __init__(
        self,
        rows: int = 3,
        cols: int = 4,
        spacing: float = 2.0,
        max_people: int = 10,
        blocking_probability: float = 0.18,
        per_person_attenuation_db: float = 4.0,
        devices_per_person: float = 1.3,
        device_power_db: float = 1.2,
        shadowing_sigma_db: float = 1.5,
    ) -> None:
        if max_people < 1:
            raise ValueError("max_people must be >= 1")
        self.topology = GridTopology(rows, cols, spacing, comm_range=spacing * 10)
        self.radio = RadioModel(
            tx_power_dbm=0.0,
            path_loss=LogDistancePathLoss(exponent=2.5),
            fading=FadingModel(shadowing_sigma_db=shadowing_sigma_db),
        )
        self.max_people = max_people
        self.blocking_probability = blocking_probability
        self.per_person_attenuation_db = per_person_attenuation_db
        self.devices_per_person = devices_per_person
        self.device_power_db = device_power_db

    def observe(
        self, n_people: int, rng: np.random.Generator, t: float = 0.0
    ) -> RoomObservation:
        """One synchronized round with ``n_people`` in the room."""
        if not 0 <= n_people <= self.max_people:
            raise ValueError(
                f"n_people must be in [0, {self.max_people}], got {n_people}"
            )
        n_devices = int(rng.poisson(self.devices_per_person * n_people))

        def attenuation(i: int, j: int, t_: float) -> float:
            blockers = int(
                rng.binomial(n_people, self.blocking_probability)
            ) if n_people else 0
            return blockers * self.per_person_attenuation_db

        def ambient(node: int, t_: float) -> float:
            # Devices near this node raise the ambient level; a simple
            # log-like saturation keeps it physical.
            return self.device_power_db * np.log1p(n_devices) * 3.0

        collector = ChocoCollector(
            self.topology,
            self.radio,
            extra_attenuation_db=attenuation,
            ambient_offset_dbm=ambient,
        )
        return RoomObservation(
            round=collector.run_round(t, rng),
            n_people=n_people,
            n_devices=n_devices,
        )

    def generate_dataset(
        self, samples_per_count: int, rng: np.random.Generator
    ) -> List[RoomObservation]:
        """Balanced dataset over head counts 0..max_people."""
        if samples_per_count < 1:
            raise ValueError("samples_per_count must be >= 1")
        observations = []
        for count in range(self.max_people + 1):
            for __ in range(samples_per_count):
                observations.append(self.observe(count, rng))
        return observations
