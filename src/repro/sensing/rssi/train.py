"""Bluetooth-RSSI train scenario (paper ref. [65], experiment E4).

Simulates a train of several cars: each car holds a number of
passengers determined by its congestion level; a subset of passengers
carry participating smartphones; fixed reference nodes with known car
positions are installed per car.  Every phone measures Bluetooth RSSI
to the reference nodes and to other phones.

Physics captured (these drive the estimation algorithm of
:mod:`repro.contexts.congestion`):

- log-distance attenuation along the train axis;
- a large per-door penalty between cars ("doors between train cars
  significantly attenuate the signal");
- body-shadowing that grows with the number of people in the cars the
  signal crosses (this carries the congestion information);
- per-sample log-normal fading.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


class CongestionLevel(enum.IntEnum):
    """Three-level congestion as in the paper."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2


#: Passenger head counts sampled per level (per car).
LEVEL_OCCUPANCY = {
    CongestionLevel.LOW: (2, 12),
    CongestionLevel.MEDIUM: (13, 35),
    CongestionLevel.HIGH: (36, 70),
}


@dataclass
class TrainObservation:
    """One synchronized measurement snapshot.

    Attributes:
        phone_car: ground-truth car index of each phone.
        ref_rssi: (phone, reference-node) -> RSSI dBm.
        phone_rssi: (phone i, phone j) -> RSSI dBm (i < j measured both
            ways; symmetric up to fading).
        car_levels: ground-truth congestion level per car.
        car_occupancy: ground-truth head count per car.
    """

    phone_car: Dict[int, int]
    ref_rssi: Dict[Tuple[int, int], float]
    phone_rssi: Dict[Tuple[int, int], float]
    car_levels: List[CongestionLevel]
    car_occupancy: List[int]

    @property
    def n_phones(self) -> int:
        return len(self.phone_car)


class TrainScenario:
    """Generates :class:`TrainObservation` snapshots.

    Args:
        n_cars: cars in the train.
        car_length_m: length of one car.
        refs_per_car: fixed reference nodes per car (positions known).
        tx_power_dbm: Bluetooth TX power.
        door_penalty_db: attenuation per inter-car door crossed.
        body_attenuation_db: attenuation per person per 10 occupants
            in crossed cars.
        shadowing_sigma_db: log-normal fading sigma.
        phone_bias_sigma_db: per-phone systematic RSSI offset (device
            heterogeneity: antenna gain, pocket vs. hand, case).  This
            is the dominant error source of real smartphone RSSI
            positioning — it shifts *all* of a phone's measurements
            coherently, so averaging over reference nodes cannot
            remove it.
    """

    def __init__(
        self,
        n_cars: int = 6,
        car_length_m: float = 20.0,
        refs_per_car: int = 1,
        tx_power_dbm: float = 0.0,
        path_loss_exponent: float = 2.2,
        door_penalty_db: float = 10.0,
        body_attenuation_db: float = 1.5,
        shadowing_sigma_db: float = 15.0,
        phone_bias_sigma_db: float = 12.0,
    ) -> None:
        if n_cars < 2:
            raise ValueError(f"need at least 2 cars, got {n_cars}")
        if refs_per_car < 1:
            raise ValueError("need at least one reference node per car")
        self.n_cars = n_cars
        self.car_length_m = car_length_m
        self.refs_per_car = refs_per_car
        self.tx_power_dbm = tx_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.door_penalty_db = door_penalty_db
        self.body_attenuation_db = body_attenuation_db
        self.shadowing_sigma_db = shadowing_sigma_db
        self.phone_bias_sigma_db = phone_bias_sigma_db

    # -- geometry helpers --------------------------------------------------
    def reference_positions(self) -> Dict[int, Tuple[int, float]]:
        """ref_id -> (car, x position along the train)."""
        refs = {}
        rid = 0
        for car in range(self.n_cars):
            for k in range(self.refs_per_car):
                frac = (k + 1) / (self.refs_per_car + 1)
                refs[rid] = (car, (car + frac) * self.car_length_m)
                rid += 1
        return refs

    def car_of_x(self, x: float) -> int:
        return min(int(x / self.car_length_m), self.n_cars - 1)

    # -- propagation -------------------------------------------------------
    def _rssi(
        self,
        x1: float,
        x2: float,
        occupancy: List[int],
        rng: np.random.Generator,
    ) -> float:
        d = max(abs(x1 - x2), 0.5)
        loss = 40.0 + 10.0 * self.path_loss_exponent * math.log10(d)
        car1, car2 = sorted((self.car_of_x(x1), self.car_of_x(x2)))
        doors = car2 - car1
        loss += doors * self.door_penalty_db
        # Body shadowing from the people in every car the link crosses.
        people = sum(occupancy[c] for c in range(car1, car2 + 1))
        loss += self.body_attenuation_db * people / 10.0
        fade = rng.normal(0.0, self.shadowing_sigma_db)
        return self.tx_power_dbm - loss + fade

    # -- snapshot generation -------------------------------------------------
    def generate(
        self,
        car_levels: List[CongestionLevel],
        participation: float,
        rng: np.random.Generator,
    ) -> TrainObservation:
        """One snapshot for given per-car congestion levels.

        Args:
            car_levels: length ``n_cars``.
            participation: fraction of passengers carrying the app.
        """
        if len(car_levels) != self.n_cars:
            raise ValueError(
                f"need {self.n_cars} car levels, got {len(car_levels)}"
            )
        if not 0.0 < participation <= 1.0:
            raise ValueError(f"participation must be in (0, 1], got {participation}")
        occupancy = [
            int(rng.integers(*LEVEL_OCCUPANCY[level])) for level in car_levels
        ]
        phone_positions: Dict[int, float] = {}
        phone_car: Dict[int, int] = {}
        pid = 0
        for car, n_people in enumerate(occupancy):
            n_phones = max(1, int(round(n_people * participation)))
            for __ in range(n_phones):
                x = (car + float(rng.uniform(0.05, 0.95))) * self.car_length_m
                phone_positions[pid] = x
                phone_car[pid] = car
                pid += 1
        bias = {
            p: float(rng.normal(0.0, self.phone_bias_sigma_db))
            for p in phone_positions
        }
        refs = self.reference_positions()
        ref_rssi = {
            (p, r): self._rssi(px, rx, occupancy, rng) + bias[p]
            for p, px in phone_positions.items()
            for r, (__, rx) in refs.items()
        }
        phone_rssi = {}
        phones = sorted(phone_positions)
        for i, p1 in enumerate(phones):
            for p2 in phones[i + 1 :]:
                phone_rssi[(p1, p2)] = (
                    self._rssi(
                        phone_positions[p1], phone_positions[p2], occupancy, rng
                    )
                    + 0.5 * (bias[p1] + bias[p2])
                )
        return TrainObservation(
            phone_car=phone_car,
            ref_rssi=ref_rssi,
            phone_rssi=phone_rssi,
            car_levels=list(car_levels),
            car_occupancy=occupancy,
        )

    def random_levels(self, rng: np.random.Generator) -> List[CongestionLevel]:
        """Uniformly random per-car congestion levels."""
        return [CongestionLevel(int(rng.integers(0, 3))) for __ in range(self.n_cars)]
