"""Trace export, loading, and per-node cost reports.

The JSONL trace format is one Chrome trace-event object per line:

- ``ph: "X"`` — a finished span (``ts``/``dur`` in microseconds of
  *simulated* time);
- ``ph: "i"`` — an instant event (fault injections, dead-set marks);
- ``ph: "C"`` — a final counter sample per metric series, with the
  series labels and ``value`` (or ``count``/``sum`` for histograms)
  in ``args``.

:func:`to_chrome_json` wraps the same events into the
``{"traceEvents": [...]}`` envelope Chrome's ``about:tracing`` and
Perfetto load directly.

The report side turns the ``net.rx_values`` / ``net.tx_values``
counter samples back into the paper's Fig. 10 artifact: a per-node
communication-cost table (values received per node), optionally as a
side-by-side comparison of two placements (optimal vs. feasible).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import Histogram

#: Series names the cost report aggregates, in column order.
COST_SERIES = ("net.rx_values", "net.tx_values")

VALID_PHASES = ("X", "i", "C")


def _metric_events(telemetry, ts_us: float) -> List[Dict]:
    """One ``ph:"C"`` event per metric series, in canonical order."""
    events: List[Dict] = []
    for name, labels, instrument in telemetry.metrics.series():
        args: Dict[str, object] = dict(labels)
        args["kind"] = instrument.kind
        if isinstance(instrument, Histogram):
            args["count"] = instrument.count
            args["sum"] = instrument.sum
            args["p50"] = instrument.quantile_bound(0.5)
            args["p99"] = instrument.quantile_bound(0.99)
        else:
            args["value"] = instrument.value
        events.append({
            "name": name,
            "cat": "repro",
            "ph": "C",
            "ts": ts_us,
            "pid": 0,
            "tid": 0,
            "args": args,
        })
    return events


def export_events(telemetry, include_wall: bool = False) -> List[Dict]:
    """All trace events of a telemetry session: finished spans and
    instants first (completion order), then one counter sample per
    metric series.  Runs the registry's collectors first."""
    telemetry.metrics.collect()
    span_events = [
        rec.to_chrome(include_wall=include_wall)
        for rec in telemetry.tracer.events
    ]
    final_ts = max(
        (e["ts"] + e.get("dur", 0.0) for e in span_events), default=0.0
    )
    return span_events + _metric_events(telemetry, final_ts)


def export_jsonl(telemetry, include_wall: bool = False) -> str:
    """Canonical JSONL serialization of :func:`export_events` —
    byte-identical across runs of the same seed (wall times excluded
    unless requested)."""
    return "\n".join(
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in export_events(telemetry, include_wall=include_wall)
    )


def write_trace(
    telemetry, path, include_wall: bool = False
) -> Path:
    """Write the session's JSONL trace to ``path``."""
    path = Path(path)
    path.write_text(export_jsonl(telemetry, include_wall=include_wall) + "\n")
    return path


def to_chrome_json(events: Sequence[Dict]) -> str:
    """The ``{"traceEvents": [...]}`` envelope Chrome tracing loads."""
    return json.dumps({"traceEvents": list(events)}, sort_keys=True)


def load_trace_jsonl(text: str) -> List[Dict]:
    """Parse a JSONL trace; raises ``ValueError`` naming the first
    offending line on malformed input."""
    events: List[Dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from None
        errors = validate_event(event)
        if errors:
            raise ValueError(f"line {lineno}: {'; '.join(errors)}")
        events.append(event)
    return events


def load_trace_file(path) -> List[Dict]:
    return load_trace_jsonl(Path(path).read_text())


def validate_event(event) -> List[str]:
    """Schema errors of one trace event ([] when valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    if not isinstance(event.get("name"), str) or not event.get("name"):
        errors.append("missing or empty 'name'")
    phase = event.get("ph")
    if phase not in VALID_PHASES:
        errors.append(f"'ph' must be one of {VALID_PHASES}, got {phase!r}")
    if not isinstance(event.get("ts"), (int, float)):
        errors.append("'ts' must be a number")
    if phase == "X" and not isinstance(event.get("dur"), (int, float)):
        errors.append("complete spans need a numeric 'dur'")
    if not isinstance(event.get("args", {}), dict):
        errors.append("'args' must be an object")
    for field in ("pid", "tid"):
        if field in event and not isinstance(event[field], int):
            errors.append(f"'{field}' must be an integer")
    return errors


# -- aggregation ------------------------------------------------------------
def counter_samples(events: Sequence[Dict], name: str) -> List[Dict]:
    """The ``args`` of every ``ph:"C"`` sample of a series name (last
    write wins per label set when a trace holds repeated exports)."""
    latest: Dict[tuple, Dict] = {}
    for event in events:
        if event.get("ph") == "C" and event.get("name") == name:
            args = event.get("args", {})
            key = tuple(sorted(
                (k, str(v)) for k, v in args.items()
                if k not in ("value", "count", "sum", "p50", "p99", "kind")
            ))
            latest[key] = args
    return [latest[key] for key in sorted(latest)]


def per_node_costs(events: Sequence[Dict]) -> Dict[int, Dict[str, float]]:
    """Per-node communication cost from a trace's ``net.*`` samples.

    Returns ``{node_id: {"rx_values": ..., "tx_values": ...}}`` — the
    Fig. 10 quantity (values a node receives per run) plus the transmit
    side.
    """
    costs: Dict[int, Dict[str, float]] = {}
    for series in COST_SERIES:
        for args in counter_samples(events, series):
            if "node" not in args:
                continue
            node = int(args["node"])
            costs.setdefault(node, {}).setdefault(series.split(".", 1)[1], 0.0)
            costs[node][series.split(".", 1)[1]] += float(args["value"])
    return costs


def cost_totals(costs: Dict[int, Dict[str, float]]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for per_node in costs.values():
        for key, value in per_node.items():
            totals[key] = totals.get(key, 0.0) + value
    return totals


def cost_table_markdown(
    costs: Dict[int, Dict[str, float]], title: str = "Per-node communication cost"
) -> str:
    """Fig.-10-style markdown table: one row per node, totals + peak."""
    lines = [f"### {title}", "", "| node | rx values | tx values |",
             "|---:|---:|---:|"]
    peak_node, peak_rx = None, -1.0
    for node in sorted(costs):
        rx = costs[node].get("rx_values", 0.0)
        tx = costs[node].get("tx_values", 0.0)
        if rx > peak_rx:
            peak_node, peak_rx = node, rx
        lines.append(f"| {node} | {rx:.0f} | {tx:.0f} |")
    totals = cost_totals(costs)
    lines.append(
        f"| **total** | **{totals.get('rx_values', 0.0):.0f}** "
        f"| **{totals.get('tx_values', 0.0):.0f}** |"
    )
    if peak_node is not None:
        lines += ["", f"Peak receiver: node {peak_node} "
                      f"({peak_rx:.0f} values) — the paper's 'maximal "
                      "communication cost of the sensor nodes'."]
    return "\n".join(lines)


def cost_comparison_markdown(
    base: Dict[int, Dict[str, float]],
    other: Dict[int, Dict[str, float]],
    base_label: str = "optimal",
    other_label: str = "feasible",
) -> str:
    """Side-by-side per-node rx-value comparison of two placements —
    the shape of the paper's Fig. 10 (optimal vs. feasible sets)."""
    nodes = sorted(set(base) | set(other))
    lines = [
        f"### Per-node cost: {base_label} vs. {other_label}",
        "",
        f"| node | rx ({base_label}) | rx ({other_label}) | ratio |",
        "|---:|---:|---:|---:|",
    ]
    for node in nodes:
        a = base.get(node, {}).get("rx_values", 0.0)
        b = other.get(node, {}).get("rx_values", 0.0)
        ratio = f"{b / a:.2f}x" if a > 0 else ("-" if b == 0 else "inf")
        lines.append(f"| {node} | {a:.0f} | {b:.0f} | {ratio} |")
    a_peak = max((v.get("rx_values", 0.0) for v in base.values()), default=0.0)
    b_peak = max((v.get("rx_values", 0.0) for v in other.values()), default=0.0)
    lines += [
        f"| **peak** | **{a_peak:.0f}** | **{b_peak:.0f}** | "
        f"**{(b_peak / a_peak):.2f}x** |" if a_peak else
        f"| **peak** | **{a_peak:.0f}** | **{b_peak:.0f}** | - |",
    ]
    return "\n".join(lines)


def span_summary(events: Sequence[Dict]) -> Dict[str, int]:
    """Span/instant counts per name, in first-seen order."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.get("ph") in ("X", "i"):
            name = event["name"]
            counts[name] = counts.get(name, 0) + 1
    return counts


def trace_summary_markdown(
    events: Sequence[Dict], title: str = "Trace summary"
) -> str:
    """Human-readable markdown digest of one trace."""
    spans = span_summary(events)
    n_samples = sum(1 for e in events if e.get("ph") == "C")
    ts_values = [e["ts"] for e in events if e.get("ph") in ("X", "i")]
    lines = [
        f"# {title}", "",
        f"- events: {len(events)} ({sum(spans.values())} spans/instants, "
        f"{n_samples} metric samples)",
    ]
    if ts_values:
        lines.append(
            f"- simulated time range: {min(ts_values) / 1e6:.6f}s – "
            f"{max(ts_values) / 1e6:.6f}s"
        )
    if spans:
        lines += ["", "| span | count |", "|---|---:|"]
        lines += [f"| {name} | {count} |" for name, count in spans.items()]
    costs = per_node_costs(events)
    if costs:
        lines += ["", cost_table_markdown(costs)]
    return "\n".join(lines)
