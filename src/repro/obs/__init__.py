"""Unified telemetry layer: tracing, metrics, and cost reports.

Three pieces, designed to be wired in lazily (no module in the rest of
the package imports :mod:`repro.obs` at import time — instrumented
constructors resolve :func:`current` when they run):

- :mod:`repro.obs.trace` — sim-clock-aware hierarchical spans,
  serialized as Chrome-trace-event JSONL;
- :mod:`repro.obs.metrics` — labeled counters / gauges / fixed-bucket
  histograms with pull collectors and a zero-overhead null backend;
- :mod:`repro.obs.report` — trace export/load plus the per-node
  communication-cost tables reproducing the paper's Fig. 10 shape;
- :mod:`repro.obs.timeline` — the flight recorder: a fixed-capacity
  ring-buffer time series of registry deltas and rolling-window
  aggregates, sampled on a pluggable deterministic clock;
- :mod:`repro.obs.watch` — the SLO watchdog: declarative
  threshold/rate/quantile/absence/trend rules evaluated at each
  flight-recorder tick, firing deterministic JSONL alerts.

Typical use::

    from repro import obs

    with obs.session() as tel:
        run_scenario()                  # subsystems built here report in
    obs.write_trace(tel, "trace.jsonl")
    print(obs.cost_table_markdown(obs.per_node_costs(obs.export_events(tel))))
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    merge_snapshots,
)
from repro.obs.report import (
    cost_comparison_markdown,
    cost_table_markdown,
    cost_totals,
    counter_samples,
    export_events,
    export_jsonl,
    load_trace_file,
    load_trace_jsonl,
    per_node_costs,
    span_summary,
    to_chrome_json,
    trace_summary_markdown,
    validate_event,
    write_trace,
)
from repro.obs.runtime import (
    NULL,
    NullTelemetry,
    Telemetry,
    current,
    install,
    session,
    uninstall,
)
from repro.obs.timeline import (
    DEFAULT_CAPACITY,
    DEFAULT_WINDOW,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    TimelineSample,
    flight_recorder,
    quantile_from_counts,
    schedule_sampling,
    series_key,
)
from repro.obs.trace import NullTracer, SpanRecord, Tracer, merge_digests
from repro.obs.watch import (
    Alert,
    Rule,
    Watchdog,
    health_table,
    load_rules,
    parse_rules,
)

__all__ = [
    "Alert",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "DEFAULT_WINDOW",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NULL_RECORDER",
    "NullFlightRecorder",
    "NullMetrics",
    "NullTelemetry",
    "NullTracer",
    "Rule",
    "SpanRecord",
    "Telemetry",
    "TimelineSample",
    "Tracer",
    "Watchdog",
    "cost_comparison_markdown",
    "cost_table_markdown",
    "cost_totals",
    "counter_samples",
    "current",
    "export_events",
    "export_jsonl",
    "flight_recorder",
    "health_table",
    "install",
    "load_rules",
    "load_trace_file",
    "load_trace_jsonl",
    "merge_digests",
    "merge_snapshots",
    "parse_rules",
    "per_node_costs",
    "quantile_from_counts",
    "schedule_sampling",
    "series_key",
    "session",
    "span_summary",
    "to_chrome_json",
    "trace_summary_markdown",
    "uninstall",
    "validate_event",
    "write_trace",
]
