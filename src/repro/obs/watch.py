"""Declarative SLO watchdog over the flight recorder.

A :class:`Watchdog` is an observer for
:class:`repro.obs.timeline.FlightRecorder`: at every sample tick it
evaluates a list of :class:`Rule` objects against the tick's series
points and fires :class:`Alert` records.  Firing is **edge-triggered
with hysteresis**: a rule must violate for ``windows`` *consecutive*
ticks before one alert fires, and it must recover (one clean tick)
before it can fire again — so a sustained breach yields one alert,
not one per tick.

Rule kinds (all compare with ``op`` ∈ ``>``, ``>=``, ``<``, ``<=``):

- ``threshold`` — the series' current value (counter/gauge level,
  histogram observation count) vs ``value``.
- ``rate`` — the rolling-window rate (counter/histogram throughput;
  gauges: rate of change of the level) vs ``value``.
- ``quantile`` — a histogram's windowed-delta quantile bound
  (``quantile`` field, default 0.99) vs ``value`` — the p99 latency
  budget rule.
- ``absence`` — fires when the series' windowed delta is **zero**
  (no activity) — a liveness check; ``op``/``value`` are ignored.
- ``trend`` — fires when the per-tick delta has satisfied
  ``delta op value`` for ``windows`` consecutive ticks — e.g.
  ``train.loss`` with ``op=">="``, ``value=0`` is "loss non-decreasing
  for N windows" (the drift watch).

A rule's ``labels`` is a subset filter: all series whose name matches
and whose labels contain every filter pair are aggregated (values and
deltas summed; for ``quantile`` rules the windowed bucket counts are
summed before the quantile is taken).  An unlabeled rule over
``serve.plan_fallbacks`` therefore watches fallbacks across every
tenant and reason at once.

Alerts serialize to the same canonical JSONL + sha256 digest scheme
as the tracer and the timeline — a seeded run fires byte-identical
alerts every time.  When the watchdog is built over a live telemetry
backend each firing also emits a ``watch.alert`` tracer instant and a
``watch.alerts{rule,severity}`` counter increment, so alerts are
visible in traces and ``/metrics`` too.

Rules load from JSON (:func:`load_rules` / :func:`parse_rules`)::

    {"rules": [
      {"name": "fallbacks", "series": "serve.plan_fallbacks",
       "kind": "rate", "op": ">", "value": 0.0,
       "severity": "critical"},
      {"name": "p99-latency", "series": "serve.latency_s",
       "kind": "quantile", "quantile": 0.99, "op": ">",
       "value": 0.25, "windows": 2}
    ]}

This module never imports ``time`` or ``repro.sim`` (lint-enforced):
it sees time only through the samples it is handed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.timeline import quantile_from_counts

OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

KINDS = ("threshold", "rate", "absence", "trend", "quantile")
SEVERITIES = ("warning", "critical")


@dataclass(frozen=True)
class Rule:
    """One declarative SLO rule (see module docstring for semantics)."""

    name: str
    series: str
    kind: str = "threshold"
    op: str = ">"
    value: float = 0.0
    labels: Tuple[Tuple[str, str], ...] = ()
    windows: int = 1
    severity: str = "warning"
    quantile: float = 0.99

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule needs a non-empty name")
        if not self.series:
            raise ValueError(f"rule {self.name!r} needs a series")
        if self.kind not in KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(KINDS)})"
            )
        if self.op not in OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown op {self.op!r} "
                f"(expected one of {', '.join(OPS)})"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity {self.severity!r} "
                f"(expected one of {', '.join(SEVERITIES)})"
            )
        if self.windows < 1:
            raise ValueError(
                f"rule {self.name!r}: windows must be >= 1, "
                f"got {self.windows}"
            )
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(
                f"rule {self.name!r}: quantile must be in [0, 1], "
                f"got {self.quantile}"
            )

    def matches(self, point) -> bool:
        """Does a series point pass this rule's name + label filter?"""
        if point.name != self.series:
            return False
        labels = {str(k): str(v) for k, v in point.labels.items()}
        return all(labels.get(k) == v for k, v in self.labels)


@dataclass(frozen=True)
class Alert:
    """One fired alert — everything needed to reconstruct why."""

    index: int
    t: float
    rule: str
    series: str
    kind: str
    severity: str
    observed: float
    op: str
    value: float

    def to_json(self) -> str:
        doc = {
            "i": self.index, "t": float(self.t), "rule": self.rule,
            "series": self.series, "kind": self.kind,
            "severity": self.severity,
            "observed": _finite(self.observed),
            "op": self.op, "value": float(self.value),
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _finite(value: float):
    if value != value:
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return float(value)


class Watchdog:
    """Evaluate :class:`Rule` objects at every flight-recorder tick.

    Attach with ``recorder.attach(watchdog)``; or call
    :meth:`observe` directly with a sample.  ``telemetry`` (optional)
    receives a tracer instant + counter per firing.
    """

    def __init__(self, rules, telemetry=None) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate rule names: {', '.join(dupes)}")
        self.telemetry = telemetry
        self.alerts: List[Alert] = []
        #: consecutive violating ticks per rule.
        self._streak: Dict[str, int] = {r.name: 0 for r in self.rules}
        #: rules currently in the fired state (until a clean tick).
        self._active: Dict[str, Alert] = {}

    # -- evaluation ----------------------------------------------------------
    def observe(self, sample, recorder=None) -> List[Alert]:
        """Evaluate every rule against one sample; returns the alerts
        fired at this tick (also appended to :attr:`alerts`)."""
        fired: List[Alert] = []
        for rule in self.rules:
            observed, violating = self._evaluate(rule, sample)
            if violating:
                self._streak[rule.name] += 1
            else:
                self._streak[rule.name] = 0
                self._active.pop(rule.name, None)
                continue
            if self._streak[rule.name] < rule.windows:
                continue
            if rule.name in self._active:
                continue  # still breached; already fired
            alert = Alert(
                index=sample.index, t=sample.t, rule=rule.name,
                series=rule.series, kind=rule.kind,
                severity=rule.severity, observed=observed,
                op=rule.op, value=rule.value,
            )
            self._active[rule.name] = alert
            self.alerts.append(alert)
            fired.append(alert)
            self._emit(alert)
        return fired

    def _evaluate(self, rule: Rule, sample) -> Tuple[float, bool]:
        points = [p for p in sample.points.values() if rule.matches(p)]
        if not points:
            # A series that has never existed violates an absence rule
            # (nothing is flowing) and passes every other kind.
            return (0.0, rule.kind == "absence")
        cmp = OPS[rule.op]
        if rule.kind == "threshold":
            observed = sum(p.value for p in points)
            return observed, cmp(observed, rule.value)
        if rule.kind == "rate":
            observed = sum(p.rate for p in points)
            return observed, cmp(observed, rule.value)
        if rule.kind == "absence":
            observed = sum(p.delta for p in points)
            return observed, observed == 0
        if rule.kind == "trend":
            observed = sum(p.delta for p in points)
            return observed, cmp(observed, rule.value)
        # quantile: sum windowed bucket counts across matching series.
        hists = [p for p in points if p.kind == "histogram"]
        if not hists:
            return (float("nan"), False)
        buckets = hists[0].buckets
        counts = [0] * len(hists[0].window_counts)
        usable = False
        for p in hists:
            if p.buckets != buckets or p.window_counts is None:
                continue
            counts = [a + b for a, b in zip(counts, p.window_counts)]
            usable = True
        if not usable:
            return (float("nan"), False)
        observed = quantile_from_counts(buckets, counts, rule.quantile)
        if observed != observed:  # empty window: nothing to judge
            return observed, False
        return observed, cmp(observed, rule.value)

    def _emit(self, alert: Alert) -> None:
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return
        tel.tracer.instant(
            "watch.alert", rule=alert.rule, series=alert.series,
            severity=alert.severity, observed=_finite(alert.observed),
        )
        tel.metrics.counter(
            "watch.alerts", rule=alert.rule, severity=alert.severity
        ).inc()

    # -- read side -----------------------------------------------------------
    def active(self) -> List[Alert]:
        """Alerts whose rules are still breached, rule order."""
        return [
            self._active[r.name] for r in self.rules
            if r.name in self._active
        ]

    def critical_count(self) -> int:
        return sum(1 for a in self.alerts if a.severity == "critical")

    def clear(self) -> None:
        self.alerts = []
        self._streak = {r.name: 0 for r in self.rules}
        self._active = {}

    # -- export --------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Canonical JSON-lines log of every fired alert, in firing
        order — byte-identical for a seeded run."""
        return "\n".join(a.to_json() for a in self.alerts)

    def digest(self) -> str:
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()


# -- rule files ---------------------------------------------------------------

_RULE_KEYS = {
    "name", "series", "kind", "op", "value", "labels", "windows",
    "severity", "quantile",
}


def parse_rules(obj) -> List[Rule]:
    """Build :class:`Rule` objects from a parsed rule document:
    ``{"rules": [...]}`` or a bare list of rule dicts."""
    if isinstance(obj, dict):
        if "rules" not in obj:
            raise ValueError('rule document needs a "rules" list')
        items = obj["rules"]
    else:
        items = obj
    if not isinstance(items, list):
        raise ValueError(f"rules must be a list, got {type(items).__name__}")
    rules: List[Rule] = []
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            raise ValueError(f"rule #{i} must be an object")
        unknown = sorted(set(item) - _RULE_KEYS)
        if unknown:
            raise ValueError(
                f"rule #{i}: unknown keys {', '.join(unknown)}"
            )
        kwargs = dict(item)
        labels = kwargs.pop("labels", {})
        if not isinstance(labels, dict):
            raise ValueError(f"rule #{i}: labels must be an object")
        kwargs["labels"] = tuple(
            sorted((str(k), str(v)) for k, v in labels.items())
        )
        try:
            rules.append(Rule(**kwargs))
        except TypeError as exc:
            raise ValueError(f"rule #{i}: {exc}") from exc
    return rules


def load_rules(path) -> List[Rule]:
    """Load rules from a JSON file (see :func:`parse_rules`)."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            obj = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid rule file {path}: {exc}") from exc
    return parse_rules(obj)


# -- health table -------------------------------------------------------------

def health_table(recorder, watchdog, last: int = 8) -> str:
    """A windowed plain-text health table for the CLI: one row per
    rule with its latest observed value, threshold, streak, and state
    over the last ``last`` retained samples."""
    samples = recorder.samples()[-last:]
    lines = []
    header = (
        f"{'rule':<24} {'series':<28} {'kind':<10} "
        f"{'observed':>12} {'target':>16} {'state':<8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    latest = samples[-1] if samples else None
    for rule in watchdog.rules:
        if latest is not None:
            observed, violating = watchdog._evaluate(rule, latest)
            shown = f"{observed:.6g}" if observed == observed else "nan"
        else:
            shown, violating = "-", False
        if rule.kind == "absence":
            target = "delta == 0"
        else:
            target = f"{rule.op} {rule.value:g}"
            if rule.kind == "quantile":
                target = f"p{rule.quantile * 100:g} {target}"
        state = "FIRING" if any(
            a.rule == rule.name for a in watchdog.active()
        ) else ("breach" if violating else "ok")
        lines.append(
            f"{rule.name:<24} {rule.series:<28} {rule.kind:<10} "
            f"{shown:>12} {target:>16} {state:<8}"
        )
    n = len(samples)
    lines.append(
        f"samples={recorder.n_samples} retained={len(recorder)} "
        f"window={n} alerts={len(watchdog.alerts)} "
        f"critical={watchdog.critical_count()}"
    )
    return "\n".join(lines)
