"""Telemetry bundle and the process-wide current backend.

Instrumented modules never import :mod:`repro.obs` at module scope
(a lint in the test suite enforces it); instead their constructors
resolve :func:`current` lazily, so building a :class:`Simulator`,
:class:`Network`, executor, MAC, or power manager *while a telemetry
session is installed* wires it up automatically::

    with obs.session() as tel:
        main()                       # everything built here is traced
    tel.tracer.to_jsonl()

When nothing is installed, :func:`current` returns the module-level
:data:`NULL` backend — every hot-path guard reduces to one attribute
check (``telemetry.enabled`` is ``False``) and every emitted metric or
span is a no-op, which is the zero-overhead-when-disabled contract the
perf suite pins.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import NullTracer, Tracer


class Telemetry:
    """A live tracer + metrics registry pair."""

    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def clear(self) -> None:
        """Drop recorded spans and metric series (bindings stay)."""
        self.tracer.clear()
        self.metrics.clear()


class NullTelemetry:
    """The disabled backend: inert tracer and registry."""

    enabled = False

    def __init__(self) -> None:
        self.tracer = NullTracer()
        self.metrics = NullMetrics()

    def clear(self) -> None:
        pass


#: The shared disabled backend returned by :func:`current` when no
#: session is installed.
NULL = NullTelemetry()

_current = NULL


def current():
    """The process-wide telemetry backend (:data:`NULL` when off)."""
    return _current


def install(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Make ``telemetry`` (a fresh one when omitted) the current
    backend; newly constructed subsystems pick it up."""
    global _current
    tel = telemetry if telemetry is not None else Telemetry()
    _current = tel
    return tel


def uninstall() -> None:
    """Restore the :data:`NULL` backend."""
    global _current
    _current = NULL


@contextmanager
def session(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Install a telemetry backend for the duration of a block;
    restores whatever was current before (sessions nest)."""
    global _current
    previous = _current
    tel = install(telemetry)
    try:
        yield tel
    finally:
        _current = previous
