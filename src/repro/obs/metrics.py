"""Labeled metrics registry: counters, gauges, fixed-bucket histograms.

A series is identified by ``(name, labels)``; instruments are
get-or-create, so instrumented code holds the returned object and
updates a plain attribute on the hot path::

    rx = registry.counter("net.rx_values", node=5)
    rx.inc(96)

Pull-model **collectors** (the Prometheus pattern) let a subsystem that
already keeps exact counters — e.g. :class:`repro.wsn.Network`'s
traffic stats — publish them with zero hot-path overhead: the callback
registered via :meth:`MetricsRegistry.register_collector` runs at
:meth:`collect` time (export, report, reconciliation), not per packet.

The module-level null backend (:class:`NullMetrics` and its inert
instruments) is what disabled instrumentation talks to; every method
is a no-op returning a shared singleton.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Tuple

from repro.obs.trace import canonical_value

LabelKey = Tuple[Tuple[str, object], ...]
SeriesKey = Tuple[str, LabelKey]

#: Default histogram buckets (upper bounds); the overflow bucket is
#: implicit.  Spans latencies in seconds and small counts alike.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0
)


class Counter:
    """Monotonically increasing scalar."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Last-write-wins scalar (queue depth, stored energy)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``counts[i]`` tallies observations with ``value <= buckets[i]``;
    the final slot is the overflow bucket.
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b != b for b in bounds):
            raise ValueError(f"bucket bounds must not be NaN: {bounds}")
        if any(b == float("inf") for b in bounds[:-1]):
            raise ValueError(
                f"only the terminal bucket bound may be +inf: {bounds}"
            )
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def quantile_bound(self, q: float) -> float:
        """Upper bucket bound covering the ``q``-quantile (``inf`` when
        it falls in the overflow bucket; ``nan`` when empty).

        ``q=0`` returns the bound of the first *non-empty* bucket (the
        minimum's bucket), not blindly ``buckets[0]``; ``q=1`` returns
        the bound covering the maximum observation.  A terminal +inf
        bucket bound is honoured: mass there reports ``inf`` just like
        the implicit overflow slot.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        seen = 0
        for bound, count in zip(self.buckets, self.counts):
            seen += count
            if seen >= target and seen > 0:
                return bound
        return float("inf")


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, canonical_value(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of labeled series plus pull collectors."""

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def __len__(self) -> int:
        return len(self._series)

    def _get(self, factory, name: str, labels: Dict[str, object]):
        key = (str(name), _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = factory()
            self._series[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        instrument = self._get(Counter, name, labels)
        if not isinstance(instrument, Counter):
            raise TypeError(f"series {name!r} is a {instrument.kind}")
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        instrument = self._get(Gauge, name, labels)
        if not isinstance(instrument, Gauge):
            raise TypeError(f"series {name!r} is a {instrument.kind}")
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        instrument = self._get(lambda: Histogram(buckets), name, labels)
        if not isinstance(instrument, Histogram):
            raise TypeError(f"series {name!r} is a {instrument.kind}")
        return instrument

    # -- pull model ---------------------------------------------------------
    def register_collector(
        self, callback: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback run by :meth:`collect` to sync
        externally-kept counters into the registry."""
        self._collectors.append(callback)

    def collect(self) -> None:
        """Run every registered collector (idempotent by contract)."""
        for callback in self._collectors:
            callback(self)

    # -- read side ----------------------------------------------------------
    def series(self) -> List[Tuple[str, Dict[str, object], object]]:
        """All series as ``(name, labels, instrument)``, sorted by
        name then label key — the canonical export order."""
        return [
            (name, dict(label_key), self._series[(name, label_key)])
            for name, label_key in sorted(self._series)
        ]

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge series (0.0 when absent)."""
        instrument = self._series.get((str(name), _label_key(labels)))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"series {name!r} is a histogram; read .counts")
        return instrument.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge's value across every label set."""
        out = 0.0
        for series_name, __, instrument in self.series():
            if series_name == name and not isinstance(instrument, Histogram):
                out += instrument.value
        return out

    def clear(self) -> None:
        """Drop every series (collectors stay registered)."""
        self._series = {}

    # -- mergeable snapshots ------------------------------------------------
    def snapshot(self) -> List[List]:
        """Canonical, picklable dump of every series.

        Runs :meth:`collect` first so externally-kept counters are
        synced, then emits ``[name, [[label, value], ...], kind,
        payload]`` entries in the canonical :meth:`series` order —
        counters/gauges carry their scalar, histograms a dict of
        buckets/counts/sum/count.  The format is what sweep workers
        ship back to the parent for an order-independent merge.
        """
        self.collect()
        out: List[List] = []
        for name, labels, instrument in self.series():
            label_items = [[k, v] for k, v in sorted(labels.items())]
            if isinstance(instrument, Histogram):
                payload: object = {
                    "buckets": list(instrument.buckets),
                    "counts": list(instrument.counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
            else:
                payload = instrument.value
            out.append([name, label_items, instrument.kind, payload])
        return out

    def merge_snapshot(self, snapshot: List[List]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histograms accumulate (commutative, so merging a
        set of worker snapshots is order-independent); gauges are
        last-write-wins, so callers merge snapshots in a canonical
        order (the sweep engine uses ascending point index).
        """
        for name, label_items, kind, payload in snapshot:
            labels = {str(k): v for k, v in label_items}
            if kind == "counter":
                self.counter(name, **labels).inc(float(payload))
            elif kind == "gauge":
                self.gauge(name, **labels).set(float(payload))
            elif kind == "histogram":
                incoming = tuple(float(b) for b in payload["buckets"])
                if len(payload["counts"]) != len(incoming) + 1:
                    raise ValueError(
                        f"histogram {name!r} snapshot is malformed: "
                        f"{len(payload['counts'])} counts for "
                        f"{len(incoming)} bucket bounds "
                        f"(expected {len(incoming) + 1})"
                    )
                hist = self.histogram(name, buckets=incoming, **labels)
                if hist.buckets != incoming:
                    raise ValueError(
                        f"histogram {name!r} bucket boundaries mismatch "
                        f"on merge: registry has {hist.buckets}, "
                        f"snapshot has {incoming}"
                    )
                for i, count in enumerate(payload["counts"]):
                    hist.counts[i] += int(count)
                hist.sum += float(payload["sum"])
                hist.count += int(payload["count"])
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")


def merge_snapshots(snapshots) -> "MetricsRegistry":
    """A fresh registry holding the fold of ``snapshots`` (applied in
    the given order — pass them in canonical point order)."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge_snapshot(snap)
    return registry


# -- null backend -----------------------------------------------------------
class _NullCounter:
    __slots__ = ()
    kind = "counter"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    buckets = DEFAULT_BUCKETS
    sum = 0.0
    count = 0

    @property
    def counts(self) -> List[int]:
        return [0] * (len(DEFAULT_BUCKETS) + 1)

    def observe(self, value: float) -> None:
        pass

    def quantile_bound(self, q: float) -> float:
        return float("nan")


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """No-op registry: hands out shared inert instruments."""

    def __len__(self) -> int:
        return 0

    def counter(self, name: str, **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels):
        return _NULL_HISTOGRAM

    def register_collector(self, callback) -> None:
        pass

    def collect(self) -> None:
        pass

    def series(self) -> List:
        return []

    def value(self, name: str, **labels) -> float:
        return 0.0

    def total(self, name: str) -> float:
        return 0.0

    def clear(self) -> None:
        pass

    def snapshot(self) -> List:
        return []

    def merge_snapshot(self, snapshot) -> None:
        pass
