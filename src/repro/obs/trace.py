"""Sim-clock-aware hierarchical tracer.

Spans are opened as context managers (``with tracer.span("forward",
layer=3):``) and stamped with **two** clocks: the simulated time of
whatever :class:`repro.sim.Simulator` (or other clock source) is bound
via :meth:`Tracer.bind_clock`, and the wall clock.  The simulated
timestamps are what serialize by default, so a trace of a seeded run is
byte-identical across machines and re-runs — the determinism property
the test suite pins.  Wall times ride along for humans
(``include_wall=True``).

Serialization is JSON-lines where every line is a valid Chrome
trace-event object (``ph: "X"`` complete spans, ``ph: "i"`` instant
events), so a trace file wraps directly into the Chrome ``about:tracing``
/ Perfetto array format via :func:`repro.obs.report.to_chrome_json`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def canonical_value(value):
    """Coerce an attribute value into a JSON-stable python type."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in value.items()}
    if value is None or isinstance(value, str):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return canonical_value(value.item())
    return str(value)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (``phase="X"``) or instant event (``"i"``).

    Attributes:
        span_id: 1-based id, unique within the tracer.
        parent_id: enclosing span's id (0 = root).
        name: span name, e.g. ``"exec.layer"``.
        phase: Chrome phase — ``"X"`` complete span, ``"i"`` instant.
        t_start / t_end: simulated time (seconds) at open/close; equal
            for instants.
        wall_start_s / wall_end_s: wall clock at open/close (excluded
            from the canonical serialization).
        attrs: canonicalized key/value annotations.
    """

    span_id: int
    parent_id: int
    name: str
    phase: str
    t_start: float
    t_end: float
    wall_start_s: float
    wall_end_s: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_chrome(self, include_wall: bool = False) -> Dict[str, object]:
        """This record as a Chrome trace-event dict (ts/dur in µs)."""
        args = dict(self.attrs)
        args["span_id"] = self.span_id
        args["parent_id"] = self.parent_id
        if include_wall:
            args["wall_dur_us"] = round(
                (self.wall_end_s - self.wall_start_s) * 1e6, 3
            )
        event: Dict[str, object] = {
            "name": self.name,
            "cat": "repro",
            "ph": self.phase,
            "ts": round(self.t_start * 1e6, 3),
            "pid": 0,
            "tid": 0,
            "args": args,
        }
        if self.phase == "X":
            event["dur"] = round((self.t_end - self.t_start) * 1e6, 3)
        else:
            event["s"] = "t"  # instant scope: thread
        return event

    def to_json(self, include_wall: bool = False) -> str:
        return json.dumps(
            self.to_chrome(include_wall=include_wall),
            sort_keys=True,
            separators=(",", ":"),
        )


class _OpenSpan:
    """Handle yielded by :meth:`Tracer.span`; supports late
    annotations via :meth:`annotate` while the span is open."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "t_start",
                 "wall_start_s", "attrs")

    def __init__(self, tracer, span_id, parent_id, name, t_start,
                 wall_start_s, attrs):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t_start = t_start
        self.wall_start_s = wall_start_s
        self.attrs = attrs

    def annotate(self, **attrs) -> "_OpenSpan":
        for key, value in attrs.items():
            self.attrs[key] = canonical_value(value)
        return self

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._close(self)
        return False


class Tracer:
    """Hierarchical span recorder over a pluggable simulated clock.

    Spans nest through a stack: a span opened while another is open
    becomes its child (``parent_id``).  Finished spans are recorded in
    *completion* order — children before parents — which is the order
    Chrome trace events conventionally stream in, and is deterministic
    for a deterministic program.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._events: List[SpanRecord] = []
        self._stack: List[_OpenSpan] = []
        self._next_id = 1

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated-time source (a :class:`Simulator` binds
        ``lambda: sim.now`` on construction)."""
        self._clock = clock

    @property
    def events(self) -> List[SpanRecord]:
        """Finished spans and instants, in completion order."""
        return list(self._events)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def __len__(self) -> int:
        return len(self._events)

    def span(self, name: str, /, **attrs) -> _OpenSpan:
        """Open a span; use as a context manager. ``name`` is
        positional-only so ``name=...`` is a legal attribute."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else 0
        handle = _OpenSpan(
            tracer=self,
            span_id=span_id,
            parent_id=parent_id,
            name=str(name),
            t_start=float(self._clock()),
            wall_start_s=time.perf_counter(),
            attrs={k: canonical_value(v) for k, v in sorted(attrs.items())},
        )
        self._stack.append(handle)
        return handle

    def _close(self, handle: _OpenSpan) -> None:
        if not self._stack or self._stack[-1] is not handle:
            raise RuntimeError(
                f"span {handle.name!r} closed out of order"
            )
        self._stack.pop()
        self._events.append(
            SpanRecord(
                span_id=handle.span_id,
                parent_id=handle.parent_id,
                name=handle.name,
                phase="X",
                t_start=handle.t_start,
                t_end=float(self._clock()),
                wall_start_s=handle.wall_start_s,
                wall_end_s=time.perf_counter(),
                attrs=handle.attrs,
            )
        )

    def instant(self, name: str, /, **attrs) -> SpanRecord:
        """Record a zero-duration event under the current span."""
        span_id = self._next_id
        self._next_id += 1
        now = float(self._clock())
        wall = time.perf_counter()
        rec = SpanRecord(
            span_id=span_id,
            parent_id=self._stack[-1].span_id if self._stack else 0,
            name=str(name),
            phase="i",
            t_start=now,
            t_end=now,
            wall_start_s=wall,
            wall_end_s=wall,
            attrs={k: canonical_value(v) for k, v in sorted(attrs.items())},
        )
        self._events.append(rec)
        return rec

    def clear(self) -> None:
        """Drop all finished events (open spans stay open)."""
        self._events = []

    def to_jsonl(self, include_wall: bool = False) -> str:
        """Canonical JSON-lines serialization; excludes wall times by
        default so seeded runs serialize byte-identically."""
        return "\n".join(
            rec.to_json(include_wall=include_wall) for rec in self._events
        )

    def digest(self) -> str:
        """SHA-256 of :meth:`to_jsonl` — a compact determinism pin."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()


def merge_digests(digests) -> str:
    """Combined SHA-256 over an ordered sequence of per-run trace
    digests — the parent-side merge of per-worker traces.  Pass the
    digests in canonical (point-index) order; the result is then
    independent of which worker produced which digest and of their
    completion order."""
    h = hashlib.sha256()
    for digest in digests:
        h.update(str(digest).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


class _NullSpan:
    """Shared no-op span handle."""

    __slots__ = ()

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: every method returns immediately and records
    nothing; :meth:`span` hands back one shared inert handle."""

    def bind_clock(self, clock) -> None:
        pass

    @property
    def events(self) -> List[SpanRecord]:
        return []

    @property
    def depth(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def span(self, name: str, /, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, /, **attrs) -> None:
        return None

    def clear(self) -> None:
        pass

    def to_jsonl(self, include_wall: bool = False) -> str:
        return ""

    def digest(self) -> str:
        return hashlib.sha256(b"").hexdigest()
