"""Flight recorder: ring-buffer time series over the metrics registry.

Point-in-time artifacts (a Chrome trace, a ``/metrics`` snapshot) say
nothing about how latency, fallback rate, energy, or packet loss
*evolve* during a long run.  The :class:`FlightRecorder` closes that
gap with bounded memory: at every :meth:`~FlightRecorder.sample` tick
it walks the registry, records the **delta** of every counter and
histogram series since the previous tick (gauges record their level),
derives rolling-window aggregates (rates, histogram-delta p50/p99
bucket bounds), and appends one :class:`TimelineSample` to a
fixed-capacity ring buffer — old samples are overwritten, never
accumulated, so a recorder attached to a weeks-long run costs the
same memory as one attached to a test.

Time comes from a pluggable clock (a :class:`repro.sim.Simulator`'s
``lambda: sim.now``, serve's clock shim, or the default sample-index
clock), never from the wall — so the serialized timeline of a seeded
run is **byte-identical** across machines and re-runs, exactly like
the tracer's JSONL.  :meth:`FlightRecorder.to_jsonl` is the canonical
export; :meth:`FlightRecorder.digest` is its sha256 determinism pin.

:class:`NullFlightRecorder` is the disabled twin (the analogue of
:class:`repro.obs.trace.NullTracer`): every method is a no-op, so a
``sample_if_due()`` call on a hot path costs one attribute check.
Use :func:`flight_recorder` to get the right one for a telemetry
backend.

Hosts drive sampling in one of two styles:

- **push** — pre-schedule ticks on a discrete-event simulator with
  :func:`schedule_sampling` (the faults runtime does this);
- **pull** — call :meth:`~FlightRecorder.sample_if_due` from an
  event-driven hot path; it samples only once the clock has advanced
  past the cadence (the resilient executor does this), or arm a
  repeating timer on a clock shim (the serve app does this).

This module never imports ``time`` or ``repro.sim`` (an AST lint
enforces it): determinism is the whole point, and the recorder must
not be able to re-enter the event loop.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.trace import canonical_value

#: Default ring-buffer capacity (samples retained).
DEFAULT_CAPACITY = 512

#: Default rolling-window width (samples) for rates and quantiles.
DEFAULT_WINDOW = 8


def series_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical flat key for one labeled series:
    ``name{k=v,...}`` with label keys sorted (bare ``name`` when
    unlabeled) — the key the timeline JSONL and the watchdog use."""
    if not labels:
        return name
    inner = ",".join(
        f"{k}={canonical_value(v)}" for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class SeriesPoint:
    """One series' state at one tick.

    Attributes:
        name / labels / kind: series identity.
        value: current level (counter/gauge value; histogram count).
        delta: change since the previous tick (0 for gauges' first
            appearance; histograms: observation-count delta).
        rate: rolling-window rate — windowed delta sum over windowed
            elapsed time (0.0 while no time has passed).
        p50 / p99: histogram-only — upper bucket bounds covering the
            windowed *delta* distribution's quantiles (``None`` for
            non-histograms, ``nan`` when the window holds no mass).
        sum_delta: histogram-only — observed-sum delta this tick.
        window_counts: histogram-only — per-bucket windowed delta
            counts (in-memory only, for arbitrary-quantile reads; not
            serialized).
    """

    __slots__ = ("name", "labels", "kind", "value", "delta", "rate",
                 "p50", "p99", "sum_delta", "window_counts", "buckets")

    def __init__(self, name, labels, kind, value, delta, rate,
                 p50=None, p99=None, sum_delta=None,
                 window_counts=None, buckets=None) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind
        self.value = value
        self.delta = delta
        self.rate = rate
        self.p50 = p50
        self.p99 = p99
        self.sum_delta = sum_delta
        self.window_counts = window_counts
        self.buckets = buckets

    def to_payload(self) -> Dict[str, object]:
        """The serialized form (compact keys; see module docstring)."""
        out: Dict[str, object] = {
            "k": self.kind, "v": self.value, "d": self.delta,
            "r": self.rate,
        }
        if self.kind == "histogram":
            out["s"] = self.sum_delta
            out["p50"] = _json_float(self.p50)
            out["p99"] = _json_float(self.p99)
        return out


def _json_float(value: Optional[float]):
    """JSON has no nan/inf; encode them as strings, canonically."""
    if value is None:
        return None
    if value != value:  # nan
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return float(value)


class TimelineSample:
    """One tick of the flight recorder: time plus every series'
    :class:`SeriesPoint`, keyed by :func:`series_key`."""

    __slots__ = ("index", "t", "points")

    def __init__(self, index: int, t: float,
                 points: Dict[str, SeriesPoint]) -> None:
        self.index = index
        self.t = t
        self.points = points

    def get(self, key: str) -> Optional[SeriesPoint]:
        return self.points.get(key)

    def to_json(self) -> str:
        doc = {
            "i": self.index,
            "t": float(self.t),
            "series": {
                key: self.points[key].to_payload()
                for key in sorted(self.points)
            },
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def quantile_from_counts(
    buckets: Tuple[float, ...], counts: List[int], q: float
) -> float:
    """Upper bucket bound covering the ``q``-quantile of a bucketed
    count vector (the windowed-delta variant of
    :meth:`repro.obs.metrics.Histogram.quantile_bound`)."""
    total = sum(counts)
    if total == 0:
        return float("nan")
    target = q * total
    seen = 0
    for bound, count in zip(buckets, counts):
        seen += count
        if seen >= target and seen > 0:
            return bound
    return float("inf")


class FlightRecorder:
    """Fixed-capacity ring-buffer time series over a telemetry backend.

    Args:
        telemetry: the live :class:`repro.obs.runtime.Telemetry` whose
            registry is sampled (its tracer receives nothing; the
            watchdog emits the instants).
        clock: ``() -> float`` time source; defaults to the sample
            index (0.0, 1.0, ...) — deterministic even without a sim.
        interval: cadence in clock seconds honoured by
            :meth:`sample_if_due` (explicit :meth:`sample` calls
            ignore it).
        capacity: ring-buffer size; the oldest sample is overwritten
            once full (:attr:`dropped` counts the overwrites).
        window: rolling-window width, in samples, for rates and
            histogram-delta quantiles.
    """

    enabled = True

    def __init__(
        self,
        telemetry,
        clock: Optional[Callable[[], float]] = None,
        interval: float = 1.0,
        capacity: int = DEFAULT_CAPACITY,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.telemetry = telemetry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.window = int(window)
        self._clock = clock
        self._ring: List[Optional[TimelineSample]] = [None] * self.capacity
        self._head = 0          # next write slot
        self._count = 0         # retained samples (<= capacity)
        self._n_samples = 0     # lifetime sample count
        self.dropped = 0
        self._next_due: Optional[float] = None
        #: previous tick's raw values, keyed by series_key.
        self._prev: Dict[str, object] = {}
        #: registry series key -> (flat key, name, labels dict); the
        #: flat-key strings are hot-path-expensive to rebuild per tick.
        self._key_cache: Dict = {}
        #: (registry dict, len, entries) — the sorted entry list is
        #: reused while the registry holds the same series set.  The
        #: strong dict reference makes the identity check sound (a
        #: cleared registry swaps in a new dict; ids cannot be reused
        #: while the old one is held here).
        self._entries_cache: Optional[Tuple] = None
        self._observers: List = []

    # -- wiring --------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source (e.g. ``lambda: sim.now``)."""
        self._clock = clock

    def attach(self, observer) -> None:
        """Register an observer — anything with
        ``observe(sample, recorder)`` — run after every tick (the
        watchdog's hook)."""
        self._observers.append(observer)

    # -- sampling ------------------------------------------------------------
    def _now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        return float(self._n_samples)

    def sample_if_due(self) -> Optional[TimelineSample]:
        """Sample only when the clock has advanced past the cadence
        (the pull-style hook for event-driven hosts); returns the new
        sample or ``None``."""
        now = self._now()
        if self._next_due is not None and now < self._next_due:
            return None
        sample = self.sample()
        self._next_due = sample.t + self.interval
        return sample

    def _series_entries(self, metrics):
        """``((flat_key, name, labels), instrument)`` pairs in the
        canonical sorted order, with the flat keys and label dicts
        cached across ticks (registry keys are stable identities)."""
        raw = getattr(metrics, "_series", None)
        if raw is None:  # registry-shaped stand-ins in tests
            return [
                ((series_key(name, labels), name, labels), instrument)
                for name, labels, instrument in metrics.series()
            ]
        cached_entries = self._entries_cache
        if (cached_entries is not None
                and cached_entries[0] is raw
                and cached_entries[1] == len(raw)):
            return cached_entries[2]
        cache = self._key_cache
        entries = []
        for skey in sorted(raw):
            cached = cache.get(skey)
            if cached is None:
                labels = dict(skey[1])
                cached = (series_key(skey[0], labels), skey[0], labels)
                cache[skey] = cached
            entries.append((cached, raw[skey]))
        self._entries_cache = (raw, len(raw), entries)
        return entries

    def sample(self) -> TimelineSample:
        """Take one tick now: collect, delta, derive, append.

        One fused pass per series: the raw delta vs the previous tick
        and the rolling-window aggregates are computed together.  The
        windowed delta is O(1) per series — the sum of per-tick deltas
        over the window telescopes to ``value_now - (first.value -
        first.delta)``, where ``first`` is the window's oldest retained
        sample (``first.value - first.delta`` is the value just before
        the window's first tick).
        """
        metrics = self.telemetry.metrics
        metrics.collect()
        t = self._now()
        prev_map = self._prev
        points: Dict[str, SeriesPoint] = {}
        recent = self.samples()[-(self.window - 1):] if self.window > 1 else []
        if recent:
            elapsed = t - recent[0].t
        else:
            # First tick: the window spans from the clock's origin, so
            # counters accumulated before sampling began don't read as
            # a one-cadence burst.
            elapsed = t
        if elapsed <= 0:
            # Degenerate window (t=0 first sample, or a clock that has
            # not advanced): fall back to the cadence to stay finite.
            elapsed = self.interval
        first = recent[0].points if recent else None
        first_get = first.get if first is not None else None
        prev_get = prev_map.get
        for (key, name, labels), instrument in self._series_entries(metrics):
            kind = instrument.kind
            if kind == "histogram":
                counts = list(instrument.counts)
                prev = prev_get(key)
                if prev is None:
                    prev_counts = [0] * len(counts)
                    prev_sum = 0.0
                else:
                    prev_counts, prev_sum = prev
                delta_counts = [
                    c - p for c, p in zip(counts, prev_counts)
                ]
                delta_n = sum(delta_counts)
                point = SeriesPoint(
                    name, labels, kind,
                    value=int(instrument.count),
                    delta=delta_n,
                    rate=0.0,
                    sum_delta=float(instrument.sum) - float(prev_sum),
                    window_counts=delta_counts,  # this tick; widened below
                    buckets=tuple(instrument.buckets),
                )
                prev_map[key] = (counts, float(instrument.sum))
                old_point = first_get(key) if first_get is not None else None
                if old_point is not None:
                    point.rate = (point.value - (old_point.value
                                                 - old_point.delta)) / elapsed
                else:
                    point.rate = delta_n / elapsed
                window_counts = delta_counts
                for old in recent:
                    old_point = old.points.get(key)
                    if (old_point is not None
                            and old_point.window_counts is not None
                            and old_point.buckets == point.buckets):
                        window_counts = [
                            a + b for a, b in
                            zip(window_counts, old_point.window_counts)
                        ]
                point.p50 = quantile_from_counts(
                    point.buckets, window_counts, 0.50
                )
                point.p99 = quantile_from_counts(
                    point.buckets, window_counts, 0.99
                )
                points[key] = point
            else:
                value = float(instrument.value)
                prev_value = prev_get(key)
                if prev_value is None:
                    delta = 0.0 if kind == "gauge" else value
                else:
                    delta = value - prev_value
                prev_map[key] = value
                old_point = first_get(key) if first_get is not None else None
                if old_point is not None:
                    rate = (value - (old_point.value
                                     - old_point.delta)) / elapsed
                else:
                    rate = delta / elapsed
                points[key] = SeriesPoint(
                    name, labels, kind, value, delta, rate,
                )
        sample = TimelineSample(self._n_samples, t, points)
        self._append(sample)
        for observer in self._observers:
            observer.observe(sample, self)
        return sample

    def _append(self, sample: TimelineSample) -> None:
        if self._count == self.capacity and self._ring[self._head] is not None:
            self.dropped += 1
        self._ring[self._head] = sample
        self._head = (self._head + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)
        self._n_samples += 1

    # -- read side -----------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def n_samples(self) -> int:
        """Lifetime sample count (retained + overwritten)."""
        return self._n_samples

    def samples(self) -> List[TimelineSample]:
        """Retained samples, oldest first."""
        if self._count < self.capacity:
            return [s for s in self._ring[: self._count]]
        return (
            self._ring[self._head:] + self._ring[: self._head]
        )

    def latest(self) -> Optional[TimelineSample]:
        return self.samples()[-1] if self._count else None

    def clear(self) -> None:
        """Drop retained samples and delta state (bindings stay)."""
        self._ring = [None] * self.capacity
        self._head = 0
        self._count = 0
        self._n_samples = 0
        self.dropped = 0
        self._next_due = None
        self._prev = {}

    # -- export --------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Canonical JSON-lines serialization of the retained samples
        (oldest first) — byte-identical for a seeded run."""
        return "\n".join(s.to_json() for s in self.samples())

    def digest(self) -> str:
        """SHA-256 of :meth:`to_jsonl` — the determinism pin."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()


class NullFlightRecorder:
    """The disabled recorder: records nothing, costs one attribute
    check per hook (the zero-overhead contract the bench pins)."""

    enabled = False
    interval = 0.0
    capacity = 0
    window = 0
    dropped = 0
    n_samples = 0

    def bind_clock(self, clock) -> None:
        pass

    def attach(self, observer) -> None:
        pass

    def sample_if_due(self) -> None:
        return None

    def sample(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def samples(self) -> List:
        return []

    def latest(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def to_jsonl(self) -> str:
        return ""

    def digest(self) -> str:
        return hashlib.sha256(b"").hexdigest()


#: Shared inert recorder (what :func:`flight_recorder` returns for a
#: disabled backend).
NULL_RECORDER = NullFlightRecorder()


def flight_recorder(
    telemetry=None,
    clock: Optional[Callable[[], float]] = None,
    interval: float = 1.0,
    capacity: int = DEFAULT_CAPACITY,
    window: int = DEFAULT_WINDOW,
):
    """A :class:`FlightRecorder` over ``telemetry`` (the installed
    backend when omitted), or the shared :data:`NULL_RECORDER` when
    telemetry is disabled — the same lazy pattern as the tracer."""
    if telemetry is None:
        from repro.obs.runtime import current

        telemetry = current()
    if not telemetry.enabled:
        return NULL_RECORDER
    return FlightRecorder(
        telemetry, clock=clock, interval=interval,
        capacity=capacity, window=window,
    )


def schedule_sampling(
    schedule: Callable,
    recorder,
    interval: float,
    until: float,
    start: float = 0.0,
) -> int:
    """Pre-schedule push-style sampling ticks on an absolute-time
    scheduler (e.g. ``sim.schedule_at``): one ``recorder.sample`` call
    every ``interval`` from ``start`` through ``until`` inclusive.
    Returns how many ticks were scheduled.  No-op for a disabled
    recorder."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if not recorder.enabled:
        return 0
    n = 0
    t = float(start)
    while t <= until + 1e-12:
        schedule(t, recorder.sample)
        t += interval
        n += 1
    return n
