"""Room crowd counting from synchronized RSSI (experiment E5).

Implements the two estimators of paper ref. [66]:

- the **number of people** from the inter-node RSSI (people crossing
  links attenuate them), via a classifier over the round's link
  statistics;
- the **number of devices** from the surrounding RSSI (each person's
  phones/wearables raise the ambient level), via a least-squares fit
  of the ambient model.

The paper reports ~79 % exact-count accuracy with errors up to two
people.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ml import (
    GaussianNaiveBayes,
    accuracy,
    mean_absolute_error,
    within_k_accuracy,
)
from repro.ml.base import Classifier
from repro.sensing.rssi.room import RoomObservation


@dataclass
class CrowdEvaluation:
    """Scores over a test set."""

    people_accuracy: float
    people_within_2: float
    people_mae: float
    device_mae: float


class CrowdCounter:
    """Fit/predict wrapper over room observations.

    Args:
        classifier: people-count model (defaults to Gaussian NB over
            the 4 link-statistic features).
    """

    def __init__(self, classifier: Optional[Classifier] = None) -> None:
        self.classifier = (
            classifier if classifier is not None else GaussianNaiveBayes()
        )
        self._device_coef: Optional[np.ndarray] = None
        self._fitted = False

    @staticmethod
    def _features(observations: Sequence[RoomObservation]) -> np.ndarray:
        return np.stack([obs.feature_vector() for obs in observations])

    @staticmethod
    def _ambient_means(observations: Sequence[RoomObservation]) -> np.ndarray:
        return np.array([obs.round.mean_surrounding() for obs in observations])

    def fit(self, observations: Sequence[RoomObservation]) -> "CrowdCounter":
        """Train both estimators on labeled rounds."""
        if not observations:
            raise ValueError("need at least one observation")
        x = self._features(observations)
        people = np.array([obs.n_people for obs in observations])
        self.classifier.fit(x, people)
        # Device estimator: n_devices ~ a * exp(ambient shift) form is
        # linear in expm1 space of the offset above the quietest round.
        ambient = self._ambient_means(observations)
        devices = np.array([obs.n_devices for obs in observations])
        base = ambient.min()
        design = np.stack([np.expm1((ambient - base) / 3.6), np.ones_like(ambient)])
        coef, *__ = np.linalg.lstsq(design.T, devices, rcond=None)
        self._device_coef = np.concatenate([coef, [base]])
        self._fitted = True
        return self

    def predict_people(self, observations: Sequence[RoomObservation]) -> np.ndarray:
        """Estimated head counts."""
        if not self._fitted:
            raise RuntimeError("counter has not been fitted")
        return self.classifier.predict(self._features(observations))

    def predict_devices(self, observations: Sequence[RoomObservation]) -> np.ndarray:
        """Estimated device counts (continuous, floored at 0)."""
        if not self._fitted:
            raise RuntimeError("counter has not been fitted")
        a, b, base = self._device_coef
        ambient = self._ambient_means(observations)
        return np.maximum(0.0, a * np.expm1((ambient - base) / 3.6) + b)

    def evaluate(self, observations: Sequence[RoomObservation]) -> CrowdEvaluation:
        """Score both estimators on labeled test rounds."""
        people_true = np.array([obs.n_people for obs in observations])
        devices_true = np.array([obs.n_devices for obs in observations])
        people_pred = self.predict_people(observations)
        devices_pred = self.predict_devices(observations)
        return CrowdEvaluation(
            people_accuracy=accuracy(people_true, people_pred),
            people_within_2=within_k_accuracy(people_true, people_pred, 2),
            people_mae=mean_absolute_error(people_true, people_pred),
            device_mae=mean_absolute_error(devices_true, devices_pred),
        )
