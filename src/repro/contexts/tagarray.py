"""RFID tag-array body sensing (scenarios (i)/(ii), Fig. 2(a)).

The paper's §III.A: *"by attaching multiple RFID tags to a human
body, the skeleton of the person is captured by analyzing signals
backscattered from the tags"* — RF-Kinect [60] style.  RF-ECG [58]
reads heartbeat from the micro-motion of a tag array on the chest.

This module implements the common physical core: the backscatter
**phase** of each tag encodes its radial distance modulo a
wavelength; differential phase across time tracks each tag's
displacement, and spectral analysis of a displacement series extracts
periodic micro-motions (breathing, heartbeat, repetitive exercise —
Motion-Fi style counting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

SPEED_OF_LIGHT = 299_792_458.0


@dataclass
class TagReading:
    """One interrogation of one tag."""

    tag_id: int
    phase_rad: float
    rssi_dbm: float
    timestamp: float


class TagArraySensor:
    """Phase-based displacement tracking for a tag array.

    Args:
        frequency_hz: reader carrier (UHF RFID ~915 MHz by default).
        phase_noise_rad: reader phase jitter per reading.
    """

    def __init__(
        self,
        frequency_hz: float = 915e6,
        phase_noise_rad: float = 0.05,
    ) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_hz = frequency_hz
        self.phase_noise_rad = phase_noise_rad

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    def phase_of_distance(self, distance_m: float) -> float:
        """Backscatter phase for a reader-tag distance: the wave
        travels 2d, so phase = (4 pi d / lambda) mod 2 pi."""
        return float((4 * np.pi * distance_m / self.wavelength_m) % (2 * np.pi))

    def read(
        self,
        tag_id: int,
        distance_m: float,
        t: float,
        rng: np.random.Generator,
    ) -> TagReading:
        """One noisy interrogation."""
        phase = self.phase_of_distance(distance_m)
        phase = (phase + rng.normal(0.0, self.phase_noise_rad)) % (2 * np.pi)
        rssi = -40.0 - 20.0 * np.log10(max(distance_m, 0.1)) + rng.normal(0, 1.0)
        return TagReading(tag_id=tag_id, phase_rad=phase, rssi_dbm=rssi,
                          timestamp=t)

    def displacement_series(
        self, readings: Sequence[TagReading]
    ) -> np.ndarray:
        """Radial displacement (m) of one tag relative to its first
        reading, from unwrapped differential phase.

        Valid while inter-reading movement stays below lambda/4 (the
        unambiguous range of the round-trip phase).
        """
        if len(readings) < 2:
            raise ValueError("need at least two readings")
        phases = np.array([r.phase_rad for r in readings])
        unwrapped = np.unwrap(phases)
        return (unwrapped - unwrapped[0]) * self.wavelength_m / (4 * np.pi)

    def track_tags(
        self,
        trajectory: Dict[int, Sequence[float]],
        dt: float,
        rng: np.random.Generator,
    ) -> Dict[int, np.ndarray]:
        """Read a whole array over time and recover per-tag displacement.

        Args:
            trajectory: tag id -> sequence of true distances (m).
            dt: reading interval (s).

        Returns:
            tag id -> estimated displacement series.
        """
        out = {}
        for tag_id, distances in trajectory.items():
            readings = [
                self.read(tag_id, d, i * dt, rng)
                for i, d in enumerate(distances)
            ]
            out[tag_id] = self.displacement_series(readings)
        return out


def estimate_periodicity(
    displacement: np.ndarray,
    dt: float,
    min_hz: float = 0.1,
    max_hz: Optional[float] = None,
) -> Tuple[float, float]:
    """Dominant oscillation of a displacement series.

    Used for breathing/heart-rate extraction (RF-ECG) and repetitive
    exercise counting (Motion-Fi).

    Returns:
        ``(frequency_hz, relative_power)`` of the strongest spectral
        peak in the band; relative power is that peak's share of the
        in-band energy.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if len(displacement) < 8:
        raise ValueError("need at least 8 samples for a spectrum")
    x = displacement - displacement.mean()
    spectrum = np.abs(np.fft.rfft(x)) ** 2
    freqs = np.fft.rfftfreq(len(x), dt)
    nyquist = 0.5 / dt
    hi = max_hz if max_hz is not None else nyquist
    band = (freqs >= min_hz) & (freqs <= hi)
    if not band.any() or spectrum[band].sum() == 0:
        return 0.0, 0.0
    idx = np.flatnonzero(band)[spectrum[band].argmax()]
    rel = float(spectrum[idx] / spectrum[band].sum())
    return float(freqs[idx]), rel
