"""Sociogram construction from tag contact logs (scenario (iv)).

The paper: attach RFID tags to kindergarten children's clothes and
install Wi-Fi base stations whose signals only reach specific areas
(play equipment, classrooms, corridors); each base station collects
the tag IDs of children playing together, and the co-presence log is
turned into a *sociogram* — a friendship graph where some children
interact widely and others are isolated.

This module simulates the playground (children with latent friendship
groups move between areas, preferring areas their friends are in) and
builds the sociogram from the resulting co-presence observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np


@dataclass
class ContactLog:
    """Co-presence observations collected by the base stations.

    Attributes:
        records: one entry per (time slot, area) -> set of child ids.
        n_children: population size.
        true_groups: latent friendship groups (ground truth for
            evaluation).
    """

    records: List[Tuple[int, int, Set[int]]]
    n_children: int
    true_groups: List[Set[int]] = field(default_factory=list)


def simulate_playground_contacts(
    n_children: int,
    n_areas: int,
    n_slots: int,
    rng: np.random.Generator,
    n_groups: int = 3,
    friend_affinity: float = 0.75,
    isolated_children: int = 1,
) -> ContactLog:
    """Simulate children moving between areas over time slots.

    Children belong to latent friendship groups; in each slot a group
    picks a favourite area and each member goes there with probability
    ``friend_affinity`` (otherwise a random area).  ``isolated_children``
    wander independently — they should show up with low degree in the
    sociogram.
    """
    if n_children < 2 or n_areas < 2 or n_slots < 1:
        raise ValueError("need >= 2 children, >= 2 areas, >= 1 slot")
    if isolated_children >= n_children:
        raise ValueError("cannot isolate every child")
    sociable = list(range(n_children - isolated_children))
    groups: List[Set[int]] = [set() for __ in range(n_groups)]
    for i, child in enumerate(sociable):
        groups[i % n_groups].add(child)
    loners = set(range(n_children - isolated_children, n_children))
    records: List[Tuple[int, int, Set[int]]] = []
    for slot in range(n_slots):
        placement: Dict[int, int] = {}
        for gi, group in enumerate(groups):
            favourite = int(rng.integers(0, n_areas))
            for child in group:
                if rng.random() < friend_affinity:
                    placement[child] = favourite
                else:
                    placement[child] = int(rng.integers(0, n_areas))
        for child in loners:
            placement[child] = int(rng.integers(0, n_areas))
        for area in range(n_areas):
            present = {c for c, a in placement.items() if a == area}
            if len(present) >= 1:
                records.append((slot, area, present))
    return ContactLog(
        records=records,
        n_children=n_children,
        true_groups=[set(g) for g in groups] + [loners],
    )


class SociogramBuilder:
    """Builds and analyzes the friendship graph.

    Args:
        min_weight: co-presence count below which an edge is pruned
            (random co-location noise).
    """

    def __init__(self, min_weight: int = 2) -> None:
        if min_weight < 1:
            raise ValueError("min_weight must be >= 1")
        self.min_weight = min_weight

    def build(self, log: ContactLog) -> nx.Graph:
        """Weighted co-presence graph over all children."""
        g = nx.Graph()
        g.add_nodes_from(range(log.n_children))
        for __, __a, present in log.records:
            members = sorted(present)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    if g.has_edge(a, b):
                        g[a][b]["weight"] += 1
                    else:
                        g.add_edge(a, b, weight=1)
        prune = [
            (a, b) for a, b, w in g.edges(data="weight") if w < self.min_weight
        ]
        g.remove_edges_from(prune)
        return g

    def friendship_groups(self, g: nx.Graph) -> List[Set[int]]:
        """Communities via greedy modularity on edge weights."""
        connected = [n for n in g if g.degree(n) > 0]
        sub = g.subgraph(connected)
        if sub.number_of_edges() == 0:
            return []
        communities = nx.algorithms.community.greedy_modularity_communities(
            sub, weight="weight"
        )
        return [set(c) for c in communities]

    def isolated_children(self, g: nx.Graph, percentile: float = 10.0) -> Set[int]:
        """Children with no or unusually few interactions."""
        strengths = {
            n: sum(w for __, __b, w in g.edges(n, data="weight")) for n in g
        }
        values = np.array(list(strengths.values()), dtype=float)
        cutoff = np.percentile(values, percentile)
        return {n for n, s in strengths.items() if s <= cutoff}

    def interaction_matrix(self, g: nx.Graph, n_children: int) -> np.ndarray:
        """Dense co-presence count matrix (for visualization)."""
        mat = np.zeros((n_children, n_children))
        for a, b, w in g.edges(data="weight"):
            mat[a, b] = mat[b, a] = w
        return mat
