"""Motion-Fi / RF-Kinect body sensing (scenario (ii), survey
refs. [37][38][60]).

Two estimators on the tag-array substrate of
:mod:`repro.contexts.tagarray`:

- :class:`RepetitionCounter` — Motion-Fi [37]: counting repetitive
  exercises (squats, steps) from the periodic displacement of a
  backscatter tag, robust to amplitude drift by zero-crossing cycle
  counting with hysteresis;
- :class:`PostureClassifier` — RF-Kinect-style [60]: classify body
  posture (standing / sitting / lying) from the *vertical layout* of a
  tag array on the body, using reader-to-tag distances recovered per
  tag; a lying posture is the fall signal of scenario (i).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.contexts.tagarray import TagArraySensor


class Posture(enum.IntEnum):
    """Body postures distinguishable from the tag-array geometry."""

    STANDING = 0
    SITTING = 1
    LYING = 2


#: Tag mounting heights (m above ground) per posture for a
#: head/chest/waist/knee array.
POSTURE_TAG_HEIGHTS: Dict[Posture, Tuple[float, float, float, float]] = {
    Posture.STANDING: (1.65, 1.35, 1.00, 0.50),
    Posture.SITTING: (1.20, 0.95, 0.70, 0.45),
    Posture.LYING: (0.25, 0.22, 0.20, 0.18),
}


def count_repetitions(
    displacement: np.ndarray,
    hysteresis: Optional[float] = None,
    min_span: float = 0.0,
) -> int:
    """Motion-Fi cycle counting with hysteresis.

    A repetition is one full excursion through both the high and the
    low band around the midline; hysteresis (default: 25 % of the
    peak-to-peak range) rejects noise-level wiggles, and series whose
    total span stays below ``min_span`` count as no motion at all.

    Args:
        displacement: tag displacement series (m).
        hysteresis: absolute dead band width.
        min_span: smallest peak-to-peak range that counts as motion.

    Returns:
        Completed repetition count.
    """
    x = np.asarray(displacement, dtype=float)
    if x.size < 4:
        raise ValueError("need at least 4 samples")
    span = float(x.max() - x.min())
    if span <= 0 or span < min_span:
        return 0
    mid = float((x.max() + x.min()) / 2.0)
    h = hysteresis if hysteresis is not None else 0.25 * span
    # A repetition completes when the signal returns to the low band
    # after having visited the high band (low -> high -> low).
    state = None
    armed = False  # visited high since the last completed rep
    count = 0
    for v in x:
        if v > mid + h / 2:
            state = "high"
            armed = True
        elif v < mid - h / 2:
            if state == "high" and armed:
                count += 1
                armed = False
            state = "low"
    return count


class RepetitionCounter:
    """End-to-end Motion-Fi: read a tag through the exercise, count.

    Args:
        sensor: the phase-reading substrate.
        dt: reading interval (s).
    """

    def __init__(self, sensor: Optional[TagArraySensor] = None,
                 dt: float = 0.05) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.sensor = sensor if sensor is not None else TagArraySensor()
        self.dt = dt

    def synthesize_exercise(
        self,
        n_reps: int,
        rep_period_s: float,
        amplitude_m: float,
        rng: np.random.Generator,
        rest_s: float = 1.0,
        base_distance_m: float = 2.0,
    ) -> np.ndarray:
        """True tag-to-reader distances of an exercise bout."""
        if n_reps < 0 or rep_period_s <= 0 or amplitude_m <= 0:
            raise ValueError("invalid exercise parameters")
        n_rest = int(rest_s / self.dt)
        n_move = int(n_reps * rep_period_s / self.dt)
        t = np.arange(n_move) * self.dt
        motion = amplitude_m / 2 * (1 - np.cos(2 * np.pi * t / rep_period_s))
        series = np.concatenate([
            np.zeros(n_rest), motion, np.zeros(n_rest)
        ])
        jitter = rng.normal(0.0, amplitude_m * 0.02, size=series.shape)
        return base_distance_m + series + jitter

    def count_from_distances(
        self, distances: Sequence[float], rng: np.random.Generator,
        min_motion_m: float = 0.05,
    ) -> int:
        """Read the tag through the bout and count repetitions.

        ``min_motion_m`` is the smallest excursion treated as exercise
        (phase noise alone stays below it).
        """
        readings = [
            self.sensor.read(0, d, i * self.dt, rng)
            for i, d in enumerate(distances)
        ]
        displacement = self.sensor.displacement_series(readings)
        return count_repetitions(displacement, min_span=min_motion_m)


class PostureClassifier:
    """RF-Kinect-lite: posture from tag-array height profile.

    The reader antenna sits at a known height; each body tag's
    distance gives (with the known horizontal offset) its height.  The
    classifier matches the measured height profile to the posture
    templates by least squares.

    Args:
        sensor: phase/RSSI reading substrate.
        reader_height_m: antenna mount height.
        horizontal_offset_m: body-to-reader ground distance.
    """

    def __init__(
        self,
        sensor: Optional[TagArraySensor] = None,
        reader_height_m: float = 2.0,
        horizontal_offset_m: float = 2.5,
    ) -> None:
        self.sensor = sensor if sensor is not None else TagArraySensor()
        self.reader_height_m = reader_height_m
        self.horizontal_offset_m = horizontal_offset_m

    def tag_distance(self, tag_height_m: float) -> float:
        """Geometric reader-to-tag distance for a tag at a height."""
        dh = self.reader_height_m - tag_height_m
        return float(np.hypot(self.horizontal_offset_m, dh))

    def measure_heights(
        self, true_heights: Sequence[float], rng: np.random.Generator,
        distance_noise_m: float = 0.05,
    ) -> np.ndarray:
        """Recover tag heights from (noisy) distance measurements."""
        heights = []
        for h in true_heights:
            d = self.tag_distance(h) + float(rng.normal(0, distance_noise_m))
            dh2 = max(d * d - self.horizontal_offset_m**2, 0.0)
            heights.append(self.reader_height_m - float(np.sqrt(dh2)))
        return np.asarray(heights)

    def classify(self, measured_heights: Sequence[float]) -> Posture:
        """Nearest posture template in height-profile space."""
        measured = np.asarray(measured_heights, dtype=float)
        if measured.shape != (4,):
            raise ValueError("expected a 4-tag height profile")
        best, best_err = None, np.inf
        for posture, template in POSTURE_TAG_HEIGHTS.items():
            err = float(((measured - np.asarray(template)) ** 2).sum())
            if err < best_err:
                best, best_err = posture, err
        return best

    def observe_and_classify(
        self, posture: Posture, rng: np.random.Generator
    ) -> Posture:
        """Simulate one observation of a person in ``posture``."""
        true_heights = POSTURE_TAG_HEIGHTS[posture]
        measured = self.measure_heights(true_heights, rng)
        return self.classify(measured)
