"""Scenario (iii): trajectory tracking and wild-animal intrusion
detection.

The paper: *"tracking human trajectories and detecting intrusion of
wild animals"* — survey ref. [46] classifies humans vs. animals with a
CNN.  Our zero-energy variant watches a perimeter with the film-type
IR arrays of §IV.C: a crossing entity triggers a short IR sequence;
the detector extracts body-geometry and gait features and classifies
``human`` / ``deer`` / ``boar``; the crossing direction comes from the
centroid drift.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml import RandomForestClassifier, accuracy, confusion_matrix
from repro.ml.base import Classifier


class EntityKind(enum.IntEnum):
    """Perimeter-crossing entity classes."""

    HUMAN = 0
    DEER = 1
    BOAR = 2


#: Body model per entity: height = body-centroid elevation above the
#: ground as a fraction of the array (humans stand tall, boars hug the
#: ground), body width, speed range (cells/frame), gait bounce
#: frequency (1/frames), IR warmth.
ENTITY_PROFILES = {
    EntityKind.HUMAN: {"height": 0.60, "width": 0.9, "speed": (0.10, 0.22),
                       "gait_hz": 1.0 / 6.0, "warmth": 1.0},
    EntityKind.DEER: {"height": 0.45, "width": 1.8, "speed": (0.25, 0.50),
                      "gait_hz": 1.0 / 4.0, "warmth": 0.9},
    EntityKind.BOAR: {"height": 0.15, "width": 2.2, "speed": (0.18, 0.40),
                      "gait_hz": 1.0 / 3.0, "warmth": 1.1},
}


@dataclass
class CrossingEvent:
    """One perimeter crossing captured by an IR array.

    Attributes:
        frames: ``(n_frames, rows, cols)`` IR sequence.
        kind: ground-truth entity.
        direction: +1 = left-to-right, -1 = right-to-left.
    """

    frames: np.ndarray
    kind: EntityKind
    direction: int


class PerimeterSimulator:
    """Renders crossing events on a border-mounted IR array."""

    def __init__(
        self,
        grid_rows: int = 8,
        grid_cols: int = 8,
        n_frames: int = 40,
        noise: float = 0.05,
    ) -> None:
        if grid_rows < 4 or grid_cols < 4:
            raise ValueError("array must be at least 4x4")
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        self.n_frames = n_frames
        self.noise = noise

    def render_crossing(
        self, kind: EntityKind, rng: np.random.Generator
    ) -> CrossingEvent:
        """One crossing of the given entity, random direction."""
        profile = ENTITY_PROFILES[kind]
        direction = 1 if rng.random() < 0.5 else -1
        speed = float(rng.uniform(*profile["speed"])) * direction
        # Ground line sits at the bottom; body center height above it.
        body_y = self.grid_rows - 1 - profile["height"] * self.grid_rows
        x = -1.0 if direction > 0 else self.grid_cols
        yy, xx = np.mgrid[0 : self.grid_rows, 0 : self.grid_cols]
        frames = np.zeros((self.n_frames, self.grid_rows, self.grid_cols))
        for f in range(self.n_frames):
            bounce = 0.3 * np.sin(2 * np.pi * profile["gait_hz"] * f)
            cy = body_y + bounce
            blob = np.exp(
                -(((yy - cy) ** 2) / 1.5
                  + ((xx - x) ** 2) / (2.0 * profile["width"] ** 2))
            )
            frames[f] = profile["warmth"] * blob
            x += speed
        frames += rng.normal(0.0, self.noise, size=frames.shape)
        return CrossingEvent(frames=frames, kind=kind, direction=direction)

    def generate_dataset(
        self, events_per_kind: int, rng: np.random.Generator
    ) -> List[CrossingEvent]:
        """Balanced crossings over all entity kinds, shuffled."""
        if events_per_kind < 1:
            raise ValueError("events_per_kind must be >= 1")
        events = [
            self.render_crossing(kind, rng)
            for kind in EntityKind
            for __ in range(events_per_kind)
        ]
        order = rng.permutation(len(events))
        return [events[i] for i in order]


def crossing_features(event: CrossingEvent) -> np.ndarray:
    """Geometry + motion features of one crossing.

    [mean centroid height, height spread, body width proxy, horizontal
    speed magnitude, gait-bounce frequency, total warmth]
    """
    frames = np.clip(event.frames, 0.0, None)
    n_frames, rows, cols = frames.shape
    row_idx = np.arange(rows)
    col_idx = np.arange(cols)
    cys, cxs, widths, warmth = [], [], [], []
    for f in range(n_frames):
        total = frames[f].sum()
        if total < 1e-6:
            continue
        cy = (frames[f].sum(axis=1) * row_idx).sum() / total
        cx = (frames[f].sum(axis=0) * col_idx).sum() / total
        spread = np.sqrt(
            ((frames[f].sum(axis=0) * (col_idx - cx) ** 2).sum() / total)
        )
        cys.append(cy)
        cxs.append(cx)
        widths.append(spread)
        warmth.append(total)
    if len(cys) < 4:
        return np.zeros(6)
    cys = np.asarray(cys)
    cxs = np.asarray(cxs)
    speed = float(np.abs(np.diff(cxs)).mean())
    # Dominant bounce frequency of the vertical centroid.
    detrended = cys - cys.mean()
    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    spectrum[0] = 0.0
    gait_bin = int(spectrum.argmax())
    gait_hz = gait_bin / len(detrended)
    return np.array([
        float(cys.mean()),
        float(cys.std()),
        float(np.mean(widths)),
        speed,
        gait_hz,
        float(np.mean(warmth)),
    ])


def crossing_direction(event: CrossingEvent) -> int:
    """+1 for left-to-right, -1 for right-to-left, from centroid drift."""
    frames = np.clip(event.frames, 0.0, None)
    col_idx = np.arange(frames.shape[2])
    cxs = []
    for f in range(frames.shape[0]):
        total = frames[f].sum()
        if total > 1e-6:
            cxs.append((frames[f].sum(axis=0) * col_idx).sum() / total)
    if len(cxs) < 2:
        return 0
    return 1 if cxs[-1] >= cxs[0] else -1


@dataclass
class IntrusionEvaluation:
    """Detector scores on a test set."""

    kind_accuracy: float
    direction_accuracy: float
    confusion: np.ndarray


class IntrusionDetector:
    """Feature-based human/animal classifier for crossings.

    Args:
        classifier: defaults to a small random forest (robust on the
            six-dimensional feature vector).
    """

    def __init__(self, classifier: Optional[Classifier] = None) -> None:
        self.classifier = (
            classifier
            if classifier is not None
            else RandomForestClassifier(n_trees=20, max_depth=6, seed=0)
        )
        self._fitted = False

    def fit(self, events: Sequence[CrossingEvent]) -> "IntrusionDetector":
        if not events:
            raise ValueError("need at least one training event")
        x = np.stack([crossing_features(e) for e in events])
        y = np.array([int(e.kind) for e in events])
        self.classifier.fit(x, y)
        self._fitted = True
        return self

    def classify(self, events: Sequence[CrossingEvent]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("detector has not been fitted")
        x = np.stack([crossing_features(e) for e in events])
        return self.classifier.predict(x)

    def evaluate(self, events: Sequence[CrossingEvent]) -> IntrusionEvaluation:
        preds = self.classify(events)
        truth = np.array([int(e.kind) for e in events])
        directions = np.array([crossing_direction(e) for e in events])
        true_dirs = np.array([e.direction for e in events])
        return IntrusionEvaluation(
            kind_accuracy=accuracy(truth, preds),
            direction_accuracy=float((directions == true_dirs).mean()),
            confusion=confusion_matrix(truth, preds, num_classes=len(EntityKind)),
        )
