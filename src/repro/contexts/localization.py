"""Device-free CSI localization pipeline (experiment E3).

Wraps the CSI scenario + classical classifiers into the learning
system of paper ref. [8]: capture feedback frames, extract the
624-angle features, train with labels, infer positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.ml import (
    KNeighborsClassifier,
    StandardScaler,
    accuracy,
    confusion_matrix,
    train_test_split,
)
from repro.ml.base import Classifier
from repro.sensing import CsiLocalizationScenario, ScenarioPattern


@dataclass
class LocalizationResult:
    """Per-pattern evaluation outcome."""

    pattern: str
    accuracy: float
    confusion: np.ndarray


class CsiLocalizationPipeline:
    """Learning-phase / estimation-phase wrapper.

    Args:
        scenario: the room and candidate positions.
        classifier: estimation model (defaults to 3-NN, which is
            robust on the angle features).
    """

    def __init__(
        self,
        scenario: Optional[CsiLocalizationScenario] = None,
        classifier: Optional[Classifier] = None,
    ) -> None:
        self.scenario = scenario if scenario is not None else CsiLocalizationScenario()
        self.classifier = (
            classifier if classifier is not None else KNeighborsClassifier(k=3)
        )
        self._scaler = StandardScaler()
        self._fitted = False

    def learn(self, x: np.ndarray, y: np.ndarray) -> "CsiLocalizationPipeline":
        """Learning phase: fit the scaler and classifier."""
        self.classifier.fit(self._scaler.fit_transform(x), y)
        self._fitted = True
        return self

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Estimation phase: predict position labels."""
        if not self._fitted:
            raise RuntimeError("pipeline has not been trained; call learn()")
        return self.classifier.predict(self._scaler.transform(x))

    def evaluate_pattern(
        self,
        pattern: ScenarioPattern,
        samples_per_position: int,
        rng: np.random.Generator,
        test_fraction: float = 0.3,
        window: int = 10,
    ) -> LocalizationResult:
        """Generate data for one behavior/antenna pattern, train, and
        score — one cell of the paper's six-pattern evaluation."""
        x, y = self.scenario.generate_dataset(
            pattern, samples_per_position, rng, window=window
        )
        x_tr, x_te, y_tr, y_te = train_test_split(
            x, y, test_fraction, rng, stratify=True
        )
        self.learn(x_tr, y_tr)
        preds = self.infer(x_te)
        return LocalizationResult(
            pattern=pattern.name,
            accuracy=accuracy(y_te, preds),
            confusion=confusion_matrix(
                y_te, preds, num_classes=self.scenario.n_positions
            ),
        )

    def evaluate_all_patterns(
        self,
        patterns,
        samples_per_position: int,
        rng: np.random.Generator,
        **kwargs,
    ) -> Dict[str, LocalizationResult]:
        """Run every pattern; returns name -> result."""
        return {
            p.name: self.evaluate_pattern(p, samples_per_position, rng, **kwargs)
            for p in patterns
        }
