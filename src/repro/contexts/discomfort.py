"""Lounge discomfort detection (experiment E2).

The paper's first MicroDeep experiment: a CNN over the 25 x 17-cell
temperature grid of a >1,400 m^2 lounge (50 sensors), trained to
detect discomfort.  Reported: ~97 % by the tuned standard CNN, ~95 %
by MicroDeep, with MicroDeep's *maximal* per-node communication only
13 % of the standard (centralize-everything) version's peak traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import (
    CommunicationCostModel,
    CostReport,
    MicroDeepTrainer,
    UnitGraph,
    centralized_assignment,
    grid_correspondence_assignment,
)
from repro.nn import Adam, AvgPool2D, Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.nn.training import TrainingHistory
from repro.wsn import GridTopology


def build_lounge_cnn(
    grid_hw: Tuple[int, int] = (17, 25),
    filters: int = 4,
    hidden: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """CNN for the lounge grid: conv -> pool cascade -> FC -> FC.

    The cascade of small pooling stages is what makes MicroDeep's peak
    traffic a small fraction of the collect-everything baseline: each
    pool(2) unit only gathers a 2x2 window from neighbouring nodes, so
    the 425-cell field is reduced tree-style across the network
    instead of being funnelled to one point.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    model = Sequential([
        Conv2D(filters, 3, padding="same"),
        ReLU(),
        MaxPool2D(2),
        AvgPool2D(2),
        AvgPool2D(2),
        Flatten(),
        Dense(hidden),
        ReLU(),
        Dense(2),
    ])
    model.build((1,) + tuple(grid_hw), rng)
    return model


@dataclass
class DiscomfortRunResult:
    """Outcome of one configuration run."""

    accuracy: float
    model: object
    history: TrainingHistory
    cost_report: CostReport
    node_ids: List[int]

    @property
    def max_comm_cost(self) -> int:
        return self.cost_report.max_rx()


class DiscomfortPipeline:
    """MicroDeep vs. standard CNN on the lounge dataset.

    Args:
        node_grid: sensor deployment; the paper used 50 sensors, the
            default here is a 5 x 10 grid of the same size.
    """

    def __init__(self, node_grid: Tuple[int, int] = (5, 10)) -> None:
        self.node_grid = node_grid

    def run(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        rng: np.random.Generator,
        assignment: str = "heuristic",
        update_mode: str = "local",
        filters: int = 4,
        hidden: int = 8,
        epochs: int = 10,
        batch_size: int = 32,
        lr: float = 2e-3,
    ) -> DiscomfortRunResult:
        """Train and evaluate one configuration (see
        :class:`repro.contexts.fall.FallDetectionPipeline.run`).

        Inputs are standardized with the training set's statistics
        (raw Celsius fields destabilize training).
        """
        if assignment not in ("heuristic", "centralized"):
            raise ValueError(
                f"assignment must be 'heuristic' or 'centralized', got {assignment!r}"
            )
        mean, std = float(x_train.mean()), float(x_train.std()) or 1.0
        x_train = (x_train - mean) / std
        x_test = (x_test - mean) / std
        grid_hw = x_train.shape[2:]
        model = build_lounge_cnn(grid_hw=grid_hw, filters=filters,
                                 hidden=hidden, rng=rng)
        graph = UnitGraph(model)
        topology = GridTopology(*self.node_grid)
        if assignment == "heuristic":
            placement = grid_correspondence_assignment(graph, topology)
        else:
            placement = centralized_assignment(graph, topology)
        trainer = MicroDeepTrainer(
            graph, placement, Adam(lr=lr), update_mode=update_mode
        )
        history = trainer.fit(
            x_train, y_train, epochs=epochs, batch_size=batch_size, rng=rng,
            x_val=x_test, y_val=y_test, patience=3,
        )
        __, accuracy = trainer.evaluate(x_test, y_test)
        cost = CommunicationCostModel(graph, topology).inference_cost(placement)
        return DiscomfortRunResult(
            accuracy=accuracy,
            model=model,
            history=history,
            cost_report=cost,
            node_ids=sorted(topology.nodes),
        )
